//! Umbrella crate for the HINT reproduction workspace.
//!
//! This crate re-exports the public surface of every member crate so that
//! the workspace-level integration tests (`tests/`) and the runnable
//! examples (`examples/`) can exercise the whole system through one import.
//!
//! The actual implementations live in:
//!
//! * [`hint_core`] — HINT and HINT^m, the paper's contribution,
//! * [`interval_tree`], [`timeline_index`], [`grid1d`], [`period_index`] —
//!   the four competitor indexes from the paper's related-work section,
//! * [`workloads`] — synthetic and realistic data/query generators.

pub use grid1d;
pub use hint_core;
pub use interval_tree;
pub use period_index;
pub use timeline_index;
pub use workloads;
