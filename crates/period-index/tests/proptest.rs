//! Property-based validation of the period index, including the duration
//! predicate and the adaptive builder.

use hint_core::{Interval, RangeQuery, ScanOracle};
use period_index::PeriodIndex;
use proptest::prelude::*;

fn intervals(max_val: u64) -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0..max_val, 0..max_val), 1..100).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Interval::new(i as u64, a.min(b), a.max(b)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_oracle_any_shape(
        data in intervals(4_000),
        qa in 0u64..4_000,
        qb in 0u64..4_000,
        p in 1usize..40,
        levels in 1usize..7,
    ) {
        let q = RangeQuery::new(qa.min(qb), qa.max(qb));
        let oracle = ScanOracle::new(&data);
        let idx = PeriodIndex::build(&data, p, levels);
        let mut got = Vec::new();
        idx.query(q, &mut got);
        got.sort_unstable();
        prop_assert_eq!(got, oracle.query_sorted(q));
    }

    #[test]
    fn adaptive_matches_fixed(data in intervals(2_000), t in 0u64..2_000) {
        let adaptive = PeriodIndex::build_adaptive(&data, 8);
        let fixed = PeriodIndex::build(&data, 8, 4);
        let q = RangeQuery::new(t, (t + 100).min(1_999));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        adaptive.query(q, &mut a);
        fixed.query(q, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn duration_predicate_filters_exactly(
        data in intervals(2_000),
        qa in 0u64..2_000,
        qb in 0u64..2_000,
        min_dur in 0u64..500,
    ) {
        let q = RangeQuery::new(qa.min(qb), qa.max(qb));
        let idx = PeriodIndex::build(&data, 8, 4);
        let mut got = Vec::new();
        idx.query_with_duration(q, Some(min_dur), &mut got);
        got.sort_unstable();
        let mut want: Vec<u64> = data
            .iter()
            .filter(|s| s.overlaps(&q) && s.duration() >= min_dur)
            .map(|s| s.id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
