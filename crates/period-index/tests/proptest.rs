//! Property-based validation of the period index, including the duration
//! predicate and the adaptive builder. Oracle comparison runs through
//! the shared `test-support` differential harness.

use hint_core::{RangeQuery, ScanOracle};
use period_index::PeriodIndex;
use proptest::prelude::*;
use test_support::{assert_indexes_agree, assert_same_results_named, intervals, query};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_oracle_any_shape(
        data in intervals(4_000),
        q in query(4_000),
        p in 1usize..40,
        levels in 1usize..7,
    ) {
        let oracle = ScanOracle::new(&data);
        let idx = PeriodIndex::build(&data, p, levels);
        assert_same_results_named("period-index", &idx, &oracle, &[q])?;
    }

    #[test]
    fn adaptive_matches_fixed(data in intervals(2_000), t in 0u64..2_000) {
        let adaptive = PeriodIndex::build_adaptive(&data, 8);
        let fixed = PeriodIndex::build(&data, 8, 4);
        let q = RangeQuery::new(t, (t + 100).min(1_999));
        assert_indexes_agree("adaptive-vs-fixed", &adaptive, &fixed, &[q])?;
    }

    #[test]
    fn duration_predicate_filters_exactly(
        data in intervals(2_000),
        q in query(2_000),
        min_dur in 0u64..500,
    ) {
        let idx = PeriodIndex::build(&data, 8, 4);
        let mut got = Vec::new();
        idx.query_with_duration(q, Some(min_dur), &mut got);
        got.sort_unstable();
        let mut want: Vec<u64> = data
            .iter()
            .filter(|s| s.overlaps(&q) && s.duration() >= min_dur)
            .map(|s| s.id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
