//! The period index of Behrend et al. \[4\], as described in §2 / Figure 4
//! of the HINT paper: a domain-partitioning, duration-aware structure
//! specialized for range and duration queries.
//!
//! The domain is split into coarse partitions (as in a 1D-grid); each
//! partition is divided hierarchically into *levels*, where each level
//! corresponds to a duration class. The top level has the finest divisions
//! and stores the shortest intervals; lower levels halve the division
//! count. An interval is routed to the first level whose division length
//! exceeds its duration (so it spans at most two divisions there), or to
//! the bottom level otherwise, and is inserted into every division it
//! overlaps within every coarse partition it overlaps.
//!
//! Queries visit only the divisions overlapping the range; a duration
//! predicate additionally skips all levels whose division length is below
//! the minimum duration. Duplicates across divisions/partitions are
//! eliminated with the reference-value method \[15\], exactly as in the
//! 1D-grid.
//!
//! [`PeriodIndex::build_adaptive`] implements the paper's "self-adaptive"
//! aspect: each coarse partition picks its own number of levels from the
//! duration distribution of the intervals it receives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hint_core::sink::{emit_live, SATURATION_POLL};
use hint_core::{Interval, IntervalId, IntervalIndex, QuerySink, RangeQuery, Time, TOMBSTONE};

/// One duration level inside a coarse partition.
#[derive(Debug, Clone)]
struct Level {
    /// Width of each division at this level.
    div_width: Time,
    /// Divisions, each holding the intervals assigned to it.
    divs: Vec<Vec<Interval>>,
}

/// A coarse domain partition with its hierarchy of duration levels.
#[derive(Debug, Clone)]
struct Partition {
    start: Time,
    end: Time,
    /// `levels[0]` is the top (finest) level.
    levels: Vec<Level>,
}

impl Partition {
    fn new(start: Time, end: Time, level_count: usize) -> Self {
        let span = end - start + 1;
        let mut levels = Vec::with_capacity(level_count);
        for j in 0..level_count {
            // top level: 2^(L-1) divisions; each level below halves them
            let div_count = 1usize << (level_count - 1 - j);
            let div_width = span.div_ceil(div_count as u64).max(1);
            let actual = span.div_ceil(div_width) as usize;
            levels.push(Level {
                div_width,
                divs: vec![Vec::new(); actual],
            });
        }
        Self { start, end, levels }
    }

    /// The level an interval of this duration belongs to: the first whose
    /// division is longer than the duration, else the bottom.
    fn level_of(&self, duration: Time) -> usize {
        for (j, level) in self.levels.iter().enumerate() {
            if duration < level.div_width {
                return j;
            }
        }
        self.levels.len() - 1
    }

    fn insert(&mut self, s: Interval) {
        let j = self.level_of(s.duration());
        let level = &mut self.levels[j];
        let lo = s.st.max(self.start);
        let hi = s.end.min(self.end);
        let first = ((lo - self.start) / level.div_width) as usize;
        let last = ((hi - self.start) / level.div_width) as usize;
        for div in &mut level.divs[first..=last] {
            div.push(s);
        }
    }

    fn delete(&mut self, s: &Interval) -> bool {
        let j = self.level_of(s.duration());
        let level = &mut self.levels[j];
        let lo = s.st.max(self.start);
        let hi = s.end.min(self.end);
        let first = ((lo - self.start) / level.div_width) as usize;
        let last = ((hi - self.start) / level.div_width) as usize;
        let mut found = false;
        for div in &mut level.divs[first..=last] {
            for slot in div.iter_mut() {
                if slot.id == s.id {
                    slot.id = TOMBSTONE;
                    found = true;
                    break;
                }
            }
        }
        found
    }

    /// Query this partition; `min_duration` (if any) prunes whole levels.
    fn query<S: QuerySink + ?Sized>(
        &self,
        q: &RangeQuery,
        min_duration: Option<Time>,
        out: &mut S,
    ) {
        for level in &self.levels {
            if out.is_saturated() {
                return;
            }
            if let Some(d) = min_duration {
                // intervals at this level are shorter than div_width
                // (except at the bottom); skip levels that cannot hold
                // intervals of duration >= d
                if level.div_width <= d && !std::ptr::eq(level, self.levels.last().unwrap()) {
                    continue;
                }
            }
            let lo = q.st.clamp(self.start, self.end);
            let hi = q.end.clamp(self.start, self.end);
            let first = ((lo - self.start) / level.div_width) as usize;
            let last = ((hi - self.start) / level.div_width) as usize;
            for (d, div) in level.divs.iter().enumerate().take(last + 1).skip(first) {
                let div_start = self.start + d as Time * level.div_width;
                let div_end = (div_start + level.div_width - 1).min(self.end);
                // a single division can hold most of the data under skew,
                // so saturation is polled inside the division as well
                for chunk in div.chunks(SATURATION_POLL) {
                    if out.is_saturated() {
                        return;
                    }
                    for s in chunk {
                        if !s.overlaps(q) {
                            continue;
                        }
                        if let Some(md) = min_duration {
                            if s.duration() < md {
                                continue;
                            }
                        }
                        // reference value: report in the unique division
                        // containing max(s.st, q.st)
                        let v = s.st.max(q.st);
                        if v >= div_start && v <= div_end {
                            emit_live(s.id, out);
                        }
                    }
                }
            }
        }
    }

    fn entries(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.divs.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    fn size_bytes(&self) -> usize {
        let divs: usize = self.levels.iter().map(|l| l.divs.len()).sum();
        divs * std::mem::size_of::<Vec<Interval>>()
            + self.entries() * std::mem::size_of::<Interval>()
            + std::mem::size_of::<Self>()
    }
}

/// The period index \[4\].
#[derive(Debug, Clone)]
pub struct PeriodIndex {
    min: Time,
    max: Time,
    p_width: Time,
    partitions: Vec<Partition>,
    live: usize,
    tombstones: usize,
}

/// Default number of coarse partitions (the paper's Table 7 uses 100).
pub const DEFAULT_PARTITIONS: usize = 100;
/// Default number of duration levels per partition.
pub const DEFAULT_LEVELS: usize = 4;

impl PeriodIndex {
    /// Builds the index with `p` coarse partitions and a uniform number of
    /// duration `levels` per partition.
    ///
    /// # Panics
    /// Panics if `data` is empty, `p == 0`, or `levels == 0`.
    pub fn build(data: &[Interval], p: usize, levels: usize) -> Self {
        assert!(!data.is_empty() && p > 0 && levels > 0);
        let (min, max) = bounds(data);
        let mut idx = Self::with_domain(min, max, p, levels);
        for &s in data {
            idx.insert(s);
        }
        idx
    }

    /// Self-adaptive build: each coarse partition chooses its level count
    /// so that the median duration of its intervals lands on an interior
    /// level (the "self-adaptive" structure of \[4\]).
    pub fn build_adaptive(data: &[Interval], p: usize) -> Self {
        assert!(!data.is_empty() && p > 0);
        let (min, max) = bounds(data);
        let span = max - min + 1;
        let p_width = span.div_ceil(p as u64).max(1);
        let actual_p = span.div_ceil(p_width) as usize;

        // per-partition duration samples (by the partition of the start)
        let mut durs: Vec<Vec<Time>> = vec![Vec::new(); actual_p];
        for s in data {
            let i = (((s.st - min) / p_width) as usize).min(actual_p - 1);
            durs[i].push(s.duration());
        }
        let partitions = (0..actual_p)
            .map(|i| {
                let start = min + i as Time * p_width;
                let end = (start + p_width - 1).min(max);
                let levels = adaptive_levels(&mut durs[i], p_width);
                Partition::new(start, end, levels)
            })
            .collect();
        let mut idx = Self {
            min,
            max,
            p_width,
            partitions,
            live: 0,
            tombstones: 0,
        };
        for &s in data {
            idx.insert(s);
        }
        idx
    }

    /// Creates an empty index over `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max`, `p == 0`, or `levels == 0`.
    pub fn with_domain(min: Time, max: Time, p: usize, levels: usize) -> Self {
        assert!(min <= max && p > 0 && levels > 0);
        let span = max - min + 1;
        let p_width = span.div_ceil(p as u64).max(1);
        let actual_p = span.div_ceil(p_width) as usize;
        let partitions = (0..actual_p)
            .map(|i| {
                let start = min + i as Time * p_width;
                let end = (start + p_width - 1).min(max);
                Partition::new(start, end, levels)
            })
            .collect();
        Self {
            min,
            max,
            p_width,
            partitions,
            live: 0,
            tombstones: 0,
        }
    }

    /// Number of coarse partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn part_of(&self, x: Time) -> usize {
        let x = x.clamp(self.min, self.max);
        (((x - self.min) / self.p_width) as usize).min(self.partitions.len() - 1)
    }

    /// Evaluates a range query.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_with_duration(q, None, out)
    }

    /// Evaluates a range query into an arbitrary sink; the partition walk
    /// stops once the sink is saturated.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.query_with_duration_sink(q, None, sink)
    }

    /// Range query with an optional minimum-duration predicate: levels
    /// whose divisions are too short for qualifying intervals are skipped
    /// wholesale — the structure's signature optimization.
    pub fn query_with_duration(
        &self,
        q: RangeQuery,
        min_duration: Option<Time>,
        out: &mut Vec<IntervalId>,
    ) {
        self.query_with_duration_sink(q, min_duration, out)
    }

    /// Duration-filtered range query into an arbitrary sink.
    pub fn query_with_duration_sink<S: QuerySink + ?Sized>(
        &self,
        q: RangeQuery,
        min_duration: Option<Time>,
        sink: &mut S,
    ) {
        if q.end < self.min || q.st > self.max {
            return;
        }
        let first = self.part_of(q.st);
        let last = self.part_of(q.end);
        for part in &self.partitions[first..=last] {
            if sink.is_saturated() {
                return;
            }
            part.query(&q, min_duration, sink);
        }
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    /// Inserts an interval (fast appends, Table 1).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the index domain.
    pub fn insert(&mut self, s: Interval) {
        assert!(
            s.st >= self.min && s.end <= self.max,
            "interval outside index domain"
        );
        let first = self.part_of(s.st);
        let last = self.part_of(s.end);
        for part in &mut self.partitions[first..=last] {
            part.insert(s);
        }
        self.live += 1;
    }

    /// Logically deletes an interval. Returns true if found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let first = self.part_of(s.st);
        let last = self.part_of(s.end);
        let mut found = false;
        for part in &mut self.partitions[first..=last] {
            found |= part.delete(s);
        }
        if found {
            self.live -= 1;
            self.tombstones += 1;
        }
        found
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.partitions.iter().map(Partition::size_bytes).sum()
    }

    /// Total stored entries (replication included).
    pub fn entries(&self) -> usize {
        self.partitions.iter().map(Partition::entries).sum()
    }
}

impl IntervalIndex for PeriodIndex {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        PeriodIndex::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        PeriodIndex::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        PeriodIndex::size_bytes(self)
    }
    fn len(&self) -> usize {
        PeriodIndex::len(self)
    }
}

fn bounds(data: &[Interval]) -> (Time, Time) {
    let mut min = Time::MAX;
    let mut max = 0;
    for s in data {
        min = min.min(s.st);
        max = max.max(s.end);
    }
    (min, max)
}

/// Chooses a level count so the median duration maps to an interior level:
/// with `L` levels the top division width is `p_width / 2^(L-1)`; pick `L`
/// such that the median is just below the mid-level width.
fn adaptive_levels(durs: &mut [Time], p_width: Time) -> usize {
    const MAX_LEVELS: usize = 8;
    if durs.is_empty() {
        return 1;
    }
    let mid = durs.len() / 2;
    let (_, median, _) = durs.select_nth_unstable(mid);
    let median = (*median).max(1);
    // smallest L with top width > median (so the median sits at the top):
    // p_width / 2^(L-1) > median  =>  2^(L-1) < p_width / median
    let ratio = (p_width / median).max(1);
    let l = (64 - ratio.leading_zeros()) as usize; // floor(log2(ratio)) + 1
    l.clamp(1, MAX_LEVELS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_core::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    #[test]
    fn exhaustive_small_domain() {
        let data = lcg_data(150, 64, 25, 3);
        for (p, levels) in [(1, 1), (2, 3), (4, 2), (8, 4)] {
            let idx = PeriodIndex::build(&data, p, levels);
            let oracle = ScanOracle::new(&data);
            for st in 0..64u64 {
                for end in st..64 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(
                        sorted(got),
                        oracle.query_sorted(q),
                        "p={p} L={levels} {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_large_domain() {
        let data = lcg_data(700, 1_000_000, 80_000, 7);
        let idx = PeriodIndex::build(&data, 50, 4);
        let oracle = ScanOracle::new(&data);
        let mut x = 1u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let st = (x >> 17) % 1_000_000;
            let end = (st + (x >> 5) % 90_000).min(999_999);
            let q = RangeQuery::new(st, end);
            let mut got = Vec::new();
            idx.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn adaptive_matches_oracle() {
        let data = lcg_data(600, 100_000, 8_000, 21);
        let idx = PeriodIndex::build_adaptive(&data, 20);
        let oracle = ScanOracle::new(&data);
        let mut x = 3u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let st = (x >> 17) % 100_000;
            let end = (st + (x >> 7) % 10_000).min(99_999);
            let q = RangeQuery::new(st, end);
            let mut got = Vec::new();
            idx.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn duration_queries() {
        let data = lcg_data(400, 10_000, 2_000, 9);
        let idx = PeriodIndex::build(&data, 10, 5);
        for st in (0..10_000u64).step_by(503) {
            let q = RangeQuery::new(st, (st + 1500).min(9999));
            for md in [0u64, 10, 100, 1000] {
                let mut got = Vec::new();
                idx.query_with_duration(q, Some(md), &mut got);
                let mut want: Vec<IntervalId> = data
                    .iter()
                    .filter(|s| s.overlaps(&q) && s.duration() >= md)
                    .map(|s| s.id)
                    .collect();
                want.sort_unstable();
                assert_eq!(sorted(got), want, "{q:?} md={md}");
            }
        }
    }

    #[test]
    fn no_duplicates_despite_replication() {
        let data = lcg_data(300, 10_000, 6_000, 13);
        let idx = PeriodIndex::build(&data, 16, 4);
        assert!(idx.entries() > data.len());
        for st in (0..10_000u64).step_by(97) {
            let q = RangeQuery::new(st, (st + 5000).min(9999));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }

    #[test]
    fn updates_match_oracle() {
        let data = lcg_data(200, 2048, 150, 5);
        let mut idx = PeriodIndex::with_domain(0, 2047, 8, 3);
        let mut oracle = ScanOracle::new(&[]);
        for &s in &data {
            idx.insert(s);
            oracle.insert(s);
        }
        for s in data.iter().filter(|s| s.id % 3 == 0) {
            assert_eq!(idx.delete(s), oracle.delete(s.id));
        }
        for st in (0..2048u64).step_by(37) {
            let q = RangeQuery::new(st, (st + 80).min(2047));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }
}
