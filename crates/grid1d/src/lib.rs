//! A uniform 1D-grid over the interval domain, with reference-value
//! duplicate elimination \[15\] — the simple, practical baseline of §2 /
//! Figure 3 of the HINT paper.
//!
//! The domain is split into `p` equal-width, pairwise-disjoint partitions;
//! every interval is stored in **all** partitions it overlaps (replication
//! grows with interval length — the paper's space criticism). A range query
//! visits each overlapping partition and reports an interval `s` iff the
//! *reference value* `v = max(s.st, q.st)` falls inside that partition, so
//! each result is emitted exactly once without a dedup table.
//!
//! Updates are fast (Table 1): inserts append to the relevant partitions,
//! deletes tombstone them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hint_core::sink::{emit_live, SATURATION_POLL};
use hint_core::{Interval, IntervalId, IntervalIndex, QuerySink, RangeQuery, Time, TOMBSTONE};

/// Uniform 1D-grid interval index.
#[derive(Debug, Clone)]
pub struct Grid1D {
    /// Partition boundaries: partition `i` spans
    /// `[bounds[i], bounds[i + 1] - 1]` (the last one is inclusive of max).
    min: Time,
    max: Time,
    width: Time,
    parts: Vec<Vec<Interval>>,
    live: usize,
    tombstones: usize,
}

/// Default number of grid partitions.
pub const DEFAULT_PARTITIONS: usize = 1000;

impl Grid1D {
    /// Builds a grid with `p` partitions over the dataset's endpoint range.
    ///
    /// # Panics
    /// Panics if `data` is empty or `p == 0` (use
    /// [`Grid1D::with_domain`] for an empty, insert-ready grid).
    pub fn build(data: &[Interval], p: usize) -> Self {
        assert!(!data.is_empty(), "use with_domain() for an empty grid");
        let mut min = Time::MAX;
        let mut max = 0;
        for s in data {
            min = min.min(s.st);
            max = max.max(s.end);
        }
        let mut grid = Self::with_domain(min, max, p);
        for &s in data {
            grid.insert(s);
        }
        grid
    }

    /// Creates an empty grid with `p` partitions over `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max` or `p == 0`.
    pub fn with_domain(min: Time, max: Time, p: usize) -> Self {
        assert!(min <= max && p > 0);
        let span = max - min + 1;
        let width = span.div_ceil(p as u64).max(1);
        let actual_p = span.div_ceil(width) as usize;
        Self {
            min,
            max,
            width,
            parts: vec![Vec::new(); actual_p],
            live: 0,
            tombstones: 0,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Partition index containing domain value `x` (clamped).
    #[inline]
    fn part_of(&self, x: Time) -> usize {
        let x = x.clamp(self.min, self.max);
        (((x - self.min) / self.width) as usize).min(self.parts.len() - 1)
    }

    /// First domain value of partition `i`.
    #[inline]
    fn part_start(&self, i: usize) -> Time {
        self.min + i as Time * self.width
    }

    /// Evaluates a range query with reference-value deduplication.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Evaluates a range query into an arbitrary sink; the partition walk
    /// stops once the sink is saturated.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        if q.end < self.min || q.st > self.max {
            return;
        }
        let first = self.part_of(q.st);
        let last = self.part_of(q.end);
        // First partition: the reference value max(s.st, q.st) of every
        // overlapping interval lies here, so a plain overlap test suffices.
        // Partitions can hold most of the data under skew, so saturation
        // is polled every SATURATION_POLL entries, not only per partition.
        for chunk in self.parts[first].chunks(SATURATION_POLL) {
            if sink.is_saturated() {
                return;
            }
            for s in chunk {
                if s.overlaps(&q) {
                    emit_live(s.id, sink);
                }
            }
        }
        // Later partitions: report s iff it *starts* here (reference value
        // = s.st > q.st) and still overlaps q (s.st <= q.end; the end
        // condition is automatic because s starts after q.st).
        for (i, part) in self.parts.iter().enumerate().take(last + 1).skip(first + 1) {
            let pstart = self.part_start(i);
            for chunk in part.chunks(SATURATION_POLL) {
                if sink.is_saturated() {
                    return;
                }
                for s in chunk {
                    if s.st >= pstart && s.st <= q.end {
                        emit_live(s.id, sink);
                    }
                }
            }
        }
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    /// Inserts an interval into every partition it overlaps (fast append).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the grid domain.
    pub fn insert(&mut self, s: Interval) {
        assert!(
            s.st >= self.min && s.end <= self.max,
            "interval outside grid domain"
        );
        let first = self.part_of(s.st);
        let last = self.part_of(s.end);
        for part in &mut self.parts[first..=last] {
            part.push(s);
        }
        self.live += 1;
    }

    /// Logically deletes an interval from every partition holding it.
    /// Returns true if found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let first = self.part_of(s.st);
        let last = self.part_of(s.end);
        let mut found = false;
        for part in &mut self.parts[first..=last] {
            for slot in part.iter_mut() {
                if slot.id == s.id {
                    slot.id = TOMBSTONE;
                    found = true;
                    break;
                }
            }
        }
        if found {
            self.live -= 1;
            self.tombstones += 1;
        }
        found
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.parts.len() * std::mem::size_of::<Vec<Interval>>()
            + self.entries() * std::mem::size_of::<Interval>()
    }

    /// Total stored entries (replication included).
    pub fn entries(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }
}

impl IntervalIndex for Grid1D {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        Grid1D::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        Grid1D::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        Grid1D::size_bytes(self)
    }
    fn len(&self) -> usize {
        Grid1D::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_core::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    #[test]
    fn exhaustive_small_domain_various_p() {
        let data = lcg_data(150, 64, 25, 3);
        for p in [1, 3, 7, 16, 64, 200] {
            let grid = Grid1D::build(&data, p);
            let oracle = ScanOracle::new(&data);
            for st in 0..64u64 {
                for end in st..64 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    grid.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "p={p} {q:?}");
                }
            }
        }
    }

    #[test]
    fn random_large_domain() {
        let data = lcg_data(700, 1_000_000, 80_000, 7);
        let grid = Grid1D::build(&data, 500);
        let oracle = ScanOracle::new(&data);
        let mut x = 1u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let st = (x >> 17) % 1_000_000;
            let end = (st + (x >> 5) % 90_000).min(999_999);
            let q = RangeQuery::new(st, end);
            let mut got = Vec::new();
            grid.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn no_duplicates_despite_replication() {
        let data = lcg_data(300, 10_000, 5_000, 13); // long intervals
        let grid = Grid1D::build(&data, 100);
        assert!(grid.entries() > data.len(), "long intervals must replicate");
        for st in (0..10_000u64).step_by(111) {
            let q = RangeQuery::new(st, (st + 6000).min(9999));
            let mut got = Vec::new();
            grid.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }

    #[test]
    fn updates_match_oracle() {
        let data = lcg_data(200, 2048, 150, 5);
        let mut grid = Grid1D::with_domain(0, 2047, 64);
        let mut oracle = ScanOracle::new(&[]);
        for &s in &data {
            grid.insert(s);
            oracle.insert(s);
        }
        for s in data.iter().filter(|s| s.id % 3 == 0) {
            assert_eq!(grid.delete(s), oracle.delete(s.id));
        }
        for st in (0..2048u64).step_by(29) {
            let q = RangeQuery::new(st, (st + 100).min(2047));
            let mut got = Vec::new();
            grid.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn stabbing() {
        let data = lcg_data(300, 4096, 600, 11);
        let grid = Grid1D::build(&data, 128);
        let oracle = ScanOracle::new(&data);
        for t in (0..4096).step_by(13) {
            let mut got = Vec::new();
            grid.stab(t, &mut got);
            assert_eq!(
                sorted(got),
                oracle.query_sorted(RangeQuery::stab(t)),
                "t={t}"
            );
        }
    }

    #[test]
    fn single_partition_grid_degenerates_to_scan() {
        let data = lcg_data(50, 1000, 100, 17);
        let grid = Grid1D::build(&data, 1);
        assert_eq!(grid.partitions(), 1);
        let oracle = ScanOracle::new(&data);
        let q = RangeQuery::new(100, 500);
        let mut got = Vec::new();
        grid.query(q, &mut got);
        assert_eq!(sorted(got), oracle.query_sorted(q));
    }
}
