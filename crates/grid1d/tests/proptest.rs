//! Property-based validation of the 1D-grid: the reference-value method
//! must eliminate all duplicates for any partition count. Oracle
//! comparison (including the duplicate check) runs through the shared
//! `test-support` differential harness.

use grid1d::Grid1D;
use hint_core::ScanOracle;
use proptest::prelude::*;
use test_support::{assert_same_results_named, intervals, query};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_oracle_any_partition_count(
        data in intervals(4_000),
        q in query(4_000),
        p in 1usize..300,
    ) {
        let oracle = ScanOracle::new(&data);
        let grid = Grid1D::build(&data, p);
        assert_same_results_named("grid1d", &grid, &oracle, &[q])?;
    }

    #[test]
    fn replication_grows_with_partitions_for_long_intervals(
        data in intervals(1_000),
    ) {
        let coarse = Grid1D::build(&data, 2);
        let fine = Grid1D::build(&data, 200);
        prop_assert!(fine.entries() >= coarse.entries());
        prop_assert!(coarse.entries() >= data.len());
    }
}
