//! Property-based validation of the 1D-grid: the reference-value method
//! must eliminate all duplicates for any partition count.

use grid1d::Grid1D;
use hint_core::{Interval, RangeQuery, ScanOracle};
use proptest::prelude::*;

fn intervals(max_val: u64) -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0..max_val, 0..max_val), 1..100).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Interval::new(i as u64, a.min(b), a.max(b)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_oracle_any_partition_count(
        data in intervals(4_000),
        qa in 0u64..4_000,
        qb in 0u64..4_000,
        p in 1usize..300,
    ) {
        let q = RangeQuery::new(qa.min(qb), qa.max(qb));
        let oracle = ScanOracle::new(&data);
        let grid = Grid1D::build(&data, p);
        let mut got = Vec::new();
        grid.query(q, &mut got);
        let n = got.len();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(n, got.len(), "reference-value dedup failed");
        prop_assert_eq!(got, oracle.query_sorted(q));
    }

    #[test]
    fn replication_grows_with_partitions_for_long_intervals(
        data in intervals(1_000),
    ) {
        let coarse = Grid1D::build(&data, 2);
        let fine = Grid1D::build(&data, 200);
        prop_assert!(fine.entries() >= coarse.entries());
        prop_assert!(coarse.entries() >= data.len());
    }
}
