//! # serve — batched query serving over a sharded HINT^m
//!
//! The network front-end for the workspace's interval store: a
//! length-prefixed binary [wire protocol](proto), a pluggable
//! [`Transport`] (in-memory duplex channels for deterministic tests,
//! `std::net` TCP loopback for real sockets — no async runtime), and a
//! [batch scheduler](server) that accumulates queries from independent
//! client connections into cross-connection batches, drives them
//! through [`ShardedIndex::query_batch_merge`](hint_core::ShardedIndex)
//! in one merged level walk, and streams each query's results back to
//! its connection through incremental [`WireSink`] encoding — no
//! full-result `Vec` per query, ever.
//!
//! The server hosts a **catalog** of named indexes: every connection
//! starts addressed at the default index (id 0), can create/drop/list
//! named indexes over the wire, pick a per-connection default with
//! `UseIndex`, or address any verb at an explicit index id. Each
//! catalog entry owns its own [`hint_core::Session`], so writes
//! (`Insert`/`Delete`/`Seal`) barrier only their own index — queries
//! queued against other indexes keep batching. Beyond range queries
//! the wire speaks Allen-relation queries, server-side streamed
//! interval joins between two indexes, and merged aggregation verbs
//! (top-k by duration, per-bucket histograms). Every connection
//! observes a serializable history and replies arrive strictly in
//! request order (no correlation ids on the wire). Malformed input
//! never panics the server: well-framed garbage earns an error trailer
//! on that connection, desynchronized streams are closed.
//!
//! ## Quick start (in-memory transport)
//!
//! ```
//! use hint_core::{Domain, HintMSubs, Interval, RangeQuery, Session, ShardedIndex, SubsConfig};
//! use serve::{duplex, Client, ServeConfig, Server};
//!
//! // 1. build the engine: a sharded, sealed HINT^m behind a Session
//! let data: Vec<Interval> = (0..1_000)
//!     .map(|i| Interval::new(i, i * 7 % 8_000, (i * 7 % 8_000) + 60))
//!     .collect();
//! let sharded = ShardedIndex::build_with_domain(&data, 0, 8_191, 4, |slice, lo, hi| {
//!     HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 9), SubsConfig::full())
//! });
//! let server = Server::start(Session::new(sharded), ServeConfig::default()).unwrap();
//!
//! // 2. connect a client over an in-memory duplex pipe
//! let (client_end, server_end) = duplex();
//! server.attach(server_end);
//! let mut client = Client::new(client_end).unwrap();
//!
//! // 3. query, write, seal — replies stream back in request order
//! let ids = client.query(RangeQuery::new(100, 220)).unwrap();
//! assert!(!ids.is_empty());
//! client.insert(Interval::new(50_000, 150, 180)).unwrap();
//! assert!(client.seal().unwrap()); // folds the write into the arenas
//! assert!(client.query(RangeQuery::new(160, 170)).unwrap().contains(&50_000));
//!
//! server.shutdown();
//! ```
//!
//! For TCP, hand [`Server::listen_tcp`] a bound `TcpListener` and point
//! [`Client`]s at `TcpStream`s (see `examples/serve_client.rs`). The
//! scheduler's batching policy defaults to an adaptive AIMD batch
//! window ([`WindowController`]) with QoS lanes and admission control;
//! it is tunable via [`ServeConfig`] or the `HINT_SERVE_WINDOW` /
//! `HINT_SERVE_MAX_BATCH` / `HINT_SERVE_MAX_DELAY_US` /
//! `HINT_SERVE_LANES` / `HINT_SERVE_CONN_PENDING` /
//! `HINT_SERVE_MAX_PENDING` environment knobs (see `docs/tuning.md`);
//! `docs/protocol.md` specifies the wire format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod controller;
pub mod proto;
pub mod server;
pub mod sink;
pub mod transport;

pub use client::{Client, ClientError};
pub use controller::{ControllerConfig, WindowController};
pub use proto::{
    Command, DecodeError, Frame, FrameReader, IndexInfo, Kind, Reply, Request, Status,
    FLAG_INDEXED, FLAG_PRIORITY,
};
pub use server::{AcceptSource, BatchStats, ServeConfig, Server, SnapshotVerbs};
pub use sink::{Records, ServeSink, WireSink};
pub use transport::{duplex, DuplexTransport, Transport};
