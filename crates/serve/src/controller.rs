//! The adaptive batch-window controller: a bounded AIMD loop that
//! replaces the static `max_batch`/`max_delay` dial with a window tuned
//! from what the scheduler actually observes.
//!
//! `BENCH_serve.json` motivated this: the static window is a cliff, not
//! a dial. Window-16 beat window-1 by 1.68x, but window-64 *collapsed*
//! to 0.68x with 2.9x worse p50 — because the configured window was
//! larger than the traffic's in-flight request count, so every batch
//! waited out the full `max_delay` before flushing. The controller
//! closes that failure mode from both ends:
//!
//! * **Additive increase, escalating to slow-start**: a batch that
//!   flushed *full* means the window is the bottleneck — widen by one
//!   (up to `max_window`). Three *consecutive* full flushes mean the
//!   window is not just tight but far behind (the post-stall backlog
//!   shape: a write barrier froze the scheduler and a queue piled up) —
//!   from there each further full flush *doubles* the window so a
//!   backlog drains in a handful of batches instead of paying per-batch
//!   overhead hundreds of times. Any non-full flush drops back to
//!   additive probing.
//! * **Multiplicative decrease**: a batch that flushed on its
//!   *deadline* at under half occupancy means the window has outrun the
//!   offered load — halve it (down to `min_window`). Mild under-fill
//!   eases down by one instead, so steady traffic settles instead of
//!   sawing.
//! * **Derived delay**: the flush deadline is not a constant but the
//!   time the window is *expected* to take to fill — the inter-arrival
//!   EWMA times the remaining capacity, capped by the configured
//!   `max_delay`. At low load the window converges to `min_window` and
//!   the delay to zero: exactly the window-1 behavior, no queueing tax.
//!
//! The controller is **pure and deterministic**: it never reads the
//! clock — the scheduler feeds it timestamps in microseconds — so the
//! seeded property tests (`tests/regressions.rs`) replay arrival
//! patterns bit-for-bit. In `HINT_SERVE_WINDOW=fixed` mode the
//! scheduler never constructs one, leaving the static path byte-
//! identical to the pre-controller servers.

use std::time::Duration;

/// Smoothing factor for the inter-arrival EWMA (1/8: new samples move
/// the estimate fast enough to track a load shift within ~a batch, slow
/// enough that one burst gap does not whipsaw the derived delay).
const EWMA_WEIGHT: f64 = 0.125;

/// The controller's fixed bounds, taken from [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerConfig {
    /// Smallest window the controller may choose (>= 1).
    pub min_window: usize,
    /// Largest window the controller may choose (>= `min_window`).
    pub max_window: usize,
    /// Hard cap on the derived flush delay.
    pub max_delay: Duration,
}

/// Bounded AIMD batch-window controller. See the module docs for the
/// policy; see [`crate::ServeConfig`] for the knobs that bound it.
#[derive(Debug, Clone)]
pub struct WindowController {
    cfg: ControllerConfig,
    window: usize,
    /// EWMA of the gap between request arrivals, in microseconds.
    /// `None` until two arrivals have been seen.
    interarrival_us: Option<f64>,
    /// Timestamp of the last arrival fed in, in microseconds.
    last_arrival_us: Option<u64>,
    /// Consecutive full flushes; at three the increase escalates from
    /// additive (+1) to slow-start (x2) so a post-stall backlog drains
    /// in O(log) batches.
    full_streak: u32,
}

impl WindowController {
    /// A controller starting at `min_window` (the latency-safe end:
    /// until traffic proves it can fill bigger batches, queries are
    /// scheduled as if batching were off).
    pub fn new(cfg: ControllerConfig) -> Self {
        let cfg = ControllerConfig {
            min_window: cfg.min_window.max(1),
            max_window: cfg.max_window.max(cfg.min_window.max(1)),
            max_delay: cfg.max_delay,
        };
        Self {
            window: cfg.min_window,
            interarrival_us: None,
            last_arrival_us: None,
            full_streak: 0,
            cfg,
        }
    }

    /// The current batch window (always within `[min_window,
    /// max_window]`).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The controller's bounds.
    pub fn config(&self) -> ControllerConfig {
        self.cfg
    }

    /// Records one request arrival at `now_us` (microseconds on any
    /// monotonic scale), updating the inter-arrival EWMA.
    pub fn on_arrival(&mut self, now_us: u64) {
        if let Some(last) = self.last_arrival_us {
            let gap = now_us.saturating_sub(last) as f64;
            self.interarrival_us = Some(match self.interarrival_us {
                Some(ewma) => ewma + EWMA_WEIGHT * (gap - ewma),
                None => gap,
            });
        }
        self.last_arrival_us = Some(now_us);
    }

    /// Records one batch flush of `batch_len` requests. `deadline_hit`
    /// is true when the flush fired on the delay timer rather than on a
    /// full window. Only window-policy flushes are fed here; forced
    /// flushes (write barriers, disconnects, shutdown) say nothing
    /// about whether the window fits the load.
    pub fn on_flush(&mut self, batch_len: usize, deadline_hit: bool) {
        if batch_len == 0 {
            return;
        }
        if !deadline_hit || batch_len >= self.window {
            // the window was the binding constraint: probe wider. A
            // sustained run of full flushes is the post-stall backlog
            // shape — escalate from +1 probing to doubling so the
            // drain takes O(log) batches, not O(backlog)
            self.full_streak += 1;
            self.window = if self.full_streak >= 3 {
                // doubling is for draining a backlog, where arrivals
                // land nearly back-to-back and the EWMA collapses; at a
                // merely-steady rate it would overshoot into deadline
                // sawtooth. Cap the jump at the window the observed
                // rate can fill within max_delay, but never stall: a
                // full flush always buys at least the +1 probe.
                let rate_cap = match self.interarrival_us {
                    Some(ewma) if ewma > 0.0 => {
                        (self.cfg.max_delay.as_micros() as f64 / ewma) as usize + 1
                    }
                    _ => usize::MAX,
                };
                (self.window * 2)
                    .min(rate_cap.max(self.window + 1))
                    .min(self.cfg.max_window)
            } else {
                (self.window + 1).min(self.cfg.max_window)
            };
        } else if batch_len * 2 <= self.window {
            self.full_streak = 0;
            // deadline fired at under half occupancy — the window-64
            // cliff shape; cut multiplicatively before more batches pay
            // the full delay
            self.window = (self.window / 2).max(self.cfg.min_window);
        } else {
            // mildly under-full: ease down so steady input settles into
            // a +/-1 band instead of sawtoothing
            self.full_streak = 0;
            self.window = (self.window - 1).max(self.cfg.min_window);
        }
    }

    /// The flush deadline for the *next* batch: how long the current
    /// window is expected to take to fill at the observed arrival rate,
    /// capped by the configured `max_delay`. A window of 1 (or an
    /// unknown rate) waits nothing — that is the no-batching baseline.
    pub fn delay(&self) -> Duration {
        if self.window <= 1 {
            return Duration::ZERO;
        }
        match self.interarrival_us {
            None => Duration::ZERO,
            Some(ewma) => {
                let fill_us = ewma * (self.window - 1) as f64;
                let cap = self.cfg.max_delay.as_micros() as f64;
                Duration::from_micros(fill_us.min(cap).max(0.0) as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(min: usize, max: usize) -> ControllerConfig {
        ControllerConfig {
            min_window: min,
            max_window: max,
            max_delay: Duration::from_micros(500),
        }
    }

    #[test]
    fn starts_at_min_with_zero_delay() {
        let c = WindowController::new(cfg(1, 64));
        assert_eq!(c.window(), 1);
        assert_eq!(c.delay(), Duration::ZERO);
    }

    #[test]
    fn degenerate_bounds_are_repaired() {
        let c = WindowController::new(ControllerConfig {
            min_window: 0,
            max_window: 0,
            max_delay: Duration::ZERO,
        });
        assert_eq!(c.config().min_window, 1);
        assert_eq!(c.config().max_window, 1);
        assert_eq!(c.window(), 1);
    }

    #[test]
    fn full_batches_grow_to_the_cap_and_stop() {
        let mut c = WindowController::new(cfg(1, 8));
        for _ in 0..32 {
            let w = c.window();
            c.on_flush(w, false);
        }
        assert_eq!(c.window(), 8, "growth stops at max_window");
    }

    #[test]
    fn sustained_full_flushes_escalate_to_slow_start() {
        let mut c = WindowController::new(cfg(1, 64));
        // two full flushes probe additively...
        c.on_flush(c.window(), false);
        assert_eq!(c.window(), 2);
        c.on_flush(c.window(), false);
        assert_eq!(c.window(), 3);
        // ...the third and beyond double: a backlog drains in O(log)
        c.on_flush(c.window(), false);
        assert_eq!(c.window(), 6);
        c.on_flush(c.window(), false);
        assert_eq!(c.window(), 12);
        // any non-full flush drops back to additive probing
        c.on_flush(8, true); // mild under-fill
        assert_eq!(c.window(), 11);
        c.on_flush(c.window(), false);
        assert_eq!(c.window(), 12, "streak reset: +1, not x2");
    }

    #[test]
    fn deadline_underfill_halves_the_window() {
        let mut c = WindowController::new(cfg(1, 64));
        for _ in 0..8 {
            c.on_flush(c.window(), false);
        }
        assert_eq!(c.window(), 64);
        // deadline fires at tiny occupancy: the window-64 cliff shape
        c.on_flush(2, true);
        assert_eq!(c.window(), 32);
        c.on_flush(2, true);
        assert_eq!(c.window(), 16);
    }

    #[test]
    fn mild_underfill_eases_down_by_one() {
        let mut c = WindowController::new(cfg(1, 64));
        for _ in 0..8 {
            c.on_flush(c.window(), false);
        }
        assert_eq!(c.window(), 64);
        c.on_flush(40, true); // more than half full: -1, not /2
        assert_eq!(c.window(), 63);
    }

    #[test]
    fn empty_flushes_are_ignored() {
        let mut c = WindowController::new(cfg(1, 64));
        c.on_flush(0, true);
        assert_eq!(c.window(), 1);
    }

    #[test]
    fn delay_tracks_the_arrival_rate_and_caps() {
        let mut c = WindowController::new(cfg(1, 64));
        // arrivals every 10us
        for i in 0..100u64 {
            c.on_arrival(i * 10);
        }
        for _ in 0..3 {
            c.on_flush(c.window(), false);
        }
        assert_eq!(c.window(), 6);
        // expected fill time: ~10us * (6 - 1) = ~50us, under the cap
        let d = c.delay().as_micros();
        assert!((40..=60).contains(&d), "delay {d}us should track 50us");
        // a huge window caps at max_delay
        for _ in 0..100 {
            c.on_flush(c.window(), false);
        }
        assert_eq!(c.window(), 64);
        assert!(c.delay() <= Duration::from_micros(500));
    }

    #[test]
    fn slow_arrivals_keep_the_delay_capped_not_unbounded() {
        let mut c = WindowController::new(cfg(1, 64));
        c.on_arrival(0);
        c.on_arrival(1_000_000); // one request a second
        c.on_flush(c.window(), false);
        assert!(c.window() > 1);
        assert_eq!(c.delay(), Duration::from_micros(500), "capped at max");
    }

    #[test]
    fn steady_occupancy_converges_to_a_tight_band() {
        // G requests arrive per deadline period, forever: the window
        // must settle at ~G (full flushes grow past it, deadline
        // flushes pull it back) instead of drifting or sawtoothing
        let g = 12usize;
        let mut c = WindowController::new(cfg(1, 64));
        let mut windows = Vec::new();
        for _ in 0..200 {
            let w = c.window();
            if g >= w {
                c.on_flush(w, false); // window filled before the timer
            } else {
                c.on_flush(g, true);
            }
            windows.push(c.window());
        }
        let tail = &windows[windows.len() - 32..];
        let lo = *tail.iter().min().unwrap();
        let hi = *tail.iter().max().unwrap();
        assert!(
            hi - lo <= 2 && lo >= g - 1 && hi <= g + 2,
            "steady input must converge near {g}: tail band [{lo}, {hi}]"
        );
    }
}
