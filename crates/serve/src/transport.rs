//! The byte-stream transports the server and client run over.
//!
//! A [`Transport`] is any ordered, reliable duplex byte stream that can
//! split into an independently-owned reader and writer half (the server
//! runs them on different threads). Two implementations:
//!
//! * [`duplex`] — a pair of in-memory channel-backed streams for
//!   deterministic, port-free tests and benchmarks (the vendored
//!   `crossbeam` channels carry byte chunks; reads block, EOF is the
//!   peer dropping its writer);
//! * [`std::net::TcpStream`] — real sockets, split via `try_clone`.
//!   `Nagle` is disabled: frames are small and latency-priced.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// An ordered, reliable duplex byte stream, splittable into owned
/// halves.
pub trait Transport: Send + Sized + 'static {
    /// The read half.
    type Reader: Read + Send + 'static;
    /// The write half.
    type Writer: Write + Send + 'static;

    /// Splits into independently-owned halves. Dropping the writer must
    /// eventually surface as EOF on the peer's reader. Fallible: a TCP
    /// stream splits via `try_clone`, which can fail under fd
    /// exhaustion — the server rejects that one connection and keeps
    /// serving the rest, so splitting must not panic.
    fn split(self) -> io::Result<(Self::Reader, Self::Writer)>;
}

impl Transport for TcpStream {
    type Reader = TcpStream;
    type Writer = TcpStream;

    fn split(self) -> io::Result<(TcpStream, TcpStream)> {
        let _ = self.set_nodelay(true);
        let writer = self.try_clone()?;
        Ok((self, writer))
    }
}

/// The write half of an in-memory duplex stream: each `write` sends one
/// owned byte chunk; dropping it closes the channel (peer reads EOF).
pub struct PipeWriter {
    tx: Sender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer reader dropped"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(()) // sends are immediate
    }
}

/// The read half of an in-memory duplex stream: blocks on the channel,
/// buffering the tail of chunks larger than the caller's read buffer.
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    /// Unconsumed tail of the last received chunk.
    pending: Vec<u8>,
    /// Read offset into `pending`.
    pos: usize,
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.pos == self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // every sender gone: EOF
            }
        }
        let n = (self.pending.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// One endpoint of an in-memory duplex connection.
pub struct DuplexTransport {
    reader: PipeReader,
    writer: PipeWriter,
}

impl Transport for DuplexTransport {
    type Reader = PipeReader;
    type Writer = PipeWriter;

    fn split(self) -> io::Result<(PipeReader, PipeWriter)> {
        Ok((self.reader, self.writer))
    }
}

/// Creates a connected pair of in-memory duplex endpoints (client end,
/// server end — they are symmetric).
pub fn duplex() -> (DuplexTransport, DuplexTransport) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        DuplexTransport {
            reader: PipeReader {
                rx: arx,
                pending: Vec::new(),
                pos: 0,
            },
            writer: PipeWriter { tx: btx },
        },
        DuplexTransport {
            reader: PipeReader {
                rx: brx,
                pending: Vec::new(),
                pos: 0,
            },
            writer: PipeWriter { tx: atx },
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_roundtrips_both_directions() {
        let (a, b) = duplex();
        let (mut ar, mut aw) = a.split().unwrap();
        let (mut br, mut bw) = b.split().unwrap();
        aw.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        br.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        bw.write_all(b"pong!").unwrap();
        let mut buf = [0u8; 5];
        ar.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong!");
    }

    #[test]
    fn short_reads_drain_large_chunks() {
        let (a, b) = duplex();
        let (_ar, mut aw) = a.split().unwrap();
        let (mut br, _bw) = b.split().unwrap();
        aw.write_all(&[7u8; 100]).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 33];
        for _ in 0..4 {
            let n = br.read(&mut buf).unwrap();
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, vec![7u8; 100]);
    }

    #[test]
    fn dropping_writer_is_eof() {
        let (a, b) = duplex();
        let (_ar, aw) = a.split().unwrap();
        let (mut br, _bw) = b.split().unwrap();
        drop(aw);
        let mut buf = [0u8; 8];
        assert_eq!(br.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn writing_to_a_dropped_reader_is_broken_pipe() {
        let (a, b) = duplex();
        let (_ar, mut aw) = a.split().unwrap();
        drop(b);
        let err = aw.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }
}
