//! The client half of the wire protocol: encodes requests, decodes
//! streamed replies.
//!
//! Replies arrive strictly in request order (the protocol has no
//! correlation ids), so a client may either call the blocking
//! convenience methods ([`query`](Client::query),
//! [`insert`](Client::insert), …) one at a time, or **pipeline**: send
//! several requests with [`send`](Client::send) and then collect the
//! same number of replies with [`recv_reply`](Client::recv_reply) —
//! the shape that lets the server batch queries across (and within)
//! connections.

use crate::proto::{
    encode_request_flagged, DecodeError, Frame, FrameReader, IndexInfo, Kind, Reply, Request,
    Status,
};
use crate::transport::Transport;
use bytes::{Buf, BytesMut};
use hint_core::{AllenRelation, Interval, IntervalId, QuerySink, RangeQuery};
use std::io::{self, Write};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server's reply stream could not be decoded.
    Decode(DecodeError),
    /// The server answered with a non-`Ok` status.
    Server(Status),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Decode(e) => write!(f, "reply decode error: {e}"),
            ClientError::Server(s) => write!(f, "server error: {s:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connection to a serve endpoint over any [`Transport`].
pub struct Client<T: Transport> {
    frames: FrameReader<T::Reader>,
    writer: T::Writer,
    scratch: BytesMut,
}

impl<T: Transport> Client<T> {
    /// Wraps a connected transport. Fallible: splitting a TCP stream
    /// `try_clone`s the socket, which can fail under fd exhaustion.
    pub fn new(transport: T) -> io::Result<Self> {
        let (reader, writer) = transport.split()?;
        Ok(Self {
            frames: FrameReader::new(reader),
            writer,
            scratch: BytesMut::new(),
        })
    }

    /// Sends one request without waiting for its reply (pipelining).
    /// Every send must eventually be paired with one
    /// [`recv_reply`](Self::recv_reply). The request addresses the
    /// connection's default index (index 0 unless changed with
    /// [`use_index`](Self::use_index)).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.send_on(None, req)
    }

    /// Sends one request addressed at an explicit catalog index
    /// (pipelining). `None` falls back to the connection's default.
    pub fn send_on(&mut self, index: Option<u32>, req: &Request) -> io::Result<()> {
        self.send_flagged(index, false, req)
    }

    /// Sends one request with full wire-flag control (pipelining).
    /// `priority` sets the `FLAG_PRIORITY` bit: the scheduler routes
    /// the request through the high-QoS lane, ahead of queued
    /// enumeration traffic from other connections (replies on *this*
    /// connection stay strictly in request order regardless). Bounded
    /// verbs (top-k, histogram) ride the high lane even unflagged.
    pub fn send_flagged(
        &mut self,
        index: Option<u32>,
        priority: bool,
        req: &Request,
    ) -> io::Result<()> {
        self.scratch.clear();
        encode_request_flagged(&mut self.scratch, index, priority, req);
        self.writer.write_all(self.scratch.as_slice())?;
        self.writer.flush()
    }

    /// Receives the next reply: streams each results chunk into
    /// `on_ids` as it is decoded (no full-result buffer), then returns
    /// the end trailer. Non-`Ok` trailers are returned, not errors —
    /// they are the reply.
    pub fn recv_reply(
        &mut self,
        mut on_ids: impl FnMut(&[IntervalId]),
    ) -> Result<Reply, ClientError> {
        let mut chunk: Vec<IntervalId> = Vec::new();
        loop {
            let frame: Frame = match self.frames.read_frame() {
                Ok(Some(f)) => f,
                Ok(None) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed before the end-of-results trailer",
                    )))
                }
                Err(e) => return Err(ClientError::Decode(e)),
            };
            match frame.kind {
                Kind::Results => {
                    let mut p = frame.payload;
                    if !p.remaining().is_multiple_of(8) {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    chunk.clear();
                    chunk.reserve(p.remaining() / 8);
                    while p.has_remaining() {
                        chunk.push(p.get_u64_le());
                    }
                    on_ids(&chunk);
                }
                Kind::End => {
                    let mut p = frame.payload;
                    if p.remaining() != 9 {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    let status = Status::from_u8(p.get_u8());
                    let count = p.get_u64_le();
                    return Ok(Reply { status, count });
                }
                _ => return Err(ClientError::Decode(DecodeError::Frame(Status::BadKind))),
            }
        }
    }

    /// Range query, streaming results into a [`QuerySink`] — the
    /// remote mirror of [`hint_core::IntervalIndex::query_sink`].
    /// (Saturation cannot stop the server mid-stream; late chunks are
    /// still drained off the wire and discarded by the sink.)
    pub fn query_sink(
        &mut self,
        q: RangeQuery,
        sink: &mut dyn QuerySink,
    ) -> Result<Reply, ClientError> {
        self.query_sink_on(None, q, sink)
    }

    /// [`query_sink`](Self::query_sink) against an explicit index.
    pub fn query_sink_on(
        &mut self,
        index: Option<u32>,
        q: RangeQuery,
        sink: &mut dyn QuerySink,
    ) -> Result<Reply, ClientError> {
        self.send_on(index, &Request::Query(q))?;
        let reply = self.recv_reply(|ids| sink.emit_slice(ids))?;
        match reply.status {
            Status::Ok => Ok(reply),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Range query, collecting all result ids.
    pub fn query(&mut self, q: RangeQuery) -> Result<Vec<IntervalId>, ClientError> {
        self.query_on(None, q)
    }

    /// [`query`](Self::query) against an explicit index.
    pub fn query_on(
        &mut self,
        index: Option<u32>,
        q: RangeQuery,
    ) -> Result<Vec<IntervalId>, ClientError> {
        let mut out = Vec::new();
        self.query_sink_on(index, q, &mut out)?;
        Ok(out)
    }

    /// [`query`](Self::query) with the `FLAG_PRIORITY` bit set: the
    /// scheduler answers it through the high-QoS lane instead of
    /// queueing behind enumeration traffic (see `docs/protocol.md`).
    pub fn query_priority(
        &mut self,
        index: Option<u32>,
        q: RangeQuery,
    ) -> Result<Vec<IntervalId>, ClientError> {
        self.send_flagged(index, true, &Request::Query(q))?;
        let mut out = Vec::new();
        let reply = self.recv_reply(|ids| out.extend_from_slice(ids))?;
        match reply.status {
            Status::Ok => Ok(out),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Inserts an interval. Errs with [`ClientError::Server`] if the
    /// interval is outside the server's domain.
    pub fn insert(&mut self, s: Interval) -> Result<(), ClientError> {
        self.insert_on(None, s)
    }

    /// [`insert`](Self::insert) against an explicit index.
    pub fn insert_on(&mut self, index: Option<u32>, s: Interval) -> Result<(), ClientError> {
        self.send_on(index, &Request::Insert(s))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(()),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Deletes an interval (exact id + endpoints), returning whether it
    /// was present.
    pub fn delete(&mut self, s: Interval) -> Result<bool, ClientError> {
        self.delete_on(None, s)
    }

    /// [`delete`](Self::delete) against an explicit index.
    pub fn delete_on(&mut self, index: Option<u32>, s: Interval) -> Result<bool, ClientError> {
        self.send_on(index, &Request::Delete(s))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count == 1),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Asks the server to fold pending writes into the sealed arenas;
    /// returns whether a reseal actually ran.
    pub fn seal(&mut self) -> Result<bool, ClientError> {
        self.seal_on(None)
    }

    /// [`seal`](Self::seal) against an explicit index.
    pub fn seal_on(&mut self, index: Option<u32>) -> Result<bool, ClientError> {
        self.send_on(index, &Request::Seal)?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count == 1),
            s => Err(ClientError::Server(s)),
        }
    }

    // ---- catalog management -------------------------------------

    /// Creates a named index with the given closed domain; returns its
    /// catalog id. Duplicate names err with [`Status::BadVerb`], a full
    /// catalog with [`Status::Overloaded`].
    pub fn create_index(&mut self, name: &str, lo: u64, hi: u64) -> Result<u32, ClientError> {
        self.send(&Request::CreateIndex {
            name: name.to_string(),
            lo,
            hi,
        })?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count as u32),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Drops a named index; returns the freed catalog id. The default
    /// index (id 0) cannot be dropped ([`Status::BadVerb`]).
    pub fn drop_index(&mut self, name: &str) -> Result<u32, ClientError> {
        self.send(&Request::DropIndex(name.to_string()))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count as u32),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Points this connection's un-addressed requests at a named index;
    /// returns its catalog id.
    pub fn use_index(&mut self, name: &str) -> Result<u32, ClientError> {
        self.send(&Request::UseIndex(name.to_string()))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count as u32),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Lists the catalog's live indexes (id, name, domain, live count).
    pub fn list_indexes(&mut self) -> Result<Vec<IndexInfo>, ClientError> {
        self.send(&Request::ListIndexes)?;
        let mut infos = Vec::new();
        loop {
            let frame = self.read_frame()?;
            match frame.kind {
                Kind::Info => {
                    IndexInfo::parse_payload(&frame.payload, &mut infos)
                        .map_err(|s| ClientError::Decode(DecodeError::Frame(s)))?;
                }
                Kind::End => {
                    let reply = decode_end(frame)?;
                    if reply.status != Status::Ok {
                        return Err(ClientError::Server(reply.status));
                    }
                    if reply.count != infos.len() as u64 {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    return Ok(infos);
                }
                _ => return Err(ClientError::Decode(DecodeError::Frame(Status::BadKind))),
            }
        }
    }

    // ---- relation, aggregation, and join verbs ------------------

    /// Allen-relation query: ids of intervals standing in exactly
    /// `rel` to the query interval, evaluated server-side.
    pub fn allen(
        &mut self,
        rel: AllenRelation,
        q: RangeQuery,
    ) -> Result<Vec<IntervalId>, ClientError> {
        self.allen_on(None, rel, q)
    }

    /// [`allen`](Self::allen) against an explicit index.
    pub fn allen_on(
        &mut self,
        index: Option<u32>,
        rel: AllenRelation,
        q: RangeQuery,
    ) -> Result<Vec<IntervalId>, ClientError> {
        self.send_on(index, &Request::Allen { rel, q })?;
        let mut out = Vec::new();
        let reply = self.recv_reply(|ids| out.extend_from_slice(ids))?;
        match reply.status {
            Status::Ok => Ok(out),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Top-k by duration: the (at most) `k` longest intervals
    /// overlapping the window, longest first (id breaks ties),
    /// aggregated server-side across shards.
    pub fn top_k(&mut self, k: u32, q: RangeQuery) -> Result<Vec<IntervalId>, ClientError> {
        self.top_k_on(None, k, q)
    }

    /// [`top_k`](Self::top_k) against an explicit index.
    pub fn top_k_on(
        &mut self,
        index: Option<u32>,
        k: u32,
        q: RangeQuery,
    ) -> Result<Vec<IntervalId>, ClientError> {
        self.send_on(index, &Request::TopK { k, q })?;
        let mut out = Vec::new();
        let reply = self.recv_reply(|ids| out.extend_from_slice(ids))?;
        match reply.status {
            Status::Ok => Ok(out),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Per-bucket overlap counts for fixed-`width` buckets tiling the
    /// window from its start; `counts[i]` covers
    /// `[q.st + i*width, q.st + (i+1)*width)` clipped to the window.
    pub fn histogram(&mut self, width: u64, q: RangeQuery) -> Result<Vec<u64>, ClientError> {
        self.histogram_on(None, width, q)
    }

    /// [`histogram`](Self::histogram) against an explicit index.
    pub fn histogram_on(
        &mut self,
        index: Option<u32>,
        width: u64,
        q: RangeQuery,
    ) -> Result<Vec<u64>, ClientError> {
        self.send_on(index, &Request::Histogram { width, q })?;
        let mut out = Vec::new();
        let reply = self.recv_reply(|counts| out.extend_from_slice(counts))?;
        match reply.status {
            Status::Ok => Ok(out),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Streamed interval join: every `(outer_id, inner_id)` pair whose
    /// intervals overlap each other inside the window, the outer drawn
    /// from this request's index, the inner from the named `inner`
    /// catalog id. Pairs arrive grouped by outer id (ascending).
    pub fn join(&mut self, inner: u32, q: RangeQuery) -> Result<Vec<(u64, u64)>, ClientError> {
        self.join_on(None, inner, q)
    }

    /// [`join`](Self::join) with the outer side addressed explicitly.
    pub fn join_on(
        &mut self,
        index: Option<u32>,
        inner: u32,
        q: RangeQuery,
    ) -> Result<Vec<(u64, u64)>, ClientError> {
        self.send_on(index, &Request::Join { inner, q })?;
        let mut pairs = Vec::new();
        loop {
            let frame = self.read_frame()?;
            match frame.kind {
                Kind::Results => {
                    let mut p = frame.payload;
                    if !p.remaining().is_multiple_of(16) {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    pairs.reserve(p.remaining() / 16);
                    while p.has_remaining() {
                        let outer = p.get_u64_le();
                        let inner_id = p.get_u64_le();
                        pairs.push((outer, inner_id));
                    }
                }
                Kind::End => {
                    let reply = decode_end(frame)?;
                    if reply.status != Status::Ok {
                        return Err(ClientError::Server(reply.status));
                    }
                    if reply.count != pairs.len() as u64 {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    return Ok(pairs);
                }
                _ => return Err(ClientError::Decode(DecodeError::Frame(Status::BadKind))),
            }
        }
    }

    /// Pulls the next frame off the wire, mapping stream-end to an
    /// unexpected-EOF error.
    fn read_frame(&mut self) -> Result<Frame, ClientError> {
        match self.frames.read_frame() {
            Ok(Some(f)) => Ok(f),
            Ok(None) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before the end-of-results trailer",
            ))),
            Err(e) => Err(ClientError::Decode(e)),
        }
    }

    /// Fetches the server's snapshot as bytes — the peer-bootstrap
    /// path: feed the result to `Session::restore_bytes` and a fresh
    /// server starts from this server's exact sealed state.
    pub fn snapshot_fetch(&mut self) -> Result<Vec<u8>, ClientError> {
        self.snapshot_fetch_on(None)
    }

    /// [`snapshot_fetch`](Self::snapshot_fetch) against an explicit
    /// index.
    pub fn snapshot_fetch_on(&mut self, index: Option<u32>) -> Result<Vec<u8>, ClientError> {
        self.send_on(index, &Request::Snapshot(None))?;
        let mut bytes = Vec::new();
        loop {
            let frame: Frame = match self.frames.read_frame() {
                Ok(Some(f)) => f,
                Ok(None) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed before the end-of-results trailer",
                    )))
                }
                Err(e) => return Err(ClientError::Decode(e)),
            };
            match frame.kind {
                Kind::SnapChunk => bytes.extend_from_slice(frame.payload.as_ref()),
                Kind::End => {
                    let mut p = frame.payload;
                    if p.remaining() != 9 {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    let status = Status::from_u8(p.get_u8());
                    let count = p.get_u64_le();
                    if status != Status::Ok {
                        return Err(ClientError::Server(status));
                    }
                    if count != bytes.len() as u64 {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    return Ok(bytes);
                }
                _ => return Err(ClientError::Decode(DecodeError::Frame(Status::BadKind))),
            }
        }
    }

    /// Asks the server to durably save its snapshot to a server-side
    /// path; returns the snapshot size in bytes.
    pub fn snapshot_save(&mut self, path: &str) -> Result<u64, ClientError> {
        self.snapshot_save_on(None, path)
    }

    /// [`snapshot_save`](Self::snapshot_save) against an explicit
    /// index.
    pub fn snapshot_save_on(&mut self, index: Option<u32>, path: &str) -> Result<u64, ClientError> {
        self.send_on(index, &Request::Snapshot(Some(path.to_string())))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Asks the server to replace its index from a server-side snapshot
    /// file; returns the restored live count. A failed restore leaves
    /// the server's index unchanged ([`Status::SnapshotFailed`]).
    pub fn restore(&mut self, path: &str) -> Result<u64, ClientError> {
        self.restore_on(None, path)
    }

    /// [`restore`](Self::restore) against an explicit index.
    pub fn restore_on(&mut self, index: Option<u32>, path: &str) -> Result<u64, ClientError> {
        self.send_on(index, &Request::Restore(path.to_string()))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count),
            s => Err(ClientError::Server(s)),
        }
    }
}

/// Decodes an `End` frame into its reply trailer.
fn decode_end(frame: Frame) -> Result<Reply, ClientError> {
    let mut p = frame.payload;
    if p.remaining() != 9 {
        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
    }
    let status = Status::from_u8(p.get_u8());
    let count = p.get_u64_le();
    Ok(Reply { status, count })
}
