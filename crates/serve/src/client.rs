//! The client half of the wire protocol: encodes requests, decodes
//! streamed replies.
//!
//! Replies arrive strictly in request order (the protocol has no
//! correlation ids), so a client may either call the blocking
//! convenience methods ([`query`](Client::query),
//! [`insert`](Client::insert), …) one at a time, or **pipeline**: send
//! several requests with [`send`](Client::send) and then collect the
//! same number of replies with [`recv_reply`](Client::recv_reply) —
//! the shape that lets the server batch queries across (and within)
//! connections.

use crate::proto::{encode_request, DecodeError, Frame, FrameReader, Kind, Reply, Request, Status};
use crate::transport::Transport;
use bytes::{Buf, BytesMut};
use hint_core::{Interval, IntervalId, QuerySink, RangeQuery};
use std::io::{self, Write};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server's reply stream could not be decoded.
    Decode(DecodeError),
    /// The server answered with a non-`Ok` status.
    Server(Status),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Decode(e) => write!(f, "reply decode error: {e}"),
            ClientError::Server(s) => write!(f, "server error: {s:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connection to a serve endpoint over any [`Transport`].
pub struct Client<T: Transport> {
    frames: FrameReader<T::Reader>,
    writer: T::Writer,
    scratch: BytesMut,
}

impl<T: Transport> Client<T> {
    /// Wraps a connected transport. Fallible: splitting a TCP stream
    /// `try_clone`s the socket, which can fail under fd exhaustion.
    pub fn new(transport: T) -> io::Result<Self> {
        let (reader, writer) = transport.split()?;
        Ok(Self {
            frames: FrameReader::new(reader),
            writer,
            scratch: BytesMut::new(),
        })
    }

    /// Sends one request without waiting for its reply (pipelining).
    /// Every send must eventually be paired with one
    /// [`recv_reply`](Self::recv_reply).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.scratch.clear();
        encode_request(&mut self.scratch, req);
        self.writer.write_all(self.scratch.as_slice())?;
        self.writer.flush()
    }

    /// Receives the next reply: streams each results chunk into
    /// `on_ids` as it is decoded (no full-result buffer), then returns
    /// the end trailer. Non-`Ok` trailers are returned, not errors —
    /// they are the reply.
    pub fn recv_reply(
        &mut self,
        mut on_ids: impl FnMut(&[IntervalId]),
    ) -> Result<Reply, ClientError> {
        let mut chunk: Vec<IntervalId> = Vec::new();
        loop {
            let frame: Frame = match self.frames.read_frame() {
                Ok(Some(f)) => f,
                Ok(None) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed before the end-of-results trailer",
                    )))
                }
                Err(e) => return Err(ClientError::Decode(e)),
            };
            match frame.kind {
                Kind::Results => {
                    let mut p = frame.payload;
                    if !p.remaining().is_multiple_of(8) {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    chunk.clear();
                    chunk.reserve(p.remaining() / 8);
                    while p.has_remaining() {
                        chunk.push(p.get_u64_le());
                    }
                    on_ids(&chunk);
                }
                Kind::End => {
                    let mut p = frame.payload;
                    if p.remaining() != 9 {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    let status = Status::from_u8(p.get_u8());
                    let count = p.get_u64_le();
                    return Ok(Reply { status, count });
                }
                _ => return Err(ClientError::Decode(DecodeError::Frame(Status::BadKind))),
            }
        }
    }

    /// Range query, streaming results into a [`QuerySink`] — the
    /// remote mirror of [`hint_core::IntervalIndex::query_sink`].
    /// (Saturation cannot stop the server mid-stream; late chunks are
    /// still drained off the wire and discarded by the sink.)
    pub fn query_sink(
        &mut self,
        q: RangeQuery,
        sink: &mut dyn QuerySink,
    ) -> Result<Reply, ClientError> {
        self.send(&Request::Query(q))?;
        let reply = self.recv_reply(|ids| sink.emit_slice(ids))?;
        match reply.status {
            Status::Ok => Ok(reply),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Range query, collecting all result ids.
    pub fn query(&mut self, q: RangeQuery) -> Result<Vec<IntervalId>, ClientError> {
        let mut out = Vec::new();
        self.query_sink(q, &mut out)?;
        Ok(out)
    }

    /// Inserts an interval. Errs with [`ClientError::Server`] if the
    /// interval is outside the server's domain.
    pub fn insert(&mut self, s: Interval) -> Result<(), ClientError> {
        self.send(&Request::Insert(s))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(()),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Deletes an interval (exact id + endpoints), returning whether it
    /// was present.
    pub fn delete(&mut self, s: Interval) -> Result<bool, ClientError> {
        self.send(&Request::Delete(s))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count == 1),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Asks the server to fold pending writes into the sealed arenas;
    /// returns whether a reseal actually ran.
    pub fn seal(&mut self) -> Result<bool, ClientError> {
        self.send(&Request::Seal)?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count == 1),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Fetches the server's snapshot as bytes — the peer-bootstrap
    /// path: feed the result to `Session::restore_bytes` and a fresh
    /// server starts from this server's exact sealed state.
    pub fn snapshot_fetch(&mut self) -> Result<Vec<u8>, ClientError> {
        self.send(&Request::Snapshot(None))?;
        let mut bytes = Vec::new();
        loop {
            let frame: Frame = match self.frames.read_frame() {
                Ok(Some(f)) => f,
                Ok(None) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed before the end-of-results trailer",
                    )))
                }
                Err(e) => return Err(ClientError::Decode(e)),
            };
            match frame.kind {
                Kind::SnapChunk => bytes.extend_from_slice(frame.payload.as_ref()),
                Kind::End => {
                    let mut p = frame.payload;
                    if p.remaining() != 9 {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    let status = Status::from_u8(p.get_u8());
                    let count = p.get_u64_le();
                    if status != Status::Ok {
                        return Err(ClientError::Server(status));
                    }
                    if count != bytes.len() as u64 {
                        return Err(ClientError::Decode(DecodeError::Frame(Status::BadLength)));
                    }
                    return Ok(bytes);
                }
                _ => return Err(ClientError::Decode(DecodeError::Frame(Status::BadKind))),
            }
        }
    }

    /// Asks the server to durably save its snapshot to a server-side
    /// path; returns the snapshot size in bytes.
    pub fn snapshot_save(&mut self, path: &str) -> Result<u64, ClientError> {
        self.send(&Request::Snapshot(Some(path.to_string())))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Asks the server to replace its index from a server-side snapshot
    /// file; returns the restored live count. A failed restore leaves
    /// the server's index unchanged ([`Status::SnapshotFailed`]).
    pub fn restore(&mut self, path: &str) -> Result<u64, ClientError> {
        self.send(&Request::Restore(path.to_string()))?;
        let reply = self.recv_reply(|_| {})?;
        match reply.status {
            Status::Ok => Ok(reply.count),
            s => Err(ClientError::Server(s)),
        }
    }
}
