//! The wire protocol: length-prefixed binary frames over any ordered
//! byte stream.
//!
//! Every frame is an 8-byte header followed by `len` payload bytes, all
//! integers little-endian (see `docs/protocol.md` for the normative
//! spec):
//!
//! ```text
//! +-------+---------+------+-------+------------+=========+
//! | magic | version | kind | flags | len (u32)  | payload |
//! +-------+---------+------+-------+------------+=========+
//!    1B        1B      1B     1B        4B          len B
//! ```
//!
//! Clients send request frames ([`Request`]); the server answers each
//! request — in per-connection FIFO order, so no correlation ids are
//! needed — with zero or more [`Kind::Results`] frames (a chunk of
//! result ids each) terminated by exactly one [`Kind::End`] trailer
//! carrying a status code and the total result count. Decoding errors
//! split into two severities:
//!
//! * **recoverable** ([`DecodeError::Frame`]): the header was sound, so
//!   framing stays synchronized — the server answers with an error
//!   trailer and keeps the connection;
//! * **fatal** ([`DecodeError::Desync`] / [`DecodeError::Io`]): the
//!   byte stream can no longer be trusted (bad magic, oversized length,
//!   truncation) — the server sends one error trailer and closes the
//!   connection. Either way the server never panics on wire input.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hint_core::{AllenRelation, Interval, RangeQuery, Time};
use std::io::{self, Read};

/// First byte of every frame ('i' for interval).
pub const MAGIC: u8 = 0x69;
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Header flag bit: the payload starts with a `u32` LE index id
/// addressing a named index in the server's catalog. Frames without the
/// bit (every pre-catalog client) address the connection's default
/// index — index `0` until a `UseIndex` says otherwise — so legacy
/// traffic is untouched by the multi-index surface.
pub const FLAG_INDEXED: u8 = 0x01;
/// Header flag bit: this request asks for the scheduler's
/// high-priority QoS lane — it is answered ahead of queued unbounded
/// enumerations (per-connection FIFO still holds; see
/// `docs/protocol.md`). Intrinsically bounded verbs (`TopK`,
/// `Histogram`) ride the high lane with or without the bit; servers
/// that predate the lane (or run `HINT_SERVE_LANES=off`) ignore the
/// hint, so the bit is always safe to set.
pub const FLAG_PRIORITY: u8 = 0x02;
/// Longest index name the catalog verbs accept, in bytes (the `Info`
/// encoding carries the length in one byte).
pub const MAX_NAME: usize = 255;
/// Frame header size in bytes.
pub const HEADER_LEN: usize = 8;
/// Upper bound on a frame payload; a larger announced length is treated
/// as a desynchronized stream (fatal), bounding per-connection memory.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Result ids per [`Kind::Results`] frame (8 KiB payloads): large
/// enough to amortize headers, small enough to stream long answers
/// incrementally.
pub const RESULTS_PER_FRAME: usize = 1024;

/// Frame kinds. Requests have the high bit clear, responses set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Range query `[st, end]` (payload 16 B).
    Query = 0x01,
    /// Insert an interval (payload 24 B: id, st, end).
    Insert = 0x02,
    /// Delete an interval by exact id + endpoints (payload 24 B).
    Delete = 0x03,
    /// Seal: fold overlay writes into the columnar arenas (payload 0 B).
    Seal = 0x04,
    /// Snapshot: empty payload streams the snapshot bytes back in
    /// [`Kind::SnapChunk`] frames; a non-empty payload is a UTF-8
    /// server-side path to save durably instead.
    Snapshot = 0x05,
    /// Restore: replace the served index from the snapshot at the UTF-8
    /// server-side path in the payload.
    Restore = 0x06,
    /// Create a named index (payload 16 B + name: lo, hi, UTF-8 name).
    /// The `End` trailer's count is the new index's id.
    CreateIndex = 0x07,
    /// Drop a named index (payload: UTF-8 name). Index 0 is undropable.
    DropIndex = 0x08,
    /// List the catalog (payload 0 B); answered with [`Kind::Info`]
    /// frames, trailer count = number of entries.
    ListIndexes = 0x09,
    /// Set this connection's default index by name (payload: UTF-8
    /// name). The trailer's count is the resolved index id.
    UseIndex = 0x0A,
    /// Allen-relation query (payload 17 B: relation byte, st, end).
    AllenQuery = 0x0B,
    /// Interval join against a second index (payload 20 B: inner index
    /// id, window st, window end). The addressed index is the outer
    /// side; results stream as (outer id, inner id) pairs.
    Join = 0x0C,
    /// Top-k longest intervals overlapping a window (payload 20 B: k,
    /// st, end); result ids arrive best-first.
    TopK = 0x0D,
    /// Per-bucket overlap counts over a window (payload 24 B: bucket
    /// width, st, end); the results stream is `u64` counts, one per
    /// bucket from `st` upward.
    Histogram = 0x0E,
    /// Response: a chunk of result ids (payload 8·n B).
    Results = 0x81,
    /// Response: end-of-results trailer (payload 9 B: status, count).
    End = 0x82,
    /// Response: a chunk of raw snapshot-file bytes (streamed reply to
    /// an empty-payload [`Kind::Snapshot`]; trailer count = total bytes).
    SnapChunk = 0x83,
    /// Response: a chunk of catalog entries (reply to
    /// [`Kind::ListIndexes`]; see [`IndexInfo`] for the entry layout).
    Info = 0x84,
}

impl Kind {
    fn from_u8(b: u8) -> Option<Kind> {
        match b {
            0x01 => Some(Kind::Query),
            0x02 => Some(Kind::Insert),
            0x03 => Some(Kind::Delete),
            0x04 => Some(Kind::Seal),
            0x05 => Some(Kind::Snapshot),
            0x06 => Some(Kind::Restore),
            0x07 => Some(Kind::CreateIndex),
            0x08 => Some(Kind::DropIndex),
            0x09 => Some(Kind::ListIndexes),
            0x0A => Some(Kind::UseIndex),
            0x0B => Some(Kind::AllenQuery),
            0x0C => Some(Kind::Join),
            0x0D => Some(Kind::TopK),
            0x0E => Some(Kind::Histogram),
            0x81 => Some(Kind::Results),
            0x82 => Some(Kind::End),
            0x83 => Some(Kind::SnapChunk),
            0x84 => Some(Kind::Info),
            _ => None,
        }
    }
}

/// Status byte of an [`Kind::End`] trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request served.
    Ok = 0,
    /// Unknown frame kind (recoverable: framing intact).
    BadKind = 1,
    /// Payload length inconsistent with the frame kind (recoverable).
    BadLength = 2,
    /// Query/interval endpoints inverted (`st > end`) (recoverable).
    InvalidRange = 3,
    /// Insert outside the index's fixed domain (recoverable).
    OutOfDomain = 4,
    /// Bad magic byte: stream desynchronized (fatal, connection closes).
    BadMagic = 5,
    /// Unsupported protocol version (fatal).
    BadVersion = 6,
    /// Announced payload length exceeds [`MAX_PAYLOAD`] (fatal).
    Oversized = 7,
    /// Connection truncated mid-frame (fatal).
    Truncated = 8,
    /// Insert used the reserved tombstone id (recoverable).
    ReservedId = 9,
    /// A snapshot save or restore could not complete — bad path,
    /// storage failure, or a corrupt/unsupported snapshot file. The
    /// served index is unchanged (recoverable).
    SnapshotFailed = 10,
    /// The server could not bring the connection up (thread or resource
    /// exhaustion), or the catalog is at its configured capacity
    /// (`HINT_MAX_INDEXES`). Fatal at connection bring-up, recoverable
    /// as a `CreateIndex` answer.
    Overloaded = 11,
    /// The request addressed an index id or name the catalog does not
    /// hold (recoverable: only this request fails).
    UnknownIndex = 12,
    /// The request's verb fields are semantically invalid — an unknown
    /// Allen relation byte, a zero or overflowing histogram width, a
    /// duplicate or malformed index name, dropping index 0
    /// (recoverable).
    BadVerb = 13,
}

impl Status {
    /// Decodes a status byte (unknown values map to `BadKind` — they
    /// can only come from a peer speaking a newer protocol).
    pub fn from_u8(b: u8) -> Status {
        match b {
            0 => Status::Ok,
            1 => Status::BadKind,
            2 => Status::BadLength,
            3 => Status::InvalidRange,
            4 => Status::OutOfDomain,
            5 => Status::BadMagic,
            6 => Status::BadVersion,
            7 => Status::Oversized,
            8 => Status::Truncated,
            9 => Status::ReservedId,
            10 => Status::SnapshotFailed,
            11 => Status::Overloaded,
            12 => Status::UnknownIndex,
            13 => Status::BadVerb,
            _ => Status::BadKind,
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Range query.
    Query(RangeQuery),
    /// Insert an interval.
    Insert(Interval),
    /// Delete an interval (exact id + endpoints).
    Delete(Interval),
    /// Fold pending writes into the sealed arenas.
    Seal,
    /// Snapshot the index: `None` streams the bytes to this client,
    /// `Some(path)` saves durably to a server-side path.
    Snapshot(Option<String>),
    /// Replace the served index from a server-side snapshot file.
    Restore(String),
    /// Create a named index over the domain `[lo, hi]`.
    CreateIndex {
        /// Catalog name (non-empty UTF-8, at most [`MAX_NAME`] bytes).
        name: String,
        /// Inclusive domain lower bound.
        lo: Time,
        /// Inclusive domain upper bound.
        hi: Time,
    },
    /// Drop a named index (index 0 is undropable).
    DropIndex(String),
    /// List the catalog.
    ListIndexes,
    /// Set this connection's default index by name.
    UseIndex(String),
    /// Select the stored intervals standing in one Allen relation to
    /// the query interval.
    Allen {
        /// The relation to select.
        rel: AllenRelation,
        /// The query interval.
        q: RangeQuery,
    },
    /// Join the addressed (outer) index against `inner` inside a
    /// window: every (outer id, inner id) pair whose intervals overlap
    /// each other within the window streams back.
    Join {
        /// Catalog id of the inner index.
        inner: u32,
        /// The join window.
        q: RangeQuery,
    },
    /// The k longest intervals overlapping a window, best-first.
    TopK {
        /// How many ids to keep.
        k: u32,
        /// The window.
        q: RangeQuery,
    },
    /// Per-bucket overlap counts across a window.
    Histogram {
        /// Bucket width (> 0), anchored at the window start.
        width: u64,
        /// The window.
        q: RangeQuery,
    },
}

/// A decoded request plus its catalog addressing: `index` is the
/// explicit [`FLAG_INDEXED`] prefix when present, otherwise `None` and
/// the connection's default index applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Explicit index id, if the frame carried the [`FLAG_INDEXED`] bit.
    pub index: Option<u32>,
    /// True when the frame carried the [`FLAG_PRIORITY`] bit: the
    /// client asked for the high-priority QoS lane.
    pub priority: bool,
    /// The verb itself.
    pub verb: Request,
}

/// One catalog entry as listed by [`Kind::ListIndexes`]. Wire layout
/// per entry: `[u32 id][u8 name_len][name][u64 lo][u64 hi][u64 len]`,
/// entries packed back-to-back inside [`Kind::Info`] payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInfo {
    /// Catalog id (stable for the index's lifetime, never reused).
    pub id: u32,
    /// Catalog name.
    pub name: String,
    /// Inclusive domain lower bound.
    pub lo: Time,
    /// Inclusive domain upper bound.
    pub hi: Time,
    /// Live interval count at listing time.
    pub len: u64,
}

impl IndexInfo {
    /// Decodes the entries packed in one [`Kind::Info`] payload,
    /// appending to `out`. Fails recoverably on any shape violation.
    pub fn parse_payload(payload: &Bytes, out: &mut Vec<IndexInfo>) -> Result<(), Status> {
        let mut p = payload.clone();
        while p.has_remaining() {
            if p.remaining() < 5 {
                return Err(Status::BadLength);
            }
            let id = p.get_u32_le();
            let name_len = p.get_u8() as usize;
            if p.remaining() < name_len + 24 {
                return Err(Status::BadLength);
            }
            let name = match std::str::from_utf8(&p.as_slice()[..name_len]) {
                Ok(s) => s.to_string(),
                Err(_) => return Err(Status::BadLength),
            };
            p.advance(name_len);
            let (lo, hi, len) = (p.get_u64_le(), p.get_u64_le(), p.get_u64_le());
            out.push(IndexInfo {
                id,
                name,
                lo,
                hi,
                len,
            });
        }
        Ok(())
    }
}

/// The end-of-results trailer of one reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// Outcome of the request.
    pub status: Status,
    /// Results streamed before this trailer (queries), or the write's
    /// effect (`1`/`0` for insert-applied / delete-found / seal-ran).
    pub count: u64,
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum DecodeError {
    /// Recoverable per-request error: header sound, framing preserved.
    Frame(Status),
    /// Fatal: the stream is desynchronized; the connection must close.
    Desync(Status),
    /// Fatal: the underlying transport failed or was truncated.
    Io(io::Error),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Frame(s) => write!(f, "malformed request frame ({s:?})"),
            DecodeError::Desync(s) => write!(f, "wire desynchronized ({s:?})"),
            DecodeError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends a frame header.
fn put_header(out: &mut BytesMut, kind: Kind, len: u32) {
    put_header_flags(out, kind, 0, len)
}

/// Appends a frame header carrying explicit flag bits.
fn put_header_flags(out: &mut BytesMut, kind: Kind, flags: u8, len: u32) {
    out.put_u8(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(kind as u8);
    out.put_u8(flags);
    out.put_u32_le(len);
}

/// The verb's kind byte and payload (without any index prefix).
fn encode_verb(req: &Request) -> (Kind, BytesMut) {
    let mut body = BytesMut::new();
    let kind = match req {
        Request::Query(q) => {
            body.put_u64_le(q.st);
            body.put_u64_le(q.end);
            Kind::Query
        }
        Request::Insert(s) | Request::Delete(s) => {
            body.put_u64_le(s.id);
            body.put_u64_le(s.st);
            body.put_u64_le(s.end);
            if matches!(req, Request::Insert(_)) {
                Kind::Insert
            } else {
                Kind::Delete
            }
        }
        Request::Seal => Kind::Seal,
        Request::Snapshot(path) => {
            body.put_slice(path.as_deref().unwrap_or("").as_bytes());
            Kind::Snapshot
        }
        Request::Restore(path) => {
            body.put_slice(path.as_bytes());
            Kind::Restore
        }
        Request::CreateIndex { name, lo, hi } => {
            body.put_u64_le(*lo);
            body.put_u64_le(*hi);
            body.put_slice(name.as_bytes());
            Kind::CreateIndex
        }
        Request::DropIndex(name) => {
            body.put_slice(name.as_bytes());
            Kind::DropIndex
        }
        Request::ListIndexes => Kind::ListIndexes,
        Request::UseIndex(name) => {
            body.put_slice(name.as_bytes());
            Kind::UseIndex
        }
        Request::Allen { rel, q } => {
            body.put_u8(rel.as_u8());
            body.put_u64_le(q.st);
            body.put_u64_le(q.end);
            Kind::AllenQuery
        }
        Request::Join { inner, q } => {
            body.put_u32_le(*inner);
            body.put_u64_le(q.st);
            body.put_u64_le(q.end);
            Kind::Join
        }
        Request::TopK { k, q } => {
            body.put_u32_le(*k);
            body.put_u64_le(q.st);
            body.put_u64_le(q.end);
            Kind::TopK
        }
        Request::Histogram { width, q } => {
            body.put_u64_le(*width);
            body.put_u64_le(q.st);
            body.put_u64_le(q.end);
            Kind::Histogram
        }
    };
    (kind, body)
}

/// Encodes a request frame addressed to the connection's default index
/// (no [`FLAG_INDEXED`] bit — byte-identical to pre-catalog encodings).
pub fn encode_request(out: &mut BytesMut, req: &Request) {
    encode_request_on(out, None, req)
}

/// Encodes a request frame, optionally addressed to an explicit catalog
/// index via the [`FLAG_INDEXED`] payload prefix.
pub fn encode_request_on(out: &mut BytesMut, index: Option<u32>, req: &Request) {
    encode_request_flagged(out, index, false, req)
}

/// Encodes a request frame with full flag control: optional explicit
/// catalog index ([`FLAG_INDEXED`] payload prefix) and the
/// [`FLAG_PRIORITY`] QoS-lane hint. With `index: None, priority: false`
/// the encoding is byte-identical to [`encode_request`].
pub fn encode_request_flagged(
    out: &mut BytesMut,
    index: Option<u32>,
    priority: bool,
    req: &Request,
) {
    let (kind, body) = encode_verb(req);
    let pri = if priority { FLAG_PRIORITY } else { 0 };
    match index {
        None => {
            put_header_flags(out, kind, pri, body.len() as u32);
        }
        Some(ix) => {
            put_header_flags(out, kind, FLAG_INDEXED | pri, body.len() as u32 + 4);
            out.put_u32_le(ix);
        }
    }
    out.put_slice(body.as_slice());
}

/// Encodes the [`Kind::Info`] reply to a `ListIndexes`: the entries
/// packed into chunked `Info` frames (many fit one frame at the default
/// catalog capacity), followed by an `Ok` trailer counting them.
pub fn encode_index_infos(out: &mut BytesMut, entries: &[IndexInfo]) {
    // worst-case entry is 4 + 1 + MAX_NAME + 24 bytes; 512 per frame
    // stays far under MAX_PAYLOAD
    for chunk in entries.chunks(512) {
        let mut body = BytesMut::new();
        for e in chunk {
            debug_assert!(e.name.len() <= MAX_NAME);
            body.put_u32_le(e.id);
            body.put_u8(e.name.len() as u8);
            body.put_slice(e.name.as_bytes());
            body.put_u64_le(e.lo);
            body.put_u64_le(e.hi);
            body.put_u64_le(e.len);
        }
        put_header(out, Kind::Info, body.len() as u32);
        out.put_slice(body.as_slice());
    }
    encode_end(
        out,
        Reply {
            status: Status::Ok,
            count: entries.len() as u64,
        },
    );
}

/// Encodes one streamed snapshot chunk (reply to an empty-payload
/// [`Kind::Snapshot`] request).
///
/// # Panics
/// Panics if the chunk overflows [`MAX_PAYLOAD`] — the scheduler slices
/// snapshots into far smaller chunks, never wire-controlled.
pub fn encode_snapshot_chunk(out: &mut BytesMut, bytes: &[u8]) {
    assert!(
        bytes.len() <= MAX_PAYLOAD as usize,
        "snapshot chunk too large"
    );
    put_header(out, Kind::SnapChunk, bytes.len() as u32);
    out.put_slice(bytes);
}

/// Encodes one results chunk. `ids_le` is the chunk's payload — result
/// ids already in little-endian wire form (the encoding sink produces
/// them that way, so this is a header + memcpy, no per-id work).
///
/// # Panics
/// Panics if the chunk is not a whole number of ids or overflows
/// [`MAX_PAYLOAD`]; both are internal invariants of the encoding sink,
/// never wire-controlled.
pub fn encode_results(out: &mut BytesMut, ids_le: &[u8]) {
    assert_eq!(ids_le.len() % 8, 0, "results payload must be whole ids");
    assert!(
        ids_le.len() <= MAX_PAYLOAD as usize,
        "results chunk too large"
    );
    put_header(out, Kind::Results, ids_le.len() as u32);
    out.put_slice(ids_le);
}

/// Encodes an end-of-results trailer.
pub fn encode_end(out: &mut BytesMut, reply: Reply) {
    put_header(out, Kind::End, 9);
    out.put_u8(reply.status as u8);
    out.put_u64_le(reply.count);
}

/// A decoded frame: its kind, header flags and (owned) payload bytes.
#[derive(Debug)]
pub struct Frame {
    /// Frame kind.
    pub kind: Kind,
    /// Header flag bits (see [`FLAG_INDEXED`]).
    pub flags: u8,
    /// Payload (`len` bytes, already read off the stream).
    pub payload: Bytes,
}

impl Frame {
    /// Interprets this frame as a request, validating payload shape and
    /// semantics (endpoint order). Returns the recoverable status on
    /// failure — by the time a `Frame` exists, framing is synchronized.
    /// Any explicit index prefix is parsed and discarded; prefer
    /// [`to_command`](Self::to_command) on the serving path.
    pub fn to_request(&self) -> Result<Request, Status> {
        self.to_command().map(|c| c.verb)
    }

    /// Interprets this frame as a [`Command`]: the optional
    /// [`FLAG_INDEXED`] index prefix, the [`FLAG_PRIORITY`] lane hint,
    /// plus the verb. Unknown flag bits are rejected recoverably
    /// ([`Status::BadVerb`]) rather than silently misread.
    pub fn to_command(&self) -> Result<Command, Status> {
        let mut p = self.payload.clone();
        if self.flags & !(FLAG_INDEXED | FLAG_PRIORITY) != 0 {
            return Err(Status::BadVerb);
        }
        let index = if self.flags & FLAG_INDEXED != 0 {
            if p.remaining() < 4 {
                return Err(Status::BadLength);
            }
            Some(p.get_u32_le())
        } else {
            None
        };
        let priority = self.flags & FLAG_PRIORITY != 0;
        let verb = self.parse_verb(p)?;
        Ok(Command {
            index,
            priority,
            verb,
        })
    }

    /// Decodes an index name payload: non-empty, bounded, UTF-8.
    fn parse_name(mut p: Bytes) -> Result<String, Status> {
        if p.remaining() == 0 || p.remaining() > MAX_NAME {
            return Err(Status::BadVerb);
        }
        match std::str::from_utf8(p.as_slice()) {
            Ok(name) => {
                let name = name.to_string();
                p.advance(p.remaining());
                Ok(name)
            }
            Err(_) => Err(Status::BadLength),
        }
    }

    /// Decodes the verb fields from `p` (the payload after any index
    /// prefix was consumed).
    fn parse_verb(&self, mut p: Bytes) -> Result<Request, Status> {
        match self.kind {
            Kind::Query => {
                if p.remaining() != 16 {
                    return Err(Status::BadLength);
                }
                let (st, end) = (p.get_u64_le(), p.get_u64_le());
                if st > end {
                    return Err(Status::InvalidRange);
                }
                Ok(Request::Query(RangeQuery { st, end }))
            }
            Kind::Insert | Kind::Delete => {
                if p.remaining() != 24 {
                    return Err(Status::BadLength);
                }
                let (id, st, end) = (p.get_u64_le(), p.get_u64_le(), p.get_u64_le());
                if st > end {
                    return Err(Status::InvalidRange);
                }
                let s = Interval { id, st, end };
                Ok(if self.kind == Kind::Insert {
                    Request::Insert(s)
                } else {
                    Request::Delete(s)
                })
            }
            Kind::Seal => {
                if p.has_remaining() {
                    return Err(Status::BadLength);
                }
                Ok(Request::Seal)
            }
            Kind::Snapshot => {
                if !p.has_remaining() {
                    return Ok(Request::Snapshot(None));
                }
                match std::str::from_utf8(p.as_slice()) {
                    Ok(path) => Ok(Request::Snapshot(Some(path.to_string()))),
                    Err(_) => Err(Status::BadLength), // path must be UTF-8
                }
            }
            Kind::Restore => {
                if !p.has_remaining() {
                    return Err(Status::BadLength); // a restore needs a path
                }
                match std::str::from_utf8(p.as_slice()) {
                    Ok(path) => Ok(Request::Restore(path.to_string())),
                    Err(_) => Err(Status::BadLength),
                }
            }
            Kind::CreateIndex => {
                if p.remaining() < 16 {
                    return Err(Status::BadLength);
                }
                let (lo, hi) = (p.get_u64_le(), p.get_u64_le());
                if lo > hi {
                    return Err(Status::InvalidRange);
                }
                let name = Self::parse_name(p)?;
                Ok(Request::CreateIndex { name, lo, hi })
            }
            Kind::DropIndex => Ok(Request::DropIndex(Self::parse_name(p)?)),
            Kind::ListIndexes => {
                if p.has_remaining() {
                    return Err(Status::BadLength);
                }
                Ok(Request::ListIndexes)
            }
            Kind::UseIndex => Ok(Request::UseIndex(Self::parse_name(p)?)),
            Kind::AllenQuery => {
                if p.remaining() != 17 {
                    return Err(Status::BadLength);
                }
                let rel = AllenRelation::from_u8(p.get_u8()).ok_or(Status::BadVerb)?;
                let (st, end) = (p.get_u64_le(), p.get_u64_le());
                if st > end {
                    return Err(Status::InvalidRange);
                }
                Ok(Request::Allen {
                    rel,
                    q: RangeQuery { st, end },
                })
            }
            Kind::Join => {
                if p.remaining() != 20 {
                    return Err(Status::BadLength);
                }
                let inner = p.get_u32_le();
                let (st, end) = (p.get_u64_le(), p.get_u64_le());
                if st > end {
                    return Err(Status::InvalidRange);
                }
                Ok(Request::Join {
                    inner,
                    q: RangeQuery { st, end },
                })
            }
            Kind::TopK => {
                if p.remaining() != 20 {
                    return Err(Status::BadLength);
                }
                let k = p.get_u32_le();
                let (st, end) = (p.get_u64_le(), p.get_u64_le());
                if st > end {
                    return Err(Status::InvalidRange);
                }
                Ok(Request::TopK {
                    k,
                    q: RangeQuery { st, end },
                })
            }
            Kind::Histogram => {
                if p.remaining() != 24 {
                    return Err(Status::BadLength);
                }
                let width = p.get_u64_le();
                let (st, end) = (p.get_u64_le(), p.get_u64_le());
                if width == 0 {
                    return Err(Status::BadVerb);
                }
                if st > end {
                    return Err(Status::InvalidRange);
                }
                Ok(Request::Histogram {
                    width,
                    q: RangeQuery { st, end },
                })
            }
            // response kinds are not requests
            Kind::Results | Kind::End | Kind::SnapChunk | Kind::Info => Err(Status::BadKind),
        }
    }
}

/// Incremental frame reader over any blocking byte stream.
///
/// Reads exactly one frame per [`read_frame`](Self::read_frame) call;
/// EOF *between* frames is a clean close (`Ok(None)`), EOF *inside* a
/// frame is [`DecodeError::Io`]. Unknown-but-plausible headers (valid
/// magic/version/length, unknown kind byte) skip their payload and
/// surface as recoverable [`DecodeError::Frame`], so one junk frame
/// from a newer client does not kill the connection.
pub struct FrameReader<R: Read> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Reads the next frame. `Ok(None)` on clean EOF.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        let mut header = [0u8; HEADER_LEN];
        match read_exact_or_eof(&mut self.inner, &mut header) {
            Ok(false) => return Ok(None), // clean EOF at a frame boundary
            Ok(true) => {}
            Err(e) => return Err(DecodeError::Io(e)),
        }
        if header[0] != MAGIC {
            return Err(DecodeError::Desync(Status::BadMagic));
        }
        if header[1] != VERSION {
            return Err(DecodeError::Desync(Status::BadVersion));
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_PAYLOAD {
            return Err(DecodeError::Desync(Status::Oversized));
        }
        let mut payload = vec![0u8; len as usize];
        self.inner
            .read_exact(&mut payload)
            .map_err(DecodeError::Io)?;
        let kind = match Kind::from_u8(header[2]) {
            Some(k) => k,
            // header + payload consumed: framing is intact, the kind is
            // just unknown — recoverable
            None => return Err(DecodeError::Frame(Status::BadKind)),
        };
        Ok(Some(Frame {
            kind,
            flags: header[3],
            payload: Bytes::from(payload),
        }))
    }

    /// Consumes the reader, returning the stream.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

/// `read_exact`, except a clean EOF before the *first* byte returns
/// `Ok(false)` instead of an error.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection truncated mid-frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reader(bytes: Vec<u8>) -> FrameReader<io::Cursor<Vec<u8>>> {
        FrameReader::new(io::Cursor::new(bytes))
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Query(RangeQuery::new(3, 999)),
            Request::Insert(Interval::new(7, 10, 20)),
            Request::Delete(Interval::new(7, 10, 20)),
            Request::Seal,
            Request::Snapshot(None),
            Request::Snapshot(Some("/var/lib/hint/a.snap".into())),
            Request::Restore("/var/lib/hint/a.snap".into()),
            Request::CreateIndex {
                name: "audit".into(),
                lo: 0,
                hi: 4_095,
            },
            Request::DropIndex("audit".into()),
            Request::ListIndexes,
            Request::UseIndex("audit".into()),
            Request::Allen {
                rel: hint_core::AllenRelation::During,
                q: RangeQuery::new(5, 95),
            },
            Request::Join {
                inner: 2,
                q: RangeQuery::new(0, 1_000),
            },
            Request::TopK {
                k: 10,
                q: RangeQuery::new(3, 77),
            },
            Request::Histogram {
                width: 16,
                q: RangeQuery::new(0, 255),
            },
        ];
        let mut out = BytesMut::new();
        for r in &reqs {
            encode_request(&mut out, r);
        }
        let mut rd = reader(Vec::from(out));
        for want in &reqs {
            let frame = rd.read_frame().unwrap().unwrap();
            assert_eq!(frame.to_request().as_ref(), Ok(want));
            // a legacy encoding carries no explicit index
            assert_eq!(frame.to_command().unwrap().index, None);
        }
        assert!(rd.read_frame().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn indexed_addressing_roundtrips_on_every_verb() {
        let reqs = [
            Request::Query(RangeQuery::new(3, 999)),
            Request::Insert(Interval::new(7, 10, 20)),
            Request::Delete(Interval::new(7, 10, 20)),
            Request::Seal,
            Request::Snapshot(Some("/tmp/x.snap".into())),
            Request::Restore("/tmp/x.snap".into()),
            Request::Allen {
                rel: hint_core::AllenRelation::Meets,
                q: RangeQuery::new(5, 9),
            },
            Request::Join {
                inner: 1,
                q: RangeQuery::new(0, 10),
            },
            Request::TopK {
                k: 3,
                q: RangeQuery::new(0, 10),
            },
            Request::Histogram {
                width: 2,
                q: RangeQuery::new(0, 10),
            },
        ];
        let mut out = BytesMut::new();
        for r in &reqs {
            encode_request_on(&mut out, Some(42), r);
        }
        let mut rd = reader(Vec::from(out));
        for want in &reqs {
            let frame = rd.read_frame().unwrap().unwrap();
            assert_eq!(frame.flags, FLAG_INDEXED);
            let cmd = frame.to_command().unwrap();
            assert_eq!(cmd.index, Some(42));
            assert_eq!(&cmd.verb, want);
        }
    }

    #[test]
    fn new_verbs_validate_recoverably() {
        // unknown Allen relation byte
        let mut bytes = vec![MAGIC, VERSION, 0x0B, 0, 17, 0, 0, 0, 13];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_command(), Err(Status::BadVerb));
        // zero-width histogram
        let mut out = BytesMut::new();
        encode_request(
            &mut out,
            &Request::Histogram {
                width: 5,
                q: RangeQuery::new(0, 9),
            },
        );
        let mut bytes = Vec::from(out);
        bytes[HEADER_LEN..HEADER_LEN + 8].fill(0);
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_command(), Err(Status::BadVerb));
        // empty index name
        let bytes = vec![MAGIC, VERSION, 0x08, 0, 0, 0, 0, 0];
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_command(), Err(Status::BadVerb));
        // over-long index name
        let mut out = BytesMut::new();
        encode_request(&mut out, &Request::UseIndex("n".repeat(MAX_NAME + 1)));
        let f = reader(Vec::from(out)).read_frame().unwrap().unwrap();
        assert_eq!(f.to_command(), Err(Status::BadVerb));
        // truncated CreateIndex (domain cut short)
        let bytes = vec![MAGIC, VERSION, 0x07, 0, 8, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8];
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_command(), Err(Status::BadLength));
        // an unknown flag bit must not be silently misread (0x01 and
        // 0x02 are assigned; 0x04 is the lowest unassigned bit)
        let mut out = BytesMut::new();
        encode_request(&mut out, &Request::Seal);
        let mut bytes = Vec::from(out);
        bytes[3] = 0x04;
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_command(), Err(Status::BadVerb));
        // the INDEXED flag demands at least the 4-byte prefix
        let bytes = vec![MAGIC, VERSION, 0x04, FLAG_INDEXED, 2, 0, 0, 0, 9, 9];
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_command(), Err(Status::BadLength));
    }

    #[test]
    fn priority_flag_roundtrips_alone_and_with_indexing() {
        // priority without an index prefix: flags carry only 0x02 and
        // the payload is byte-identical to the unflagged encoding
        let q = Request::Query(RangeQuery::new(3, 999));
        let mut plain = BytesMut::new();
        encode_request(&mut plain, &q);
        let mut pri = BytesMut::new();
        encode_request_flagged(&mut pri, None, true, &q);
        assert_eq!(plain.as_slice()[HEADER_LEN..], pri.as_slice()[HEADER_LEN..]);
        let f = reader(Vec::from(pri)).read_frame().unwrap().unwrap();
        assert_eq!(f.flags, FLAG_PRIORITY);
        let cmd = f.to_command().unwrap();
        assert!(cmd.priority);
        assert_eq!(cmd.index, None);
        assert_eq!(cmd.verb, q);
        // priority + explicit index compose
        let mut both = BytesMut::new();
        encode_request_flagged(&mut both, Some(7), true, &q);
        let f = reader(Vec::from(both)).read_frame().unwrap().unwrap();
        assert_eq!(f.flags, FLAG_INDEXED | FLAG_PRIORITY);
        let cmd = f.to_command().unwrap();
        assert!(cmd.priority);
        assert_eq!(cmd.index, Some(7));
        assert_eq!(cmd.verb, q);
        // the unflagged path reports priority: false
        let f = reader(Vec::from(plain)).read_frame().unwrap().unwrap();
        assert!(!f.to_command().unwrap().priority);
        // encode_request_flagged(None, false) is encode_request
        let mut flagless = BytesMut::new();
        encode_request_flagged(&mut flagless, None, false, &q);
        let mut want = BytesMut::new();
        encode_request(&mut want, &q);
        assert_eq!(flagless, want);
    }

    #[test]
    fn index_infos_roundtrip_through_info_frames() {
        let entries = vec![
            IndexInfo {
                id: 0,
                name: "default".into(),
                lo: 0,
                hi: 4_095,
                len: 500,
            },
            IndexInfo {
                id: 3,
                name: "audit".into(),
                lo: 100,
                hi: 200,
                len: 0,
            },
        ];
        let mut out = BytesMut::new();
        encode_index_infos(&mut out, &entries);
        let mut rd = reader(Vec::from(out));
        let mut got = Vec::new();
        loop {
            let f = rd.read_frame().unwrap().unwrap();
            match f.kind {
                Kind::Info => IndexInfo::parse_payload(&f.payload, &mut got).unwrap(),
                Kind::End => {
                    let mut p = f.payload;
                    assert_eq!(Status::from_u8(p.get_u8()), Status::Ok);
                    assert_eq!(p.get_u64_le(), 2);
                    break;
                }
                k => panic!("unexpected kind {k:?}"),
            }
        }
        assert_eq!(got, entries);
        // a truncated entry is a recoverable decode error
        let mut bad = Vec::new();
        assert_eq!(
            IndexInfo::parse_payload(&Bytes::from(vec![1, 0, 0]), &mut bad),
            Err(Status::BadLength)
        );
    }

    #[test]
    fn results_and_end_roundtrip() {
        let mut out = BytesMut::new();
        let ids: Vec<u8> = [5u64, 6, 7].iter().flat_map(|v| v.to_le_bytes()).collect();
        encode_results(&mut out, &ids);
        encode_end(
            &mut out,
            Reply {
                status: Status::Ok,
                count: 3,
            },
        );
        let mut rd = reader(Vec::from(out));
        let f = rd.read_frame().unwrap().unwrap();
        assert_eq!(f.kind, Kind::Results);
        let mut p = f.payload;
        assert_eq!(p.remaining(), 24);
        assert_eq!((p.get_u64_le(), p.get_u64_le(), p.get_u64_le()), (5, 6, 7));
        let f = rd.read_frame().unwrap().unwrap();
        assert_eq!(f.kind, Kind::End);
        let mut p = f.payload;
        assert_eq!(Status::from_u8(p.get_u8()), Status::Ok);
        assert_eq!(p.get_u64_le(), 3);
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut rd = reader(vec![0xFF; 32]);
        match rd.read_frame() {
            Err(DecodeError::Desync(Status::BadMagic)) => {}
            other => panic!("expected BadMagic desync, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_is_fatal() {
        let mut rd = reader(vec![MAGIC, 99, 0x01, 0, 0, 0, 0, 0]);
        match rd.read_frame() {
            Err(DecodeError::Desync(Status::BadVersion)) => {}
            other => panic!("expected BadVersion desync, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_fatal() {
        let len = (MAX_PAYLOAD + 1).to_le_bytes();
        let mut rd = reader(vec![
            MAGIC, VERSION, 0x01, 0, len[0], len[1], len[2], len[3],
        ]);
        match rd.read_frame() {
            Err(DecodeError::Desync(Status::Oversized)) => {}
            other => panic!("expected Oversized desync, got {other:?}"),
        }
    }

    #[test]
    fn truncations_are_io_errors() {
        // header cut short
        let mut rd = reader(vec![MAGIC, VERSION, 0x01]);
        assert!(matches!(rd.read_frame(), Err(DecodeError::Io(_))));
        // payload cut short
        let mut out = BytesMut::new();
        encode_request(&mut out, &Request::Query(RangeQuery::new(0, 1)));
        let mut bytes = Vec::from(out);
        bytes.truncate(HEADER_LEN + 3);
        let mut rd = reader(bytes);
        assert!(matches!(rd.read_frame(), Err(DecodeError::Io(_))));
    }

    #[test]
    fn unknown_kind_is_recoverable_and_stream_resyncs() {
        let mut bytes = vec![MAGIC, VERSION, 0x7E, 0, 4, 0, 0, 0, 1, 2, 3, 4];
        let mut good = BytesMut::new();
        encode_request(&mut good, &Request::Seal);
        bytes.extend_from_slice(good.as_slice());
        let mut rd = reader(bytes);
        assert!(matches!(
            rd.read_frame(),
            Err(DecodeError::Frame(Status::BadKind))
        ));
        // the junk frame's payload was skipped; the next frame decodes
        let f = rd.read_frame().unwrap().unwrap();
        assert_eq!(f.to_request().unwrap(), Request::Seal);
    }

    #[test]
    fn semantic_validation_rejects_without_panicking() {
        // query with st > end
        let mut bytes = vec![MAGIC, VERSION, 0x01, 0, 16, 0, 0, 0];
        bytes.extend_from_slice(&9u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_request(), Err(Status::InvalidRange));
        // insert with a short payload
        let bytes = vec![MAGIC, VERSION, 0x02, 0, 8, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8];
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_request(), Err(Status::BadLength));
        // seal with a non-empty payload
        let bytes = vec![MAGIC, VERSION, 0x04, 0, 1, 0, 0, 0, 0];
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_request(), Err(Status::BadLength));
    }

    #[test]
    fn status_bytes_roundtrip() {
        for s in [
            Status::Ok,
            Status::BadKind,
            Status::BadLength,
            Status::InvalidRange,
            Status::OutOfDomain,
            Status::BadMagic,
            Status::BadVersion,
            Status::Oversized,
            Status::Truncated,
            Status::ReservedId,
            Status::SnapshotFailed,
            Status::Overloaded,
            Status::UnknownIndex,
            Status::BadVerb,
        ] {
            assert_eq!(Status::from_u8(s as u8), s);
        }
    }

    #[test]
    fn snapshot_and_restore_payloads_are_validated() {
        // restore with no path
        let bytes = vec![MAGIC, VERSION, 0x06, 0, 0, 0, 0, 0];
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_request(), Err(Status::BadLength));
        // non-UTF-8 path bytes
        let bytes = vec![MAGIC, VERSION, 0x05, 0, 2, 0, 0, 0, 0xFF, 0xFE];
        let f = reader(bytes).read_frame().unwrap().unwrap();
        assert_eq!(f.to_request(), Err(Status::BadLength));
        // snapshot-chunk frames are responses, never requests
        let mut out = BytesMut::new();
        encode_snapshot_chunk(&mut out, &[1, 2, 3]);
        let f = reader(Vec::from(out)).read_frame().unwrap().unwrap();
        assert_eq!(f.kind, Kind::SnapChunk);
        assert_eq!(f.payload.as_ref(), &[1, 2, 3]);
        assert_eq!(f.to_request(), Err(Status::BadKind));
    }
}
