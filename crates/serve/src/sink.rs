//! The demultiplexing result encoder: one [`WireSink`] per in-flight
//! query turns the executor's merged batch walk into per-connection
//! response bytes, with no intermediate `Vec<IntervalId>` per query.
//!
//! The scheduler hands the batch to
//! [`ShardedIndex::query_batch_merge`](hint_core::ShardedIndex::query_batch_merge)
//! with one `WireSink` per query; every id the index reports is encoded
//! straight into the sink's little-endian payload buffer (a bulk
//! `emit_slice` run becomes one `memcpy`-shaped loop), and the
//! [`MergeableSink`] contract makes the parallel path free: a worker's
//! fork is another byte buffer, and merging is buffer concatenation in
//! shard order — bit-identical to the sequential emission order. When
//! the batch returns, [`WireSink::into_frames`] chops the payload into
//! `Results` frames and the `End` trailer addressed to the owning
//! connection: the demux step that lets one merged walk feed many
//! connections.

use crate::proto::{encode_end, encode_results, Reply, Status, RESULTS_PER_FRAME};
use bytes::{BufMut, BytesMut};
use hint_core::{
    ArenaRun, BucketHistogram, Interval, IntervalId, MergeableSink, QuerySink, RangeQuery,
    RelationFilter, TopKByDuration,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The scheduler's shared id → interval table for one catalog entry:
/// what lets relation filters and aggregation sinks resolve endpoints
/// from the bare ids the walk emits. `Arc`-shared so every fork of a
/// sink (one per shard) reads the same table without copying it.
pub type Records = Arc<HashMap<IntervalId, Interval>>;

/// One run of a query's results, in emission order.
#[derive(Debug)]
enum Segment {
    /// Piecewise emissions, already in little-endian wire encoding
    /// (8 bytes per id).
    Bytes(BytesMut),
    /// A zero-copy handle into a sealed shard's id arena — carried
    /// across the fork/merge boundary as a slice handle and encoded
    /// straight from the arena only when frames are cut.
    Arena(ArenaRun),
}

/// Encodes one query's results incrementally into wire form.
///
/// Comparison-free bulk runs arrive as [`ArenaRun`] handles
/// ([`QuerySink::emit_arena`]) and are kept as handles until
/// [`into_frames`](Self::into_frames) — the ids cross the executor's
/// fork/merge boundary without ever being copied into an intermediate
/// buffer.
#[derive(Debug, Default)]
pub struct WireSink {
    /// Completed runs, in emission order.
    segments: Vec<Segment>,
    /// The open byte run taking piecewise emissions.
    tail: BytesMut,
    /// Ids accepted so far.
    count: u64,
}

impl WireSink {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ids encoded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Closes the open byte run into the segment list.
    fn flush_tail(&mut self) {
        if !self.tail.is_empty() {
            self.segments
                .push(Segment::Bytes(std::mem::take(&mut self.tail)));
        }
    }

    /// Appends encoded ids to the frame under construction, cutting a
    /// `Results` frame into `out` each time it fills. `bytes.len()` and
    /// the frame capacity are both multiples of 8, so ids never split
    /// across frames.
    fn fill(out: &mut BytesMut, frame: &mut BytesMut, mut bytes: &[u8]) {
        let cap = RESULTS_PER_FRAME * 8;
        while !bytes.is_empty() {
            let take = (cap - frame.len()).min(bytes.len());
            frame.put_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if frame.len() == cap {
                encode_results(out, frame.as_slice());
                frame.clear();
            }
        }
    }

    /// Consumes the sink, appending its response — result chunks of at
    /// most [`RESULTS_PER_FRAME`] ids, then the `Ok` end trailer — to a
    /// connection's outgoing byte buffer. Arena segments are encoded
    /// here, straight from the sealed arena slice: the final consumer of
    /// the zero-copy read path.
    pub fn into_frames(self, out: &mut BytesMut) {
        let cap = RESULTS_PER_FRAME * 8;
        let mut frame = BytesMut::with_capacity(cap.min(self.count as usize * 8));
        for seg in &self.segments {
            match seg {
                Segment::Bytes(b) => Self::fill(out, &mut frame, b.as_slice()),
                Segment::Arena(run) => {
                    for &id in run.as_slice() {
                        frame.put_u64_le(id);
                        if frame.len() == cap {
                            encode_results(out, frame.as_slice());
                            frame.clear();
                        }
                    }
                }
            }
        }
        Self::fill(out, &mut frame, self.tail.as_slice());
        if !frame.is_empty() {
            encode_results(out, frame.as_slice());
        }
        encode_end(
            out,
            Reply {
                status: Status::Ok,
                count: self.count,
            },
        );
    }
}

impl QuerySink for WireSink {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        self.tail.put_u64_le(id);
        self.count += 1;
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        for &id in ids {
            self.tail.put_u64_le(id);
        }
        self.count += ids.len() as u64;
    }

    fn wants_arenas(&self) -> bool {
        true
    }

    fn emit_arena(&mut self, run: &ArenaRun) {
        if run.len() < hint_core::ARENA_HANDLE_MIN {
            // short runs: the fixed handle bookkeeping (segment entry,
            // refcount round-trip, flush of the open byte run) costs
            // more than encoding the few ids inline
            self.emit_slice(run.as_slice());
            return;
        }
        self.flush_tail();
        self.count += run.len() as u64;
        self.segments.push(Segment::Arena(run.clone()));
    }
}

impl MergeableSink for WireSink {
    fn fork(&self) -> Self {
        WireSink::new()
    }

    /// A fork pre-sized for `cap` expected ids (the serve scheduler's
    /// histogram hint); arena runs bypass the buffer, so this only sizes
    /// the piecewise-emission tail.
    fn fork_sized(&self, cap: usize) -> Self {
        Self {
            segments: Vec::new(),
            tail: BytesMut::with_capacity(cap * 8),
            count: 0,
        }
    }

    /// Run-list concatenation: forks arrive in shard order, so the
    /// merged segment sequence equals what sequential emission would
    /// have produced — arena handles are adopted without touching their
    /// bytes.
    fn merge(&mut self, mut other: Self) {
        self.flush_tail();
        self.segments.append(&mut other.segments);
        self.tail = other.tail;
        self.count += other.count;
    }

    fn result_count(&self) -> Option<usize> {
        Some(self.count as usize)
    }
}

/// The scheduler's per-request sink: one value type covering every
/// walk-driven verb so a single mixed batch per catalog entry flows
/// through one [`query_batch_merge`](hint_core::Session::query_batch_merge)
/// call — plain range queries next to Allen refinements next to top-k
/// and histogram aggregations, each forked across shards and merged
/// back by its own [`MergeableSink`] discipline.
#[derive(Debug)]
pub enum ServeSink {
    /// A plain range query, encoding ids straight to wire form.
    Range(WireSink),
    /// An Allen-relation query: the minimal-superset probe's candidates
    /// refined against the entry's record table before encoding.
    Allen(RelationFilter<Records, WireSink>),
    /// Top-k by duration over the window.
    TopK(TopKByDuration<Records>),
    /// Per-bucket overlap counts over the window.
    Hist(BucketHistogram<Records>),
    /// A request already known to have an empty answer (an Allen
    /// relation whose probe is empty); holds the response slot so the
    /// reply still lands in FIFO position.
    Empty,
    /// A request refused by admission control: the reply is a
    /// recoverable [`Status::Overloaded`] trailer, but it must still
    /// ship *in this request's FIFO position* — replies carry no
    /// correlation ids, so shedding out of order would desynchronize
    /// every later reply on the connection. The slot costs no walk and
    /// no buffers; it only holds the position.
    Shed,
}

impl ServeSink {
    /// A plain range-query sink.
    pub fn range() -> Self {
        ServeSink::Range(WireSink::new())
    }

    /// An Allen refinement sink over the entry's record table.
    pub fn allen(rel: hint_core::AllenRelation, q: RangeQuery, records: Records) -> Self {
        ServeSink::Allen(RelationFilter::new(rel, q, records, WireSink::new()))
    }

    /// A top-k-by-duration sink over the entry's record table.
    pub fn top_k(k: usize, records: Records) -> Self {
        ServeSink::TopK(TopKByDuration::new(k, records))
    }

    /// A bucket-histogram sink anchored at the window start.
    pub fn histogram(q: RangeQuery, width: u64, records: Records) -> Self {
        ServeSink::Hist(BucketHistogram::for_query(q, width, records))
    }

    /// Consumes the sink into its reply frames: result chunks (ids for
    /// range/Allen/top-k, `u64` bucket counts for histograms) and the
    /// `Ok` trailer.
    pub fn into_reply(self, out: &mut BytesMut) {
        match self {
            ServeSink::Range(w) => w.into_frames(out),
            ServeSink::Allen(f) => f.into_inner().into_frames(out),
            ServeSink::TopK(t) => {
                let mut w = WireSink::new();
                w.emit_slice(&t.into_ids());
                w.into_frames(out);
            }
            ServeSink::Hist(h) => {
                let mut w = WireSink::new();
                w.emit_slice(&h.into_counts());
                w.into_frames(out);
            }
            ServeSink::Empty => encode_end(
                out,
                Reply {
                    status: Status::Ok,
                    count: 0,
                },
            ),
            ServeSink::Shed => encode_end(
                out,
                Reply {
                    status: Status::Overloaded,
                    count: 0,
                },
            ),
        }
    }
}

impl QuerySink for ServeSink {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        match self {
            ServeSink::Range(s) => s.emit(id),
            ServeSink::Allen(s) => s.emit(id),
            ServeSink::TopK(s) => s.emit(id),
            ServeSink::Hist(s) => s.emit(id),
            ServeSink::Empty | ServeSink::Shed => {}
        }
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        match self {
            ServeSink::Range(s) => s.emit_slice(ids),
            ServeSink::Allen(s) => s.emit_slice(ids),
            ServeSink::TopK(s) => s.emit_slice(ids),
            ServeSink::Hist(s) => s.emit_slice(ids),
            ServeSink::Empty | ServeSink::Shed => {}
        }
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        match self {
            ServeSink::Range(s) => s.is_saturated(),
            ServeSink::Allen(s) => s.is_saturated(),
            ServeSink::TopK(s) => s.is_saturated(),
            ServeSink::Hist(s) => s.is_saturated(),
            ServeSink::Empty | ServeSink::Shed => true,
        }
    }

    fn wants_arenas(&self) -> bool {
        // only the plain range path can adopt arena runs wholesale; the
        // refining/aggregating variants inspect every id anyway
        matches!(self, ServeSink::Range(_))
    }

    fn emit_arena(&mut self, run: &ArenaRun) {
        match self {
            ServeSink::Range(s) => s.emit_arena(run),
            other => other.emit_slice(run.as_slice()),
        }
    }
}

impl MergeableSink for ServeSink {
    fn fork(&self) -> Self {
        match self {
            ServeSink::Range(s) => ServeSink::Range(s.fork()),
            ServeSink::Allen(s) => ServeSink::Allen(s.fork()),
            ServeSink::TopK(s) => ServeSink::TopK(s.fork()),
            ServeSink::Hist(s) => ServeSink::Hist(s.fork()),
            ServeSink::Empty => ServeSink::Empty,
            ServeSink::Shed => ServeSink::Shed,
        }
    }

    fn fork_sized(&self, cap: usize) -> Self {
        match self {
            ServeSink::Range(s) => ServeSink::Range(s.fork_sized(cap)),
            other => other.fork(),
        }
    }

    fn merge(&mut self, other: Self) {
        // forks always come back as the parent's variant
        match (self, other) {
            (ServeSink::Range(a), ServeSink::Range(b)) => a.merge(b),
            (ServeSink::Allen(a), ServeSink::Allen(b)) => a.merge(b),
            (ServeSink::TopK(a), ServeSink::TopK(b)) => a.merge(b),
            (ServeSink::Hist(a), ServeSink::Hist(b)) => a.merge(b),
            (ServeSink::Empty, ServeSink::Empty) => {}
            (ServeSink::Shed, ServeSink::Shed) => {}
            _ => unreachable!("merge of mismatched ServeSink variants"),
        }
    }

    fn is_bounded(&self) -> bool {
        match self {
            ServeSink::Range(s) => s.is_bounded(),
            ServeSink::Allen(s) => s.is_bounded(),
            ServeSink::TopK(s) => s.is_bounded(),
            ServeSink::Hist(s) => s.is_bounded(),
            ServeSink::Empty | ServeSink::Shed => true,
        }
    }

    fn result_count(&self) -> Option<usize> {
        match self {
            ServeSink::Range(s) => s.result_count(),
            ServeSink::Allen(s) => s.result_count(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{DecodeError, FrameReader, Kind};
    use bytes::Buf;

    /// Decodes the frames `into_frames` wrote back into ids + reply.
    fn decode(out: BytesMut) -> (Vec<IntervalId>, Reply) {
        let mut rd = FrameReader::new(std::io::Cursor::new(Vec::from(out)));
        let mut ids = Vec::new();
        loop {
            let frame = match rd.read_frame() {
                Ok(Some(f)) => f,
                Ok(None) => panic!("stream ended before End trailer"),
                Err(e) => panic!("decode error: {e:?}"),
            };
            match frame.kind {
                Kind::Results => {
                    let mut p = frame.payload;
                    while p.has_remaining() {
                        ids.push(p.get_u64_le());
                    }
                }
                Kind::End => {
                    let mut p = frame.payload;
                    let status = Status::from_u8(p.get_u8());
                    let count = p.get_u64_le();
                    match rd.read_frame() {
                        Ok(None) => {}
                        other => panic!("bytes after End: {other:?}"),
                    }
                    return (ids, Reply { status, count });
                }
                k => panic!("unexpected frame kind {k:?}"),
            }
        }
    }

    #[test]
    fn empty_result_is_just_a_trailer() {
        let sink = WireSink::new();
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let (ids, reply) = decode(out);
        assert!(ids.is_empty());
        assert_eq!(
            reply,
            Reply {
                status: Status::Ok,
                count: 0
            }
        );
    }

    #[test]
    fn emissions_roundtrip_in_order() {
        let mut sink = WireSink::new();
        sink.emit(7);
        sink.emit_slice(&[1, 2, 3]);
        sink.emit(u64::MAX - 1);
        assert_eq!(sink.count(), 5);
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let (ids, reply) = decode(out);
        assert_eq!(ids, vec![7, 1, 2, 3, u64::MAX - 1]);
        assert_eq!(reply.count, 5);
    }

    #[test]
    fn long_results_stream_in_bounded_chunks() {
        let n = RESULTS_PER_FRAME * 2 + 17;
        let mut sink = WireSink::new();
        let all: Vec<IntervalId> = (0..n as u64).collect();
        sink.emit_slice(&all);
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        // count the Results frames: ceil(n / RESULTS_PER_FRAME)
        let mut rd = FrameReader::new(std::io::Cursor::new(Vec::from(out.clone())));
        let mut frames = 0;
        while let Ok(Some(f)) = rd.read_frame() {
            if f.kind == Kind::Results {
                assert!(f.payload.len() <= RESULTS_PER_FRAME * 8);
                frames += 1;
            }
        }
        assert_eq!(frames, 3);
        let (ids, reply) = decode(out);
        assert_eq!(ids, all);
        assert_eq!(reply.count, n as u64);
    }

    #[test]
    fn merge_concatenates_in_call_order() {
        let mut sink = WireSink::new();
        sink.emit_slice(&[1, 2]);
        let mut f1 = sink.fork();
        let mut f2 = sink.fork();
        f1.emit_slice(&[3, 4]);
        f2.emit(5);
        sink.merge(f1);
        sink.merge(f2);
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let (ids, _) = decode(out);
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn merge_into_empty_adopts_the_fork() {
        let mut sink = WireSink::new();
        let mut f = sink.fork();
        f.emit_slice(&[9, 8]);
        sink.merge(f);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn arena_runs_encode_straight_from_the_handle() {
        let hm = hint_core::ARENA_HANDLE_MIN as u64;
        let arena = std::sync::Arc::new((0..4 * hm).collect::<Vec<_>>());
        let mut sink = WireSink::new();
        sink.emit(7);
        // long run: carried as a handle, encoded straight from the arena
        sink.emit_arena(&ArenaRun::new(
            std::sync::Arc::clone(&arena),
            10,
            10 + hm as usize,
        ));
        sink.emit_slice(&[1, 2]);
        // short run: inlined into the byte tail, no segment cut
        sink.emit_arena(&ArenaRun::new(std::sync::Arc::clone(&arena), 30, 33));
        sink.emit_arena(&ArenaRun::new(arena, 50, 50)); // empty: dropped
        assert_eq!(sink.count(), 6 + hm);
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let (ids, reply) = decode(out);
        let want: Vec<IntervalId> = std::iter::once(7)
            .chain(10..10 + hm)
            .chain([1, 2])
            .chain(30..33)
            .collect();
        assert_eq!(ids, want);
        assert_eq!(reply.count, 6 + hm);
    }

    #[test]
    fn arena_heavy_results_still_frame_at_the_bound() {
        let n = RESULTS_PER_FRAME * 2 + 17;
        let arena = std::sync::Arc::new((0..n as u64).collect::<Vec<_>>());
        let mut sink = WireSink::new();
        sink.emit(u64::MAX); // unaligned byte prefix before the arena run
        sink.emit_arena(&ArenaRun::new(arena, 0, n));
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let mut rd = FrameReader::new(std::io::Cursor::new(Vec::from(out.clone())));
        let mut frames = 0;
        while let Ok(Some(f)) = rd.read_frame() {
            if f.kind == Kind::Results {
                assert!(f.payload.len() <= RESULTS_PER_FRAME * 8);
                assert_eq!(f.payload.len() % 8, 0, "ids must not split across frames");
                frames += 1;
            }
        }
        assert_eq!(frames, 3);
        let (ids, reply) = decode(out);
        let want: Vec<IntervalId> = std::iter::once(u64::MAX).chain(0..n as u64).collect();
        assert_eq!(ids, want);
        assert_eq!(reply.count, n as u64 + 1);
    }

    #[test]
    fn merged_arena_forks_preserve_emission_order() {
        let arena = std::sync::Arc::new(vec![100u64, 101, 102, 103]);
        let mut sink = WireSink::new();
        sink.emit_slice(&[1, 2]);
        let mut f1 = sink.fork();
        let mut f2 = sink.fork_sized(8);
        f1.emit_arena(&ArenaRun::new(std::sync::Arc::clone(&arena), 0, 2));
        f1.emit(3);
        f2.emit(4);
        f2.emit_arena(&ArenaRun::new(arena, 2, 4));
        sink.merge(f1);
        sink.merge(f2);
        assert_eq!(sink.count(), 8);
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let (ids, _) = decode(out);
        assert_eq!(ids, vec![1, 2, 100, 101, 3, 4, 102, 103]);
    }

    #[test]
    fn decode_helper_rejects_garbage() {
        // guard the test helper itself: a truncated buffer must not
        // decode quietly
        let mut out = BytesMut::new();
        let mut sink = WireSink::new();
        sink.emit(1);
        sink.into_frames(&mut out);
        let mut bytes = Vec::from(out);
        bytes.truncate(bytes.len() - 1);
        let mut rd = FrameReader::new(std::io::Cursor::new(bytes));
        let _ = rd.read_frame().unwrap(); // Results frame is intact
        assert!(matches!(rd.read_frame(), Err(DecodeError::Io(_))));
    }
}
