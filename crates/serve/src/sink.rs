//! The demultiplexing result encoder: one [`WireSink`] per in-flight
//! query turns the executor's merged batch walk into per-connection
//! response bytes, with no intermediate `Vec<IntervalId>` per query.
//!
//! The scheduler hands the batch to
//! [`ShardedIndex::query_batch_merge`](hint_core::ShardedIndex::query_batch_merge)
//! with one `WireSink` per query; every id the index reports is encoded
//! straight into the sink's little-endian payload buffer (a bulk
//! `emit_slice` run becomes one `memcpy`-shaped loop), and the
//! [`MergeableSink`] contract makes the parallel path free: a worker's
//! fork is another byte buffer, and merging is buffer concatenation in
//! shard order — bit-identical to the sequential emission order. When
//! the batch returns, [`WireSink::into_frames`] chops the payload into
//! `Results` frames and the `End` trailer addressed to the owning
//! connection: the demux step that lets one merged walk feed many
//! connections.

use crate::proto::{encode_end, encode_results, Reply, Status, RESULTS_PER_FRAME};
use bytes::{BufMut, BytesMut};
use hint_core::{IntervalId, MergeableSink, QuerySink};

/// Encodes one query's results incrementally into wire form.
#[derive(Debug, Default)]
pub struct WireSink {
    /// Result ids in little-endian wire encoding (8 bytes each).
    payload: BytesMut,
}

impl WireSink {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ids encoded so far.
    pub fn count(&self) -> u64 {
        (self.payload.len() / 8) as u64
    }

    /// Consumes the sink, appending its response — result chunks of at
    /// most [`RESULTS_PER_FRAME`] ids, then the `Ok` end trailer — to a
    /// connection's outgoing byte buffer.
    pub fn into_frames(self, out: &mut BytesMut) {
        let bytes = self.payload.as_slice();
        for chunk in bytes.chunks(RESULTS_PER_FRAME * 8) {
            encode_results(out, chunk);
        }
        encode_end(
            out,
            Reply {
                status: Status::Ok,
                count: (bytes.len() / 8) as u64,
            },
        );
    }
}

impl QuerySink for WireSink {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        self.payload.put_u64_le(id);
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        for &id in ids {
            self.payload.put_u64_le(id);
        }
    }
}

impl MergeableSink for WireSink {
    fn fork(&self) -> Self {
        WireSink::new()
    }

    /// Byte-buffer concatenation: forks arrive in shard order, so the
    /// merged payload equals what sequential emission would have
    /// encoded.
    fn merge(&mut self, other: Self) {
        if self.payload.is_empty() {
            self.payload = other.payload;
        } else {
            self.payload.unsplit(other.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{DecodeError, FrameReader, Kind};
    use bytes::Buf;

    /// Decodes the frames `into_frames` wrote back into ids + reply.
    fn decode(out: BytesMut) -> (Vec<IntervalId>, Reply) {
        let mut rd = FrameReader::new(std::io::Cursor::new(Vec::from(out)));
        let mut ids = Vec::new();
        loop {
            let frame = match rd.read_frame() {
                Ok(Some(f)) => f,
                Ok(None) => panic!("stream ended before End trailer"),
                Err(e) => panic!("decode error: {e:?}"),
            };
            match frame.kind {
                Kind::Results => {
                    let mut p = frame.payload;
                    while p.has_remaining() {
                        ids.push(p.get_u64_le());
                    }
                }
                Kind::End => {
                    let mut p = frame.payload;
                    let status = Status::from_u8(p.get_u8());
                    let count = p.get_u64_le();
                    match rd.read_frame() {
                        Ok(None) => {}
                        other => panic!("bytes after End: {other:?}"),
                    }
                    return (ids, Reply { status, count });
                }
                k => panic!("unexpected frame kind {k:?}"),
            }
        }
    }

    #[test]
    fn empty_result_is_just_a_trailer() {
        let sink = WireSink::new();
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let (ids, reply) = decode(out);
        assert!(ids.is_empty());
        assert_eq!(
            reply,
            Reply {
                status: Status::Ok,
                count: 0
            }
        );
    }

    #[test]
    fn emissions_roundtrip_in_order() {
        let mut sink = WireSink::new();
        sink.emit(7);
        sink.emit_slice(&[1, 2, 3]);
        sink.emit(u64::MAX - 1);
        assert_eq!(sink.count(), 5);
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let (ids, reply) = decode(out);
        assert_eq!(ids, vec![7, 1, 2, 3, u64::MAX - 1]);
        assert_eq!(reply.count, 5);
    }

    #[test]
    fn long_results_stream_in_bounded_chunks() {
        let n = RESULTS_PER_FRAME * 2 + 17;
        let mut sink = WireSink::new();
        let all: Vec<IntervalId> = (0..n as u64).collect();
        sink.emit_slice(&all);
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        // count the Results frames: ceil(n / RESULTS_PER_FRAME)
        let mut rd = FrameReader::new(std::io::Cursor::new(Vec::from(out.clone())));
        let mut frames = 0;
        while let Ok(Some(f)) = rd.read_frame() {
            if f.kind == Kind::Results {
                assert!(f.payload.len() <= RESULTS_PER_FRAME * 8);
                frames += 1;
            }
        }
        assert_eq!(frames, 3);
        let (ids, reply) = decode(out);
        assert_eq!(ids, all);
        assert_eq!(reply.count, n as u64);
    }

    #[test]
    fn merge_concatenates_in_call_order() {
        let mut sink = WireSink::new();
        sink.emit_slice(&[1, 2]);
        let mut f1 = sink.fork();
        let mut f2 = sink.fork();
        f1.emit_slice(&[3, 4]);
        f2.emit(5);
        sink.merge(f1);
        sink.merge(f2);
        let mut out = BytesMut::new();
        sink.into_frames(&mut out);
        let (ids, _) = decode(out);
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn merge_into_empty_adopts_the_fork() {
        let mut sink = WireSink::new();
        let mut f = sink.fork();
        f.emit_slice(&[9, 8]);
        sink.merge(f);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn decode_helper_rejects_garbage() {
        // guard the test helper itself: a truncated buffer must not
        // decode quietly
        let mut out = BytesMut::new();
        let mut sink = WireSink::new();
        sink.emit(1);
        sink.into_frames(&mut out);
        let mut bytes = Vec::from(out);
        bytes.truncate(bytes.len() - 1);
        let mut rd = FrameReader::new(std::io::Cursor::new(bytes));
        let _ = rd.read_frame().unwrap(); // Results frame is intact
        assert!(matches!(rd.read_frame(), Err(DecodeError::Io(_))));
    }
}
