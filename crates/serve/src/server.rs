//! The batched serving front-end: per-connection reader/writer threads
//! around a single scheduler thread that owns the engine
//! ([`hint_core::Session`]) and turns independent connections into
//! cross-connection query batches.
//!
//! ## Threading model
//!
//! No async runtime: one **scheduler** thread owns the `Session`
//! outright (no locks on the query or write path), and every attached
//! connection contributes a **reader** thread (decode frames → ops
//! channel) and a **writer** thread (response-bytes channel → transport).
//! All cross-thread traffic flows over the vendored `crossbeam`
//! channels. The session keeps each shard on its own persistent,
//! optionally core-pinned worker thread (`hint_core::ShardPool`,
//! `HINT_SHARD_PIN`), so `query_batch_merge` dispatches sub-batches
//! over channels with zero per-batch thread spawns; serving parallelism
//! and index parallelism compose without sharing state. Between
//! batches, when the request stream goes idle, the scheduler may reseal
//! dirty shards at a re-tuned per-shard `m` chosen from the observed
//! query-extent mix (`HINT_SERVE_RETUNE=idle`; see `docs/tuning.md`).
//!
//! ## Batching policy
//!
//! Queries accumulate in arrival order until either the batch window
//! fills or the flush deadline passes; the batch then executes as one
//! `query_batch_merge` call — the level walks are shared across *all*
//! connections' queries — and each query's [`WireSink`] demultiplexes
//! into its connection's response stream. By default the window and
//! deadline are chosen live by a bounded AIMD controller
//! ([`crate::WindowController`]) from observed arrival rate and batch
//! occupancy; `HINT_SERVE_WINDOW=fixed` (or [`ServeConfig::fixed`])
//! restores the static `max_batch`/`max_delay` policy verbatim. Writes
//! (`Insert`/`Delete`/`Seal`) act as barriers: they flush the pending
//! batch, apply, and ack, which keeps the global order serializable and
//! every connection's replies in its request order. Because requests
//! are answered strictly FIFO per connection, batched results are
//! bit-identical to what a solo `query_sink` at the same point in the
//! write sequence would produce — with lanes on, bounded verbs may
//! *reply* ahead of other connections' enumerations, but never ahead of
//! anything earlier on their own connection, so the invariant holds.
//!
//! ## Overload behavior
//!
//! Admission control bounds how much work may be *outstanding* — sent
//! by a client but not yet answered. Each reader thread gates
//! walk-driven requests as it decodes them, against a per-connection
//! and a global budget ([`ServeConfig::conn_pending`],
//! [`ServeConfig::max_pending`]); the scheduler returns the budget when
//! the reply goes out. Gating at the reader is what makes the bound
//! real under open-loop load: the backlog of an unbounded producer
//! accumulates in the ops channel, *before* the scheduler's pending
//! queue, and a scheduler-side count would never see it. Past a budget
//! the request is shed with a recoverable `Overloaded` trailer in its
//! FIFO position — the connection stays up and the client may simply
//! retry. Writes and catalog verbs are synchronous barriers and need no
//! budget: they backpressure naturally.

use crate::controller::{ControllerConfig, WindowController};
use crate::proto::{
    encode_end, encode_index_infos, encode_results, encode_snapshot_chunk, Command, DecodeError,
    FrameReader, IndexInfo, Reply, Request, Status,
};
use crate::sink::{Records, ServeSink, WireSink};
use crate::transport::Transport;
use bytes::{BufMut, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hint_core::env::{Switch, WindowMode};
use hint_core::{Domain, HintMSubs, Interval, RangeQuery, Session, ShardedIndex, SubsConfig};
use parking_lot::RwLock;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Payload bytes per streamed snapshot chunk (64 KiB: large enough to
/// amortize frame headers, small enough to keep the writer thread's
/// send granularity bounded).
const SNAP_CHUNK: usize = 64 * 1024;

/// (outer, inner) id pairs per streamed join `Results` frame (8 KiB).
const PAIRS_PER_FRAME: usize = 512;

/// Hard ceiling on histogram buckets per request, so a wire-controlled
/// width cannot make the server allocate unboundedly.
const MAX_HIST_BUCKETS: u128 = 1 << 16;

/// Shard fan-out for indexes created over the wire.
const CREATED_SHARDS: usize = 4;

/// Default for the `HINT_MAX_INDEXES` knob: catalog capacity, counting
/// live entries (index 0 included).
const DEFAULT_MAX_INDEXES: usize = 16;

/// Engine-side support for the wire `Snapshot`/`Restore` verbs.
///
/// The scheduler is generic over the engine it serves, but durable
/// snapshots are a property of the sealed-arena index the snapshot
/// format serializes — so the capability is a separate trait, and
/// [`Server::start`] requires it. Implemented for
/// [`Session<HintMSubs>`]; other engines can implement it (or answer
/// every call with an error, which the scheduler surfaces as
/// [`Status::SnapshotFailed`]).
pub trait SnapshotVerbs {
    /// Serializes the engine's index to snapshot bytes (the streaming
    /// verb). Must act as a write barrier: every applied write is in
    /// the bytes.
    fn snapshot_bytes(&mut self) -> io::Result<Vec<u8>>;
    /// Durably saves the engine's index to a server-side path,
    /// returning the snapshot size in bytes.
    fn snapshot_save(&mut self, path: &Path) -> io::Result<u64>;
    /// Replaces the engine's index from a server-side snapshot file,
    /// returning the restored live count. On error the served index
    /// must be unchanged.
    fn restore_from(&mut self, path: &Path) -> Result<u64, String>;
}

impl SnapshotVerbs for Session<HintMSubs> {
    fn snapshot_bytes(&mut self) -> io::Result<Vec<u8>> {
        Session::snapshot_bytes(self)
    }

    fn snapshot_save(&mut self, path: &Path) -> io::Result<u64> {
        self.snapshot(path)
    }

    fn restore_from(&mut self, path: &Path) -> Result<u64, String> {
        let fresh = Session::restore(path).map_err(|e| e.to_string())?;
        *self = fresh;
        Ok(self.len() as u64)
    }
}

/// Scheduler tuning: how long and how wide query batches may grow, how
/// the window is sized ([`WindowMode`]), and how much work a connection
/// (or the whole server) may queue before the scheduler sheds load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush the pending batch at this many queries. In adaptive mode
    /// this is the controller's *upper bound* (`max_window`).
    pub max_batch: usize,
    /// Flush the pending batch this long after it opened, even if not
    /// full — the latency bound a queued query pays for batching. In
    /// adaptive mode this caps the controller's derived delay.
    pub max_delay: Duration,
    /// Static window vs AIMD-controlled (see [`crate::WindowController`]).
    pub mode: WindowMode,
    /// Smallest window the adaptive controller may choose (>= 1).
    /// Ignored in fixed mode.
    pub min_window: usize,
    /// Most admitted walk-driven requests one connection may have
    /// *outstanding* (decoded by its reader, reply not yet sent) before
    /// further requests on it are shed with a recoverable
    /// [`Status::Overloaded`] trailer.
    pub conn_pending: usize,
    /// Most admitted walk-driven requests outstanding across all
    /// connections before shedding — the global backstop against a
    /// many-connection flood.
    pub max_pending: usize,
    /// QoS lanes: bounded requests (top-k, histograms, empty-stream
    /// Allen probes, and anything sent with the wire priority flag)
    /// flush ahead of enumeration traffic, with round-robin fairness
    /// across connections inside each lane. Per-connection FIFO is
    /// preserved either way.
    pub lanes: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            mode: WindowMode::Adaptive,
            min_window: 1,
            conn_pending: 256,
            max_pending: 4096,
            lanes: true,
        }
    }
}

impl ServeConfig {
    /// The pre-controller configuration: a static window of exactly
    /// `max_batch`/`max_delay`, no lanes, effectively-unbounded
    /// admission. Scheduling behavior is byte-identical to servers
    /// built before the adaptive controller existed.
    pub fn fixed(max_batch: usize, max_delay: Duration) -> Self {
        Self {
            max_batch,
            max_delay,
            mode: WindowMode::Fixed,
            lanes: false,
            ..Self::default()
        }
    }

    /// Reads the `HINT_SERVE_*` scheduler knobs over the defaults:
    /// `HINT_SERVE_WINDOW` (`fixed`/`adaptive`), `HINT_SERVE_MAX_BATCH`
    /// and its alias `HINT_SERVE_WINDOW_MAX` (queries, >= 1),
    /// `HINT_SERVE_WINDOW_MIN` (>= 1), `HINT_SERVE_MAX_DELAY_US`
    /// (microseconds), `HINT_SERVE_CONN_PENDING` / `HINT_SERVE_MAX_PENDING`
    /// (admission budgets, >= 1) and `HINT_SERVE_LANES` (`on`/`off`).
    /// Rejected values warn once on stderr and fall back (see
    /// [`hint_core::env`]).
    pub fn from_env() -> Self {
        let d = Self::default();
        let max_batch =
            hint_core::env::var_or("HINT_SERVE_MAX_BATCH", d.max_batch, "must be >= 1", |&n| {
                n >= 1
            });
        Self {
            max_batch: hint_core::env::var_or(
                "HINT_SERVE_WINDOW_MAX",
                max_batch,
                "must be >= 1",
                |&n| n >= 1,
            ),
            max_delay: Duration::from_micros(hint_core::env::var_or(
                "HINT_SERVE_MAX_DELAY_US",
                d.max_delay.as_micros() as u64,
                "microseconds",
                |_| true,
            )),
            mode: hint_core::env::var_or("HINT_SERVE_WINDOW", d.mode, "fixed or adaptive", |_| {
                true
            }),
            min_window: hint_core::env::var_or(
                "HINT_SERVE_WINDOW_MIN",
                d.min_window,
                "must be >= 1",
                |&n| n >= 1,
            ),
            conn_pending: hint_core::env::var_or(
                "HINT_SERVE_CONN_PENDING",
                d.conn_pending,
                "must be >= 1",
                |&n| n >= 1,
            ),
            max_pending: hint_core::env::var_or(
                "HINT_SERVE_MAX_PENDING",
                d.max_pending,
                "must be >= 1",
                |&n| n >= 1,
            ),
            lanes: hint_core::env::var_or(
                "HINT_SERVE_LANES",
                if d.lanes { Switch::On } else { Switch::Off },
                "on or off",
                |_| true,
            )
            .is_on(),
        }
    }
}

/// Scheduler counters: how well the batching policy is doing. Snapshot
/// via [`Server::stats`]; the bench harness reports the observed mean
/// batch size next to each throughput row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches executed (flushes with at least one query).
    pub batches: u64,
    /// Queries served across all batches.
    pub queries: u64,
    /// Largest single batch executed.
    pub largest_batch: usize,
    /// Write requests (insert/delete/seal) applied.
    pub writes: u64,
    /// Shards rebuilt at a re-tuned `m` (see `HINT_SERVE_RETUNE` and
    /// [`hint_core::RetunePolicy`]).
    pub retunes: u64,
    /// Reseals the scheduler triggered on its own between batches
    /// (`HINT_SERVE_RETUNE=idle`).
    pub idle_reseals: u64,
    /// Accept-loop errors survived (transient failures like FD
    /// exhaustion, retried with bounded backoff instead of killing the
    /// acceptor thread).
    pub accept_errors: u64,
    /// Configured logical read replicas per shard in the served session
    /// (the `HINT_READ_REPLICAS` knob; 1 = unreplicated).
    pub read_replicas: u64,
    /// Shard sub-batches answered from published epochs (replica reader
    /// threads plus scheduler-inline epoch reads) rather than the
    /// owning worker's queue. Zero when unreplicated.
    pub replica_reads: u64,
    /// Requests refused by admission control: answered in FIFO position
    /// with a recoverable [`Status::Overloaded`] trailer, never
    /// executed.
    pub shed: u64,
    /// Requests that rode the high-priority lane (bounded verbs and
    /// wire-flagged priority requests, when lanes are on).
    pub lane_high: u64,
    /// The batch window currently in force (the configured `max_batch`
    /// in fixed mode, the controller's live choice in adaptive mode).
    pub cur_window: usize,
}

impl BatchStats {
    /// Mean queries per executed batch (0 when idle).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }
}

/// Connection identifier, assigned at attach time.
type ConnId = u64;

/// What reader threads (and the server handle) feed the scheduler.
enum Op {
    /// A connection came up; its response bytes go to this channel and
    /// its outstanding-request counter is the shared handle the
    /// scheduler decrements as replies go out.
    Conn(ConnId, Sender<Vec<u8>>, Arc<AtomicUsize>),
    /// A well-formed request with its catalog addressing. The flag is
    /// the reader-side admission verdict: `true` means the request was
    /// over budget at the gate and must be shed (FIFO-positioned
    /// `Overloaded` trailer, no walk).
    Request(ConnId, Command, bool),
    /// A malformed-but-framed request: answer with an error trailer,
    /// keep the connection.
    Invalid(ConnId, Status),
    /// The connection's stream is beyond recovery: answer with an error
    /// trailer, then close it.
    Fatal(ConnId, Status),
    /// The connection closed (EOF).
    Disconnect(ConnId),
    /// Stop serving (flush pending work first).
    Stop,
}

/// The admission gate every reader thread checks before forwarding a
/// walk-driven request. The budgets bound *outstanding* requests — the
/// counters rise at decode and fall when the scheduler sends the reply
/// — so the bound covers the ops-channel backlog an open-loop flood
/// builds up, not just the scheduler's own pending queue.
#[derive(Clone)]
struct AdmissionGate {
    /// Admitted walk-driven requests outstanding across all
    /// connections, bounded by `max_pending`.
    inflight: Arc<AtomicUsize>,
    conn_pending: usize,
    max_pending: usize,
}

/// True for the verbs the admission gate meters: the batched reads,
/// whose cost the scheduler cannot bound otherwise. Writes and catalog
/// verbs are synchronous barriers and backpressure on their own.
fn gated_verb(req: &Request) -> bool {
    matches!(
        req,
        Request::Query(_)
            | Request::Allen { .. }
            | Request::TopK { .. }
            | Request::Histogram { .. }
    )
}

/// The gate check, run on the reader thread per decoded request.
/// Returns `true` when the request must be shed. Admitted requests hold
/// one slot on both counters until the scheduler replies; shed requests
/// hold nothing (the increment is given straight back), so a flood past
/// the budget cannot starve other connections' admission.
fn shed_at_gate(gate: &AdmissionGate, conn_inflight: &AtomicUsize, cmd: &Command) -> bool {
    if !gated_verb(&cmd.verb) {
        return false;
    }
    let c = conn_inflight.fetch_add(1, Ordering::Relaxed);
    let g = gate.inflight.fetch_add(1, Ordering::Relaxed);
    if c < gate.conn_pending && g < gate.max_pending {
        return false;
    }
    conn_inflight.fetch_sub(1, Ordering::Relaxed);
    gate.inflight.fetch_sub(1, Ordering::Relaxed);
    true
}

/// How `spawn_connection` starts its threads — injectable so tests can
/// induce spawn failure and assert the connection is rejected without
/// taking the acceptor (or the server) down.
type Spawner = fn(String, Box<dyn FnOnce() + Send + 'static>) -> io::Result<()>;

/// The production spawner: a named OS thread per closure.
fn os_spawn(name: String, f: Box<dyn FnOnce() + Send + 'static>) -> io::Result<()> {
    std::thread::Builder::new().name(name).spawn(f).map(|_| ())
}

/// Registers `transport` with the scheduler as connection `id` and
/// spawns its reader and writer threads. Both threads terminate on
/// their own: the reader at transport EOF/error or scheduler exit, the
/// writer when the scheduler drops the connection's response channel or
/// the peer stops reading.
///
/// Connection bring-up is fallible (TCP `try_clone`, thread spawn under
/// resource exhaustion); any failure rejects *this* connection — with a
/// fatal [`Status::Overloaded`] trailer when the write half is still
/// on hand — and never panics the caller, which may be the acceptor
/// serving every other connection.
fn spawn_connection<T: Transport>(
    ops: &Sender<Op>,
    id: ConnId,
    transport: T,
    gate: &AdmissionGate,
) {
    spawn_connection_with(ops, id, transport, gate.clone(), os_spawn)
}

fn spawn_connection_with<T: Transport>(
    ops: &Sender<Op>,
    id: ConnId,
    transport: T,
    gate: AdmissionGate,
    spawn: Spawner,
) {
    let (reader, mut writer) = match transport.split() {
        Ok(halves) => halves,
        // no write half to carry a rejection: drop; the peer sees EOF
        Err(_) => return,
    };
    let (resp_tx, resp_rx) = unbounded::<Vec<u8>>();
    let inflight = Arc::new(AtomicUsize::new(0));
    // register before the reader can produce the first request so the
    // scheduler always knows the connection
    let _ = ops.send(Op::Conn(id, resp_tx, Arc::clone(&inflight)));
    let reader_ops = ops.clone();
    let read = spawn(
        format!("serve-read-{id}"),
        Box::new(move || {
            let mut frames = FrameReader::new(reader);
            loop {
                let op = match frames.read_frame() {
                    Ok(Some(frame)) => match frame.to_command() {
                        Ok(cmd) => {
                            let shed = shed_at_gate(&gate, &inflight, &cmd);
                            Op::Request(id, cmd, shed)
                        }
                        Err(status) => Op::Invalid(id, status),
                    },
                    Ok(None) => {
                        let _ = reader_ops.send(Op::Disconnect(id));
                        return;
                    }
                    Err(DecodeError::Frame(status)) => Op::Invalid(id, status),
                    Err(DecodeError::Desync(status)) => {
                        let _ = reader_ops.send(Op::Fatal(id, status));
                        return;
                    }
                    Err(DecodeError::Io(_)) => {
                        let _ = reader_ops.send(Op::Fatal(id, Status::Truncated));
                        return;
                    }
                };
                if reader_ops.send(op).is_err() {
                    return; // scheduler gone: server shut down
                }
            }
        }),
    );
    if read.is_err() {
        // reject just this connection: unregister, tell the peer
        // inline (the writer half is still ours), and keep serving
        let _ = ops.send(Op::Disconnect(id));
        let mut out = BytesMut::new();
        encode_end(
            &mut out,
            Reply {
                status: Status::Overloaded,
                count: 0,
            },
        );
        let _ = writer
            .write_all(out.as_slice())
            .and_then(|_| writer.flush());
        return;
    }
    let write = spawn(
        format!("serve-write-{id}"),
        Box::new(move || {
            for chunk in resp_rx.iter() {
                if writer
                    .write_all(&chunk)
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
        }),
    );
    if write.is_err() {
        // the write half went down with the failed spawn; unregister
        // and let the peer see EOF
        let _ = ops.send(Op::Disconnect(id));
    }
}

/// A source of inbound connections for the server's generic accept
/// loop — [`TcpListener`] in production, scriptable shims in tests (the
/// loop's retry/backoff behavior is testable without sockets).
pub trait AcceptSource: Send + 'static {
    /// The transport produced per accepted connection.
    type Conn: Transport;
    /// Blocks until the next connection attempt resolves.
    fn accept(&self) -> io::Result<Self::Conn>;
}

impl AcceptSource for TcpListener {
    type Conn = TcpStream;
    fn accept(&self) -> io::Result<TcpStream> {
        TcpListener::accept(self).map(|(stream, _)| stream)
    }
}

/// First delay after a failed `accept`; doubles per consecutive failure.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
/// Ceiling on the accept retry delay.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// True for accept errors that retrying cannot fix (the listener itself
/// is unusable). Everything else — notably FD exhaustion (`EMFILE`
/// surfaces as an uncategorized kind) and aborted handshakes
/// (`ECONNABORTED`) — is transient: the kernel keeps the listen queue,
/// so backing off and re-accepting recovers.
fn fatal_accept_error(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::InvalidInput
            | io::ErrorKind::NotFound
            | io::ErrorKind::PermissionDenied
            | io::ErrorKind::Unsupported
    )
}

/// The acceptor body: admit connections until the stop flag rises or a
/// fatal accept error. Transient errors are counted
/// ([`BatchStats::accept_errors`]) and retried under exponential
/// backoff, sleeping in short slices so shutdown stays prompt.
fn accept_loop<A: AcceptSource>(
    source: A,
    ops: Sender<Op>,
    next_conn: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    stats: Arc<RwLock<BatchStats>>,
    gate: AdmissionGate,
) {
    let mut backoff = ACCEPT_BACKOFF_START;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match source.accept() {
            Ok(conn) => {
                if stop.load(Ordering::Acquire) {
                    return; // the shutdown wake-up connection
                }
                backoff = ACCEPT_BACKOFF_START;
                let id = next_conn.fetch_add(1, Ordering::Relaxed);
                spawn_connection(&ops, id, conn, &gate);
            }
            Err(e) if fatal_accept_error(e.kind()) => return,
            Err(_) => {
                stats.write().accept_errors += 1;
                let mut left = backoff;
                while !left.is_zero() {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let slice = left.min(Duration::from_millis(5));
                    std::thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
            }
        }
    }
}

/// A running server over one [`Session`]. Connections attach via
/// [`attach`](Server::attach) (any [`Transport`]) or a TCP listener via
/// [`listen_tcp`](Server::listen_tcp); [`shutdown`](Server::shutdown)
/// flushes and joins the scheduler.
pub struct Server {
    ops: Sender<Op>,
    scheduler: Option<JoinHandle<()>>,
    next_conn: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    /// Acceptor threads; the address is `Some` for TCP listeners so
    /// shutdown can wake a blocking `accept` with a no-op connection.
    acceptors: Vec<(Option<std::net::SocketAddr>, JoinHandle<()>)>,
    stats: Arc<RwLock<BatchStats>>,
    /// The admission gate shared by every connection's reader thread.
    gate: AdmissionGate,
}

impl Server {
    /// Starts the scheduler thread over `session`, which becomes
    /// catalog index 0 ("default") with the given batching policy.
    /// Errors (thread spawn under resource exhaustion, or a session
    /// whose live set cannot be enumerated for the entry's record
    /// table) surface to the caller instead of panicking bring-up.
    pub fn start(mut session: Session<HintMSubs>, config: ServeConfig) -> io::Result<Server> {
        // the entry's id → interval table: what Allen refinement and
        // the aggregation sinks resolve endpoints through, maintained
        // incrementally by every write from here on
        let records: Records = Arc::new(
            session
                .live_intervals()?
                .into_iter()
                .map(|s| (s.id, s))
                .collect(),
        );
        let (ops_tx, ops_rx) = unbounded();
        let stats = Arc::new(RwLock::new(BatchStats::default()));
        let scheduler_stats = Arc::clone(&stats);
        let gate = AdmissionGate {
            inflight: Arc::new(AtomicUsize::new(0)),
            conn_pending: config.conn_pending.max(1),
            max_pending: config.max_pending.max(1),
        };
        let scheduler_gate = gate.clone();
        let scheduler = std::thread::Builder::new()
            .name("serve-scheduler".into())
            .spawn(move || {
                Scheduler::new(session, records, config, scheduler_stats, scheduler_gate)
                    .run(ops_rx)
            })?;
        Ok(Server {
            ops: ops_tx,
            scheduler: Some(scheduler),
            next_conn: Arc::new(AtomicU64::new(1)),
            stop: Arc::new(AtomicBool::new(false)),
            acceptors: Vec::new(),
            stats,
            gate,
        })
    }

    /// A snapshot of the scheduler's batching counters.
    pub fn stats(&self) -> BatchStats {
        *self.stats.read()
    }

    /// Attaches one connection: spawns its reader and writer threads.
    /// The connection lives until its transport reaches EOF / error or
    /// the server shuts down; the threads clean themselves up.
    pub fn attach<T: Transport>(&self, transport: T) {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        spawn_connection(&self.ops, id, transport, &self.gate);
    }

    /// Accepts TCP connections in a background thread until shutdown.
    /// Returns the bound address (useful with an OS-assigned port 0).
    /// Transient accept failures are retried with bounded backoff (see
    /// [`BatchStats::accept_errors`]); only a fatal error or shutdown
    /// ends the acceptor.
    pub fn listen_tcp(&mut self, listener: TcpListener) -> std::io::Result<std::net::SocketAddr> {
        let addr = listener.local_addr()?;
        self.listen(Some(addr), listener)?;
        Ok(addr)
    }

    /// Accepts connections from an arbitrary [`AcceptSource`] in a
    /// background thread — the seam the accept-loop regression tests
    /// drive with scripted sources. Non-TCP sources cannot be woken by
    /// shutdown; their `accept` must eventually return (the scripted
    /// sources end with a fatal error).
    #[doc(hidden)]
    pub fn listen_source<A: AcceptSource>(&mut self, source: A) -> std::io::Result<()> {
        self.listen(None, source)
    }

    fn listen<A: AcceptSource>(
        &mut self,
        addr: Option<std::net::SocketAddr>,
        source: A,
    ) -> std::io::Result<()> {
        let ops = self.ops.clone();
        let next_conn = Arc::clone(&self.next_conn);
        let stop = Arc::clone(&self.stop);
        let stats = Arc::clone(&self.stats);
        let gate = self.gate.clone();
        let handle = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(source, ops, next_conn, stop, stats, gate))?;
        self.acceptors.push((addr, handle));
        Ok(())
    }

    /// Flushes pending work, stops the scheduler and joins every
    /// server-owned thread that can be joined promptly (acceptors are
    /// woken with a no-op connection). Connection reader/writer threads
    /// exit on their own as their transports close.
    pub fn shutdown(mut self) {
        self.stop_acceptors();
        let _ = self.ops.send(Op::Stop);
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }

    /// Raises the stop flag, wakes each blocking `accept` with a no-op
    /// connection, and joins the acceptor threads — releasing their
    /// listener sockets. Prompt: a woken acceptor returns immediately.
    fn stop_acceptors(&mut self) {
        self.stop.store(true, Ordering::Release);
        for (addr, handle) in self.acceptors.drain(..) {
            if let Some(addr) = addr {
                let _ = TcpStream::connect(addr);
            }
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // same acceptor teardown as shutdown(), so a dropped server
        // never leaves a thread parked in accept() holding its port;
        // the scheduler is only signalled (joining it could block on
        // in-flight work, which drop must not)
        self.stop_acceptors();
        let _ = self.ops.send(Op::Stop);
    }
}

/// One named index in the catalog: its engine plus the record table
/// the relation/aggregation sinks resolve endpoints through.
struct CatalogEntry {
    name: String,
    session: Session<HintMSubs>,
    records: Records,
}

/// The scheduler's catalog of named indexes. Slot position is the wire
/// index id; dropped slots stay `None` forever so ids are never reused.
struct Catalog {
    entries: Vec<Option<CatalogEntry>>,
    by_name: HashMap<String, u32>,
    /// Live-entry capacity (the `HINT_MAX_INDEXES` knob).
    max: usize,
}

impl Catalog {
    fn new(default: CatalogEntry, max: usize) -> Self {
        let by_name = HashMap::from([(default.name.clone(), 0u32)]);
        Self {
            entries: vec![Some(default)],
            by_name,
            max,
        }
    }

    fn get(&self, id: u32) -> Option<&CatalogEntry> {
        self.entries.get(id as usize)?.as_ref()
    }

    fn get_mut(&mut self, id: u32) -> Option<&mut CatalogEntry> {
        self.entries.get_mut(id as usize)?.as_mut()
    }

    fn live(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    fn create(&mut self, name: String, lo: u64, hi: u64) -> Result<u32, Status> {
        if self.by_name.contains_key(&name) {
            return Err(Status::BadVerb); // duplicate name
        }
        if self.live() >= self.max {
            return Err(Status::Overloaded);
        }
        // hierarchy depth from the domain's span, capped like the
        // hand-built sessions in this workspace
        let span = (hi - lo) as u128 + 1;
        let mut m = 1u32;
        while (1u128 << m) < span && m < 9 {
            m += 1;
        }
        let sharded = ShardedIndex::build_with_domain(&[], lo, hi, CREATED_SHARDS, |s, l, h| {
            HintMSubs::build_with_domain(s, Domain::new(l, h, m), SubsConfig::update_friendly())
        });
        let id = self.entries.len() as u32;
        self.by_name.insert(name.clone(), id);
        self.entries.push(Some(CatalogEntry {
            name,
            session: Session::new(sharded),
            records: Arc::new(HashMap::new()),
        }));
        Ok(id)
    }

    /// Drops a named entry, returning its id. Index 0 is undropable.
    fn drop_named(&mut self, name: &str) -> Result<u32, Status> {
        let id = *self.by_name.get(name).ok_or(Status::UnknownIndex)?;
        if id == 0 {
            return Err(Status::BadVerb);
        }
        self.by_name.remove(name);
        self.entries[id as usize] = None;
        Ok(id)
    }

    fn infos(&self) -> Vec<IndexInfo> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| {
                slot.as_ref().map(|e| {
                    let (lo, hi) = e.session.domain();
                    IndexInfo {
                        id: id as u32,
                        name: e.name.clone(),
                        lo,
                        hi,
                        len: e.session.len() as u64,
                    }
                })
            })
            .collect()
    }
}

/// Per-connection scheduler state.
struct ConnState {
    tx: Sender<Vec<u8>>,
    /// Where un-addressed verbs go; index 0 until a `UseIndex`.
    default_index: u32,
    /// The connection's outstanding-request counter, shared with its
    /// reader thread's admission gate; the scheduler decrements it as
    /// each admitted request's reply goes out.
    inflight: Arc<AtomicUsize>,
}

/// One queued walk-driven request.
struct Pending {
    conn: ConnId,
    entry: u32,
    /// The range the level walk runs (`None`: the answer is already
    /// known to be empty, the slot only holds FIFO position).
    probe: Option<RangeQuery>,
    sink: ServeSink,
    /// High-priority lane: bounded verbs and wire-flagged requests.
    high: bool,
}

/// Streams (outer, inner) join pairs to one connection as they are
/// found, cutting a `Results` frame every [`PAIRS_PER_FRAME`] pairs.
/// A send failure (the peer is gone) saturates the sink, aborting both
/// the inner walks and the outer loop — backpressure by disconnect.
struct JoinStream {
    outer: u64,
    buf: BytesMut,
    pairs: u64,
    tx: Option<Sender<Vec<u8>>>,
    dead: bool,
}

impl JoinStream {
    fn new(tx: Option<Sender<Vec<u8>>>) -> Self {
        Self {
            outer: 0,
            buf: BytesMut::new(),
            pairs: 0,
            tx,
            dead: false,
        }
    }

    fn ship(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut out = BytesMut::new();
        encode_results(&mut out, self.buf.as_slice());
        self.buf.clear();
        match &self.tx {
            Some(tx) => {
                if tx.send(Vec::from(out)).is_err() {
                    self.dead = true;
                }
            }
            None => self.dead = true,
        }
    }

    /// Flushes the partial frame and sends the trailer.
    fn finish(mut self) {
        self.ship();
        let mut out = BytesMut::new();
        encode_end(
            &mut out,
            Reply {
                status: Status::Ok,
                count: self.pairs,
            },
        );
        if let Some(tx) = &self.tx {
            let _ = tx.send(Vec::from(out));
        }
    }
}

impl hint_core::QuerySink for JoinStream {
    fn emit(&mut self, inner: u64) {
        self.buf.put_u64_le(self.outer);
        self.buf.put_u64_le(inner);
        self.pairs += 1;
        if self.buf.len() >= PAIRS_PER_FRAME * 16 {
            self.ship();
        }
    }

    fn is_saturated(&self) -> bool {
        self.dead
    }
}

/// The scheduler: owns the catalog and the pending queue.
struct Scheduler {
    catalog: Catalog,
    config: ServeConfig,
    conns: HashMap<ConnId, ConnState>,
    /// Queued walk-driven requests in global arrival order (which
    /// restricts to per-connection request order).
    pending: Vec<Pending>,
    /// When the open batch must flush (set when its first query
    /// arrives).
    deadline: Instant,
    /// The admission gate the reader threads meter against; the
    /// scheduler's half of the contract is returning each admitted
    /// request's budget when its reply is sent.
    gate: AdmissionGate,
    /// The AIMD window controller; `None` in fixed mode, which leaves
    /// scheduling byte-identical to the pre-controller servers.
    controller: Option<WindowController>,
    /// Epoch for the synthetic microsecond timestamps the controller
    /// consumes (it never reads the clock itself).
    t0: Instant,
    stats: Arc<RwLock<BatchStats>>,
}

impl Scheduler {
    fn new(
        session: Session<HintMSubs>,
        records: Records,
        config: ServeConfig,
        stats: Arc<RwLock<BatchStats>>,
        gate: AdmissionGate,
    ) -> Self {
        stats.write().read_replicas = session.read_replicas() as u64;
        let max = hint_core::env::var_or(
            "HINT_MAX_INDEXES",
            DEFAULT_MAX_INDEXES,
            "must be >= 1",
            |&n: &usize| n >= 1,
        );
        let default = CatalogEntry {
            name: "default".to_string(),
            session,
            records,
        };
        let config = ServeConfig {
            max_batch: config.max_batch.max(1),
            min_window: config.min_window.clamp(1, config.max_batch.max(1)),
            conn_pending: config.conn_pending.max(1),
            max_pending: config.max_pending.max(1),
            ..config
        };
        let controller = match config.mode {
            WindowMode::Fixed => None,
            WindowMode::Adaptive => Some(WindowController::new(ControllerConfig {
                min_window: config.min_window,
                max_window: config.max_batch,
                max_delay: config.max_delay,
            })),
        };
        stats.write().cur_window = controller
            .as_ref()
            .map_or(config.max_batch, WindowController::window);
        Self {
            catalog: Catalog::new(default, max),
            config,
            conns: HashMap::new(),
            pending: Vec::new(),
            deadline: Instant::now(),
            gate,
            controller,
            t0: Instant::now(),
            stats,
        }
    }

    /// Microseconds since scheduler start — the monotonic scale fed to
    /// the controller.
    fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// The batch window currently in force.
    fn cur_window(&self) -> usize {
        self.controller
            .as_ref()
            .map_or(self.config.max_batch, WindowController::window)
    }

    /// The flush delay the next batch should wait for.
    fn cur_delay(&self) -> Duration {
        self.controller
            .as_ref()
            .map_or(self.config.max_delay, WindowController::delay)
    }

    fn run(mut self, ops: Receiver<Op>) {
        loop {
            let op = if self.pending.is_empty() {
                // between batches and out of work: under the `idle`
                // re-tune policy, fold dirty overlays in now (and
                // re-tune the dirty shards against their observed
                // extent mix) instead of waiting for a Seal request
                match ops.try_recv() {
                    Ok(op) => op,
                    Err(crossbeam::channel::TryRecvError::Empty) => {
                        self.maybe_reseal_idle();
                        match ops.recv() {
                            Ok(op) => op,
                            Err(_) => return, // every handle gone
                        }
                    }
                    Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                }
            } else {
                let wait = self.deadline.saturating_duration_since(Instant::now());
                match ops.recv_timeout(wait) {
                    Ok(op) => op,
                    Err(RecvTimeoutError::Timeout) => {
                        self.flush_deadline();
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.flush_all();
                        return;
                    }
                }
            };
            match op {
                Op::Conn(id, tx, inflight) => {
                    self.conns.insert(
                        id,
                        ConnState {
                            tx,
                            default_index: 0,
                            inflight,
                        },
                    );
                }
                Op::Request(id, cmd, shed) => self.handle(id, cmd, shed),
                Op::Invalid(id, status) => {
                    // flush this connection first so the error trailer
                    // lands in its FIFO position
                    self.flush_conn(id);
                    self.send_end(id, Reply { status, count: 0 });
                }
                Op::Fatal(id, status) => {
                    self.flush_conn(id);
                    self.send_end(id, Reply { status, count: 0 });
                    self.conns.remove(&id); // writer drains, then exits
                }
                Op::Disconnect(id) => {
                    // the peer is gone but its queued queries may share
                    // a batch with live connections; execute, then drop
                    self.flush_all();
                    self.conns.remove(&id);
                }
                Op::Stop => {
                    self.flush_all();
                    return;
                }
            }
        }
    }

    /// Dispatches one decoded request. Catalog verbs act immediately
    /// (after flushing what per-connection FIFO demands); walk-driven
    /// verbs enqueue; writes barrier their own index — and only it —
    /// so writes to one index never stall reads on another.
    fn handle(&mut self, conn: ConnId, cmd: Command, shed: bool) {
        let eid = cmd
            .index
            .unwrap_or_else(|| self.conns.get(&conn).map_or(0, |c| c.default_index));
        if shed {
            // the reader's admission gate refused this request: queue
            // only its FIFO placeholder, which carries the recoverable
            // `Overloaded` trailer and nothing else
            let high = cmd.priority
                || matches!(cmd.verb, Request::TopK { .. } | Request::Histogram { .. });
            self.shed_slot(conn, eid, high);
            return;
        }
        match cmd.verb {
            // ---- catalog management -------------------------------
            Request::CreateIndex { name, lo, hi } => {
                self.flush_conn(conn);
                let reply = match self.catalog.create(name, lo, hi) {
                    Ok(id) => Reply {
                        status: Status::Ok,
                        count: id as u64,
                    },
                    Err(status) => Reply { status, count: 0 },
                };
                self.send_end(conn, reply);
            }
            Request::DropIndex(name) => {
                // answer the dropped index's queued work before it goes
                let target = self.catalog.by_name.get(&name).copied();
                match target {
                    Some(id) if id != 0 => self.flush_where(&[id], Some(conn)),
                    _ => self.flush_conn(conn),
                }
                let reply = match self.catalog.drop_named(&name) {
                    Ok(id) => Reply {
                        status: Status::Ok,
                        count: id as u64,
                    },
                    Err(status) => Reply { status, count: 0 },
                };
                self.send_end(conn, reply);
            }
            Request::ListIndexes => {
                self.flush_conn(conn);
                let mut out = BytesMut::new();
                encode_index_infos(&mut out, &self.catalog.infos());
                self.send_bytes(conn, out);
            }
            Request::UseIndex(name) => {
                self.flush_conn(conn);
                let reply = match self.catalog.by_name.get(&name).copied() {
                    Some(id) => {
                        if let Some(c) = self.conns.get_mut(&conn) {
                            c.default_index = id;
                        }
                        Reply {
                            status: Status::Ok,
                            count: id as u64,
                        }
                    }
                    None => Reply {
                        status: Status::UnknownIndex,
                        count: 0,
                    },
                };
                self.send_end(conn, reply);
            }
            // ---- walk-driven reads --------------------------------
            // bounded verbs (top-k, histogram, provably-empty Allen)
            // ride the high lane regardless of the wire flag: their
            // reply cost is O(k)/O(buckets), so letting them jump
            // enumeration traffic is what the lanes exist for
            Request::Query(q) => match self.catalog.get(eid) {
                Some(_) => self.enqueue(conn, eid, Some(q), ServeSink::range(), cmd.priority),
                None => self.reject_gated(conn, Status::UnknownIndex),
            },
            Request::Allen { rel, q } => match self.catalog.get(eid) {
                Some(entry) => {
                    let (lo, hi) = entry.session.domain();
                    // the probe is a minimal superset; the sink-level
                    // relation filter refines it to the exact answer
                    match rel.probe(q, lo, hi) {
                        Some(p) => {
                            let sink = ServeSink::allen(rel, q, Arc::clone(&entry.records));
                            self.enqueue(conn, eid, Some(p), sink, cmd.priority);
                        }
                        // provably empty, but the slot keeps FIFO order
                        None => self.enqueue(conn, eid, None, ServeSink::Empty, true),
                    }
                }
                None => self.reject_gated(conn, Status::UnknownIndex),
            },
            Request::TopK { k, q } => match self.catalog.get(eid) {
                Some(entry) => {
                    let sink = ServeSink::top_k(k as usize, Arc::clone(&entry.records));
                    self.enqueue(conn, eid, Some(q), sink, true);
                }
                None => self.reject_gated(conn, Status::UnknownIndex),
            },
            Request::Histogram { width, q } => match self.catalog.get(eid) {
                Some(entry) => {
                    let buckets = ((q.end - q.st) as u128 + 1).div_ceil(width as u128);
                    if buckets > MAX_HIST_BUCKETS {
                        self.reject_gated(conn, Status::BadVerb);
                        return;
                    }
                    let sink = ServeSink::histogram(q, width, Arc::clone(&entry.records));
                    self.enqueue(conn, eid, Some(q), sink, true);
                }
                None => self.reject_gated(conn, Status::UnknownIndex),
            },
            Request::Join { inner, q } => self.join(conn, eid, inner, q),
            // ---- writes (per-index barriers) ----------------------
            Request::Insert(s) => {
                if self.catalog.get(eid).is_none() {
                    self.reject(conn, Status::UnknownIndex);
                    return;
                }
                self.flush_where(&[eid], Some(conn));
                self.stats.write().writes += 1;
                let entry = self.catalog.get_mut(eid).expect("checked above");
                let reply = match entry.session.try_insert(s) {
                    Ok(()) => {
                        Arc::make_mut(&mut entry.records).insert(s.id, s);
                        Reply {
                            status: Status::Ok,
                            count: 1,
                        }
                    }
                    Err(hint_core::WriteError::ReservedId) => Reply {
                        status: Status::ReservedId,
                        count: 0,
                    },
                    Err(hint_core::WriteError::OutOfDomain { .. }) => Reply {
                        status: Status::OutOfDomain,
                        count: 0,
                    },
                };
                self.send_end(conn, reply);
            }
            Request::Delete(s) => {
                if self.catalog.get(eid).is_none() {
                    self.reject(conn, Status::UnknownIndex);
                    return;
                }
                self.flush_where(&[eid], Some(conn));
                self.stats.write().writes += 1;
                let entry = self.catalog.get_mut(eid).expect("checked above");
                let found = entry.session.delete(&s);
                if found {
                    Arc::make_mut(&mut entry.records).remove(&s.id);
                }
                self.send_end(
                    conn,
                    Reply {
                        status: Status::Ok,
                        count: u64::from(found),
                    },
                );
            }
            Request::Seal => {
                if self.catalog.get(eid).is_none() {
                    self.reject(conn, Status::UnknownIndex);
                    return;
                }
                self.flush_where(&[eid], Some(conn));
                self.stats.write().writes += 1;
                let entry = self.catalog.get_mut(eid).expect("checked above");
                let resealed = entry.session.seal_if_dirty();
                self.note_retunes();
                self.send_end(
                    conn,
                    Reply {
                        status: Status::Ok,
                        count: u64::from(resealed),
                    },
                );
            }
            Request::Snapshot(path) => {
                if self.catalog.get(eid).is_none() {
                    self.reject(conn, Status::UnknownIndex);
                    return;
                }
                // snapshots are write barriers too: the bytes must
                // reflect every request answered before this one
                self.flush_where(&[eid], Some(conn));
                self.stats.write().writes += 1;
                let entry = self.catalog.get_mut(eid).expect("checked above");
                match path {
                    None => match entry.session.snapshot_bytes() {
                        Ok(bytes) => self.stream_snapshot(conn, &bytes),
                        Err(_) => self.send_end(
                            conn,
                            Reply {
                                status: Status::SnapshotFailed,
                                count: 0,
                            },
                        ),
                    },
                    Some(p) => {
                        let reply = match entry.session.snapshot_save(Path::new(&p)) {
                            Ok(bytes) => Reply {
                                status: Status::Ok,
                                count: bytes,
                            },
                            Err(_) => Reply {
                                status: Status::SnapshotFailed,
                                count: 0,
                            },
                        };
                        self.send_end(conn, reply);
                    }
                }
            }
            Request::Restore(p) => {
                if self.catalog.get(eid).is_none() {
                    self.reject(conn, Status::UnknownIndex);
                    return;
                }
                self.flush_where(&[eid], Some(conn));
                self.stats.write().writes += 1;
                // restore into a twin first: the served index (and its
                // record table) only swap on full success
                let reply = match Session::<HintMSubs>::restore(Path::new(&p))
                    .map_err(|e| e.to_string())
                    .and_then(|mut fresh| {
                        let live = fresh.live_intervals().map_err(|e| e.to_string())?;
                        Ok((fresh, live))
                    }) {
                    Ok((fresh, live)) => {
                        let count = fresh.len() as u64;
                        let entry = self.catalog.get_mut(eid).expect("checked above");
                        entry.session = fresh;
                        entry.records = Arc::new(live.into_iter().map(|s| (s.id, s)).collect());
                        Reply {
                            status: Status::Ok,
                            count,
                        }
                    }
                    // the served index is unchanged on failure
                    Err(_) => Reply {
                        status: Status::SnapshotFailed,
                        count: 0,
                    },
                };
                self.send_end(conn, reply);
            }
        }
    }

    /// Queues an admitted walk-driven request, flushing everything when
    /// the batch window fills.
    fn enqueue(
        &mut self,
        conn: ConnId,
        entry: u32,
        probe: Option<RangeQuery>,
        sink: ServeSink,
        high: bool,
    ) {
        self.push(conn, entry, probe, sink, high, true);
    }

    /// Queues the FIFO placeholder for a request the reader's admission
    /// gate refused: no walk, no budget held, just the recoverable
    /// [`Status::Overloaded`] trailer in its request-order position.
    fn shed_slot(&mut self, conn: ConnId, entry: u32, high: bool) {
        self.stats.write().shed += 1;
        self.push(conn, entry, None, ServeSink::Shed, high, false);
    }

    fn push(
        &mut self,
        conn: ConnId,
        entry: u32,
        probe: Option<RangeQuery>,
        sink: ServeSink,
        high: bool,
        admitted: bool,
    ) {
        let now = self.now_us();
        if let Some(c) = &mut self.controller {
            c.on_arrival(now);
        }
        if high && self.config.lanes {
            self.stats.write().lane_high += 1;
        }
        if self.pending.is_empty() {
            self.deadline = Instant::now() + self.cur_delay();
        }
        self.pending.push(Pending {
            conn,
            entry,
            probe,
            sink,
            high,
        });
        if self.pending.len() >= self.cur_window() {
            self.flush_full();
        } else if high
            && admitted
            && self.config.lanes
            && self
                .pending
                .iter()
                .filter(|p| p.conn == conn)
                .all(|p| p.high)
        {
            // a high-priority request behind nothing but other high
            // work on its own connection does not wait out the window:
            // flush the connection now — the whole point of the lane is
            // that a bounded query never queues behind the batch timer
            self.flush_conn(conn);
        }
    }

    /// Returns one admitted request's budget to the gate: the global
    /// counter always, the per-connection counter while the connection
    /// is still known (a vanished connection's reader is gone too, so
    /// its counter no longer gates anything).
    fn release(&mut self, conn: ConnId) {
        self.gate.inflight.fetch_sub(1, Ordering::Relaxed);
        if let Some(c) = self.conns.get(&conn) {
            c.inflight.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// A window-full flush: feed the controller, then flush.
    fn flush_full(&mut self) {
        if let Some(c) = &mut self.controller {
            c.on_flush(self.pending.len(), false);
        }
        self.note_window();
        self.flush_all();
    }

    /// A deadline flush: the timer fired before the window filled.
    fn flush_deadline(&mut self) {
        if let Some(c) = &mut self.controller {
            c.on_flush(self.pending.len(), true);
        }
        self.note_window();
        self.flush_all();
    }

    /// Mirrors the controller's current window into the stats snapshot.
    fn note_window(&mut self) {
        let w = self.cur_window();
        self.stats.write().cur_window = w;
    }

    /// Answers a request with an error trailer in FIFO position.
    fn reject(&mut self, conn: ConnId, status: Status) {
        self.flush_conn(conn);
        self.send_end(conn, Reply { status, count: 0 });
    }

    /// [`reject`](Self::reject) for an admitted gated verb: the reader
    /// counted this request against the admission budgets, so the
    /// error reply must give them back.
    fn reject_gated(&mut self, conn: ConnId, status: Status) {
        self.release(conn);
        self.reject(conn, status);
    }

    /// Executes the streamed interval join: for every record of the
    /// outer index overlapping the window (ascending id), the inner
    /// index is probed with the record clipped to the window, and each
    /// (outer, inner) pair streams to the requesting connection.
    fn join(&mut self, conn: ConnId, outer: u32, inner: u32, q: RangeQuery) {
        if self.catalog.get(outer).is_none() || self.catalog.get(inner).is_none() {
            self.reject(conn, Status::UnknownIndex);
            return;
        }
        // a join is a read barrier on both sides plus this connection
        self.flush_where(&[outer, inner], Some(conn));
        let outer_records = Arc::clone(&self.catalog.get(outer).expect("checked above").records);
        let mut rows: Vec<Interval> = outer_records
            .values()
            .filter(|s| s.st <= q.end && s.end >= q.st)
            .copied()
            .collect();
        rows.sort_unstable_by_key(|s| s.id);
        let inner_session = &self.catalog.get(inner).expect("checked above").session;
        let mut stream = JoinStream::new(self.conns.get(&conn).map(|c| c.tx.clone()));
        for o in rows {
            if stream.dead {
                break;
            }
            stream.outer = o.id;
            let clip = RangeQuery::new(o.st.max(q.st), o.end.min(q.end));
            inner_session.query_sink(clip, &mut stream);
        }
        stream.finish();
    }

    /// Flushes every queued request. With lanes on, each connection's
    /// maximal all-high *prefix* executes (and replies) ahead of the
    /// low lane — a prefix split, so per-connection FIFO survives —
    /// and each lane is round-robin reordered across connections so no
    /// single flooder monopolizes the front of a batch.
    fn flush_all(&mut self) {
        let items = std::mem::take(&mut self.pending);
        if items.is_empty() {
            return;
        }
        if !self.config.lanes {
            self.execute(items);
            return;
        }
        let mut still_high: HashMap<ConnId, bool> = HashMap::new();
        let mut high = Vec::new();
        let mut low = Vec::new();
        for p in items {
            let eligible = still_high.entry(p.conn).or_insert(true);
            if *eligible && p.high {
                high.push(p);
            } else {
                *eligible = false;
                low.push(p);
            }
        }
        self.execute(Self::round_robin(high));
        self.execute(Self::round_robin(low));
    }

    /// Round-robin fairness within a lane: items are dealt out one per
    /// connection per round (connections ordered by first appearance),
    /// preserving each connection's own order.
    fn round_robin(items: Vec<Pending>) -> Vec<Pending> {
        if items.len() <= 1 {
            return items;
        }
        let mut queues: Vec<(ConnId, VecDeque<Pending>)> = Vec::new();
        for p in items {
            match queues.iter_mut().find(|(c, _)| *c == p.conn) {
                Some((_, q)) => q.push_back(p),
                None => queues.push((p.conn, VecDeque::from([p]))),
            }
        }
        let mut out = Vec::with_capacity(queues.iter().map(|(_, q)| q.len()).sum());
        while !queues.is_empty() {
            queues.retain_mut(|(_, q)| {
                if let Some(p) = q.pop_front() {
                    out.push(p);
                }
                !q.is_empty()
            });
        }
        out
    }

    /// Flushes one connection's queued requests (all indexes).
    fn flush_conn(&mut self, conn: ConnId) {
        self.flush_where(&[], Some(conn));
    }

    /// Selective flush: executes every queued request on the given
    /// indexes or from the given connection — plus, for each connection
    /// that loses an item, every *earlier* item it has queued, so
    /// per-connection reply order stays FIFO. Requests on untouched
    /// indexes from untouched connections stay queued: this is what
    /// lets a write barrier one index without stalling the others.
    fn flush_where(&mut self, entries: &[u32], conn: Option<ConnId>) {
        if self.pending.is_empty() {
            return;
        }
        // last selected position per connection (prefix closure)
        let mut latest: HashMap<ConnId, usize> = HashMap::new();
        for (i, p) in self.pending.iter().enumerate() {
            if entries.contains(&p.entry) || conn == Some(p.conn) {
                latest.insert(p.conn, i);
            }
        }
        if latest.is_empty() {
            return;
        }
        let mut selected = Vec::new();
        let mut rest = Vec::new();
        for (i, p) in std::mem::take(&mut self.pending).into_iter().enumerate() {
            if latest.get(&p.conn).is_some_and(|&last| i <= last) {
                selected.push(p);
            } else {
                rest.push(p);
            }
        }
        self.pending = rest;
        self.execute(selected);
    }

    /// Executes a flushed set: one merged walk per addressed index,
    /// then every reply sent in arrival order.
    fn execute(&mut self, mut items: Vec<Pending>) {
        if items.is_empty() {
            return;
        }
        // these are answered now: release their admission budget back
        // to the reader-side gate (shed slots never held any)
        for p in &items {
            if !matches!(p.sink, ServeSink::Shed) {
                self.release(p.conn);
            }
        }
        // group walk work per entry, preserving arrival order within
        let mut by_entry: Vec<(u32, Vec<usize>)> = Vec::new();
        for (i, p) in items.iter().enumerate() {
            if p.probe.is_none() {
                continue;
            }
            match by_entry.iter_mut().find(|(e, _)| *e == p.entry) {
                Some((_, v)) => v.push(i),
                None => by_entry.push((p.entry, vec![i])),
            }
        }
        let mut ran = 0u64;
        let mut total = 0u64;
        let mut largest = 0usize;
        for (entry, idxs) in &by_entry {
            // DropIndex flushes its entry before removal, so a queued
            // item's entry is always live here; guard anyway — a
            // missing entry just leaves its sinks empty
            let Some(e) = self.catalog.get(*entry) else {
                continue;
            };
            let queries: Vec<RangeQuery> = idxs
                .iter()
                .map(|&i| items[i].probe.expect("grouped on Some"))
                .collect();
            // plain range scans (every legacy verb) walk the merge
            // path monomorphized over `WireSink` directly — the enum
            // dispatch is measurable in the per-id emit loops, so only
            // mixed batches (Allen/top-k/histogram present) pay for it
            if idxs
                .iter()
                .all(|&i| matches!(items[i].sink, ServeSink::Range(_)))
            {
                let mut sinks: Vec<WireSink> = idxs
                    .iter()
                    .map(
                        |&i| match std::mem::replace(&mut items[i].sink, ServeSink::Empty) {
                            ServeSink::Range(w) => w,
                            _ => unreachable!("filtered on Range"),
                        },
                    )
                    .collect();
                e.session.query_batch_merge(&queries, &mut sinks);
                for (&i, sink) in idxs.iter().zip(sinks) {
                    items[i].sink = ServeSink::Range(sink);
                }
            } else {
                let mut sinks: Vec<ServeSink> = idxs
                    .iter()
                    .map(|&i| std::mem::replace(&mut items[i].sink, ServeSink::Empty))
                    .collect();
                e.session.query_batch_merge(&queries, &mut sinks);
                for (&i, sink) in idxs.iter().zip(sinks) {
                    items[i].sink = sink;
                }
            }
            ran += 1;
            total += queries.len() as u64;
            largest = largest.max(queries.len());
        }
        if ran > 0 {
            // mirror the pools' epoch-read counters (the pools own the
            // running totals; sum across catalog entries)
            let replica_reads: u64 = self
                .catalog
                .entries
                .iter()
                .flatten()
                .map(|e| {
                    let pool = e.session.pool().stats();
                    pool.epoch_reads + pool.replica_dispatched
                })
                .sum();
            let mut stats = self.stats.write();
            stats.batches += ran;
            stats.queries += total;
            stats.largest_batch = stats.largest_batch.max(largest);
            stats.replica_reads = replica_reads;
        }
        for p in items {
            let mut out = BytesMut::new();
            p.sink.into_reply(&mut out);
            self.send_bytes(p.conn, out);
        }
    }

    /// The between-batches hook: reseal (and re-tune) dirty shards when
    /// the request stream is idle and each session's policy allows it.
    fn maybe_reseal_idle(&mut self) {
        let mut any = false;
        for entry in self.catalog.entries.iter_mut().flatten() {
            if entry.session.reseal_idle() {
                self.stats.write().idle_reseals += 1;
                any = true;
            }
        }
        if any {
            self.note_retunes();
        }
    }

    /// Mirrors the sessions' completed re-tune counts into the served
    /// stats snapshot.
    fn note_retunes(&mut self) {
        let total: u64 = self
            .catalog
            .entries
            .iter()
            .flatten()
            .map(|e| e.session.retunes().len() as u64)
            .sum();
        self.stats.write().retunes = total;
    }

    /// Streams snapshot bytes to one connection as [`SNAP_CHUNK`]-sized
    /// chunk frames followed by an `Ok` trailer whose count is the
    /// total byte length.
    fn stream_snapshot(&self, conn: ConnId, bytes: &[u8]) {
        let mut out = BytesMut::new();
        for chunk in bytes.chunks(SNAP_CHUNK) {
            encode_snapshot_chunk(&mut out, chunk);
        }
        encode_end(
            &mut out,
            Reply {
                status: Status::Ok,
                count: bytes.len() as u64,
            },
        );
        self.send_bytes(conn, out);
    }

    fn send_end(&self, conn: ConnId, reply: Reply) {
        let mut out = BytesMut::new();
        encode_end(&mut out, reply);
        self.send_bytes(conn, out);
    }

    fn send_bytes(&self, conn: ConnId, out: BytesMut) {
        if let Some(c) = self.conns.get(&conn) {
            let _ = c.tx.send(Vec::from(out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::transport::{duplex, DuplexTransport};
    use crate::ClientError;
    use bytes::Buf;
    use hint_core::{Domain, Interval, ShardedIndex, SubsConfig};

    fn session() -> Session<HintMSubs> {
        let data: Vec<Interval> = (0..500)
            .map(|i| {
                let st = (i * 37) % 4_000;
                Interval::new(i, st, (st + i % 50).min(4_095))
            })
            .collect();
        let sharded = ShardedIndex::build_with_domain(&data, 0, 4_095, 4, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 8), SubsConfig::full())
        });
        Session::new(sharded)
    }

    fn failing_read_spawn(name: String, f: Box<dyn FnOnce() + Send + 'static>) -> io::Result<()> {
        if name.starts_with("serve-read") {
            return Err(io::Error::other("induced spawn failure"));
        }
        os_spawn(name, f)
    }

    /// An [`AcceptSource`] that replays a script of accept outcomes,
    /// then reports a fatal error so the acceptor thread exits and
    /// shutdown can join it.
    struct ScriptedSource {
        script: std::sync::Mutex<std::collections::VecDeque<io::Result<DuplexTransport>>>,
    }

    impl ScriptedSource {
        fn new(script: Vec<io::Result<DuplexTransport>>) -> Self {
            Self {
                script: std::sync::Mutex::new(script.into_iter().collect()),
            }
        }
    }

    impl AcceptSource for ScriptedSource {
        type Conn = DuplexTransport;
        fn accept(&self) -> io::Result<DuplexTransport> {
            self.script
                .lock()
                .unwrap()
                .pop_front()
                .unwrap_or_else(|| Err(io::Error::new(io::ErrorKind::Unsupported, "script over")))
        }
    }

    #[test]
    fn accept_loop_survives_transient_errors_and_keeps_admitting() {
        let mut server = Server::start(session(), ServeConfig::default()).unwrap();
        let (client_end, server_end) = duplex();
        // EMFILE-shaped failures reach userland as an uncategorized
        // kind; the loop must classify them transient, back off, and
        // still admit the connection scripted after them
        let emfile = || io::Error::other("Too many open files (os error 24)");
        server
            .listen_source(ScriptedSource::new(vec![
                Err(emfile()),
                Err(io::Error::from(io::ErrorKind::ConnectionAborted)),
                Ok(server_end),
            ]))
            .unwrap();
        let mut client = Client::new(client_end).unwrap();
        assert!(!client.query(RangeQuery::new(0, 4_095)).unwrap().is_empty());
        let stats = server.stats();
        assert!(
            stats.accept_errors >= 2,
            "transient accept errors must be counted, got {stats:?}"
        );
        server.shutdown();
    }

    #[test]
    fn fatal_accept_errors_end_the_loop_without_retry_spin() {
        let mut server = Server::start(session(), ServeConfig::default()).unwrap();
        server
            .listen_source(ScriptedSource::new(vec![Err(io::Error::from(
                io::ErrorKind::PermissionDenied,
            ))]))
            .unwrap();
        // a fatal error exits immediately: no accept_errors counted,
        // and shutdown joins the acceptor without a wake-up address
        server.shutdown();
    }

    #[test]
    fn batch_stats_report_the_replica_configuration() {
        // `Session::new` honors HINT_READ_REPLICAS (the CI sweep sets
        // it), so assert against what the session actually configured
        let sess = session();
        let replicas = sess.read_replicas() as u64;
        let server = Server::start(sess, ServeConfig::default()).unwrap();
        let (c, s) = duplex();
        server.attach(s);
        let mut client = Client::new(c).unwrap();
        client.query(RangeQuery::new(0, 100)).unwrap();
        let stats = server.stats();
        assert_eq!(stats.read_replicas, replicas);
        if replicas == 1 {
            assert_eq!(stats.replica_reads, 0, "unreplicated reads use the pool");
        } else {
            assert!(stats.replica_reads > 0, "replicated reads skip the pool");
        }
        server.shutdown();
    }

    #[test]
    fn reader_spawn_failure_rejects_only_that_connection() {
        let server = Server::start(session(), ServeConfig::default()).unwrap();
        // a connection whose reader thread cannot start is rejected
        // with a fatal trailer, not a panic in the acceptor path
        let (client_end, server_end) = duplex();
        let id = server.next_conn.fetch_add(1, Ordering::Relaxed);
        spawn_connection_with(
            &server.ops,
            id,
            server_end,
            server.gate.clone(),
            failing_read_spawn,
        );
        let (reader, _writer) = client_end.split().unwrap();
        let mut frames = FrameReader::new(reader);
        let f = frames.read_frame().unwrap().expect("a rejection frame");
        assert_eq!(f.kind, crate::proto::Kind::End);
        let mut p = f.payload;
        assert_eq!(Status::from_u8(p.get_u8()), Status::Overloaded);
        assert_eq!(p.get_u64_le(), 0);
        assert!(frames.read_frame().unwrap().is_none(), "then EOF");
        // the server still serves fresh connections
        let (c2, s2) = duplex();
        server.attach(s2);
        let mut client = Client::new(c2).unwrap();
        assert!(!client.query(RangeQuery::new(0, 4_095)).unwrap().is_empty());
        server.shutdown();
    }

    #[test]
    fn snapshot_and_restore_verbs_roundtrip_over_the_wire() {
        let path =
            std::env::temp_dir().join(format!("hint-serve-snap-{}.snap", std::process::id()));
        let server = Server::start(session(), ServeConfig::default()).unwrap();
        let (c, s) = duplex();
        server.attach(s);
        let mut client = Client::new(c).unwrap();
        let mut before = client.query(RangeQuery::new(0, 4_095)).unwrap();
        before.sort_unstable();
        // save, mutate, restore: the mutation must be rolled back
        let saved = client.snapshot_save(path.to_str().unwrap()).unwrap();
        assert!(saved > 0);
        client.insert(Interval::new(90_000, 1, 2)).unwrap();
        client.seal().unwrap();
        assert!(client
            .query(RangeQuery::new(1, 2))
            .unwrap()
            .contains(&90_000));
        let live = client.restore(path.to_str().unwrap()).unwrap();
        assert_eq!(live, before.len() as u64);
        let mut after = client.query(RangeQuery::new(0, 4_095)).unwrap();
        after.sort_unstable();
        assert_eq!(after, before);
        // restoring from a bad path fails recoverably: error trailer,
        // connection kept, index unchanged
        let err = client.restore("/nonexistent/dir/x.snap").unwrap_err();
        assert!(matches!(err, ClientError::Server(Status::SnapshotFailed)));
        assert_eq!(
            client.query(RangeQuery::new(0, 4_095)).unwrap().len(),
            before.len()
        );
        // the streamed snapshot boots an identical twin
        let bytes = client.snapshot_fetch().unwrap();
        let twin = Session::restore_bytes(&bytes).unwrap();
        let mut got: Vec<u64> = Vec::new();
        twin.query_sink(RangeQuery::new(0, 4_095), &mut got);
        got.sort_unstable();
        assert_eq!(got, before);
        server.shutdown();
        std::fs::remove_file(&path).ok();
    }
}
