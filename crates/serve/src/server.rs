//! The batched serving front-end: per-connection reader/writer threads
//! around a single scheduler thread that owns the engine
//! ([`hint_core::Session`]) and turns independent connections into
//! cross-connection query batches.
//!
//! ## Threading model
//!
//! No async runtime: one **scheduler** thread owns the `Session`
//! outright (no locks on the query or write path), and every attached
//! connection contributes a **reader** thread (decode frames → ops
//! channel) and a **writer** thread (response-bytes channel → transport).
//! All cross-thread traffic flows over the vendored `crossbeam`
//! channels. The session keeps each shard on its own persistent,
//! optionally core-pinned worker thread (`hint_core::ShardPool`,
//! `HINT_SHARD_PIN`), so `query_batch_merge` dispatches sub-batches
//! over channels with zero per-batch thread spawns; serving parallelism
//! and index parallelism compose without sharing state. Between
//! batches, when the request stream goes idle, the scheduler may reseal
//! dirty shards at a re-tuned per-shard `m` chosen from the observed
//! query-extent mix (`HINT_SERVE_RETUNE=idle`; see `docs/tuning.md`).
//!
//! ## Batching policy
//!
//! Queries accumulate in arrival order until either `max_batch` are
//! pending or `max_delay` has passed since the batch opened; the batch
//! then executes as one `query_batch_merge` call — the level walks are
//! shared across *all* connections' queries — and each query's
//! [`WireSink`] demultiplexes into its connection's response stream.
//! Writes (`Insert`/`Delete`/`Seal`) act as barriers: they flush the
//! pending batch, apply, and ack, which keeps the global order
//! serializable and every connection's replies in its request order.
//! Because requests are answered strictly FIFO per connection, batched
//! results are bit-identical to what a solo `query_sink` at the same
//! point in the write sequence would produce.

use crate::proto::{encode_end, DecodeError, FrameReader, Reply, Request, Status};
use crate::sink::WireSink;
use crate::transport::Transport;
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hint_core::{MutableIndex, RangeQuery, Session};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler tuning: how long and how wide query batches may grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush the pending batch at this many queries.
    pub max_batch: usize,
    /// Flush the pending batch this long after it opened, even if not
    /// full — the latency bound a queued query pays for batching.
    pub max_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
        }
    }
}

impl ServeConfig {
    /// Reads `HINT_SERVE_MAX_BATCH` (queries, >= 1) and
    /// `HINT_SERVE_MAX_DELAY_US` (microseconds) over the defaults.
    /// Rejected values warn once on stderr and fall back (see
    /// [`hint_core::env`]).
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            max_batch: hint_core::env::var_or(
                "HINT_SERVE_MAX_BATCH",
                d.max_batch,
                "must be >= 1",
                |&n| n >= 1,
            ),
            max_delay: Duration::from_micros(hint_core::env::var_or(
                "HINT_SERVE_MAX_DELAY_US",
                d.max_delay.as_micros() as u64,
                "microseconds",
                |_| true,
            )),
        }
    }
}

/// Scheduler counters: how well the batching policy is doing. Snapshot
/// via [`Server::stats`]; the bench harness reports the observed mean
/// batch size next to each throughput row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches executed (flushes with at least one query).
    pub batches: u64,
    /// Queries served across all batches.
    pub queries: u64,
    /// Largest single batch executed.
    pub largest_batch: usize,
    /// Write requests (insert/delete/seal) applied.
    pub writes: u64,
    /// Shards rebuilt at a re-tuned `m` (see `HINT_SERVE_RETUNE` and
    /// [`hint_core::RetunePolicy`]).
    pub retunes: u64,
    /// Reseals the scheduler triggered on its own between batches
    /// (`HINT_SERVE_RETUNE=idle`).
    pub idle_reseals: u64,
}

impl BatchStats {
    /// Mean queries per executed batch (0 when idle).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }
}

/// Connection identifier, assigned at attach time.
type ConnId = u64;

/// What reader threads (and the server handle) feed the scheduler.
enum Op {
    /// A connection came up; its response bytes go to this channel.
    Conn(ConnId, Sender<Vec<u8>>),
    /// A well-formed request.
    Request(ConnId, Request),
    /// A malformed-but-framed request: answer with an error trailer,
    /// keep the connection.
    Invalid(ConnId, Status),
    /// The connection's stream is beyond recovery: answer with an error
    /// trailer, then close it.
    Fatal(ConnId, Status),
    /// The connection closed (EOF).
    Disconnect(ConnId),
    /// Stop serving (flush pending work first).
    Stop,
}

/// Registers `transport` with the scheduler as connection `id` and
/// spawns its reader and writer threads. Both threads terminate on
/// their own: the reader at transport EOF/error or scheduler exit, the
/// writer when the scheduler drops the connection's response channel or
/// the peer stops reading.
fn spawn_connection<T: Transport>(ops: &Sender<Op>, id: ConnId, transport: T) {
    let (reader, mut writer) = transport.split();
    let (resp_tx, resp_rx) = unbounded::<Vec<u8>>();
    // register before the reader can produce the first request so the
    // scheduler always knows the connection
    let _ = ops.send(Op::Conn(id, resp_tx));
    let ops = ops.clone();
    std::thread::Builder::new()
        .name(format!("serve-read-{id}"))
        .spawn(move || {
            let mut frames = FrameReader::new(reader);
            loop {
                let op = match frames.read_frame() {
                    Ok(Some(frame)) => match frame.to_request() {
                        Ok(req) => Op::Request(id, req),
                        Err(status) => Op::Invalid(id, status),
                    },
                    Ok(None) => {
                        let _ = ops.send(Op::Disconnect(id));
                        return;
                    }
                    Err(DecodeError::Frame(status)) => Op::Invalid(id, status),
                    Err(DecodeError::Desync(status)) => {
                        let _ = ops.send(Op::Fatal(id, status));
                        return;
                    }
                    Err(DecodeError::Io(_)) => {
                        let _ = ops.send(Op::Fatal(id, Status::Truncated));
                        return;
                    }
                };
                if ops.send(op).is_err() {
                    return; // scheduler gone: server shut down
                }
            }
        })
        .expect("spawn connection reader");
    std::thread::Builder::new()
        .name(format!("serve-write-{id}"))
        .spawn(move || {
            for chunk in resp_rx.iter() {
                if writer
                    .write_all(&chunk)
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
        })
        .expect("spawn connection writer");
}

/// A running server over one [`Session`]. Connections attach via
/// [`attach`](Server::attach) (any [`Transport`]) or a TCP listener via
/// [`listen_tcp`](Server::listen_tcp); [`shutdown`](Server::shutdown)
/// flushes and joins the scheduler.
pub struct Server {
    ops: Sender<Op>,
    scheduler: Option<JoinHandle<()>>,
    next_conn: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<(std::net::SocketAddr, JoinHandle<()>)>,
    stats: Arc<RwLock<BatchStats>>,
}

impl Server {
    /// Starts the scheduler thread over `session` with the given
    /// batching policy.
    pub fn start<I>(session: Session<I>, config: ServeConfig) -> Server
    where
        I: MutableIndex + Send + Sync + 'static,
    {
        let (ops_tx, ops_rx) = unbounded();
        let stats = Arc::new(RwLock::new(BatchStats::default()));
        let scheduler_stats = Arc::clone(&stats);
        let scheduler = std::thread::Builder::new()
            .name("serve-scheduler".into())
            .spawn(move || Scheduler::new(session, config, scheduler_stats).run(ops_rx))
            .expect("spawn scheduler thread");
        Server {
            ops: ops_tx,
            scheduler: Some(scheduler),
            next_conn: Arc::new(AtomicU64::new(1)),
            stop: Arc::new(AtomicBool::new(false)),
            acceptors: Vec::new(),
            stats,
        }
    }

    /// A snapshot of the scheduler's batching counters.
    pub fn stats(&self) -> BatchStats {
        *self.stats.read()
    }

    /// Attaches one connection: spawns its reader and writer threads.
    /// The connection lives until its transport reaches EOF / error or
    /// the server shuts down; the threads clean themselves up.
    pub fn attach<T: Transport>(&self, transport: T) {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        spawn_connection(&self.ops, id, transport);
    }

    /// Accepts TCP connections in a background thread until shutdown.
    /// Returns the bound address (useful with an OS-assigned port 0).
    pub fn listen_tcp(&mut self, listener: TcpListener) -> std::io::Result<std::net::SocketAddr> {
        let addr = listener.local_addr()?;
        let ops = self.ops.clone();
        let next_conn = Arc::clone(&self.next_conn);
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    match conn {
                        Ok(stream) => {
                            let id = next_conn.fetch_add(1, Ordering::Relaxed);
                            spawn_connection(&ops, id, stream);
                        }
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn TCP acceptor");
        self.acceptors.push((addr, handle));
        Ok(addr)
    }

    /// Flushes pending work, stops the scheduler and joins every
    /// server-owned thread that can be joined promptly (acceptors are
    /// woken with a no-op connection). Connection reader/writer threads
    /// exit on their own as their transports close.
    pub fn shutdown(mut self) {
        self.stop_acceptors();
        let _ = self.ops.send(Op::Stop);
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }

    /// Raises the stop flag, wakes each blocking `accept` with a no-op
    /// connection, and joins the acceptor threads — releasing their
    /// listener sockets. Prompt: a woken acceptor returns immediately.
    fn stop_acceptors(&mut self) {
        self.stop.store(true, Ordering::Release);
        for (addr, handle) in self.acceptors.drain(..) {
            let _ = TcpStream::connect(addr);
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // same acceptor teardown as shutdown(), so a dropped server
        // never leaves a thread parked in accept() holding its port;
        // the scheduler is only signalled (joining it could block on
        // in-flight work, which drop must not)
        self.stop_acceptors();
        let _ = self.ops.send(Op::Stop);
    }
}

/// The scheduler: owns the session and the pending batch.
struct Scheduler<I: MutableIndex + Send + Sync + 'static> {
    session: Session<I>,
    config: ServeConfig,
    conns: HashMap<ConnId, Sender<Vec<u8>>>,
    /// The open batch, in arrival order (which is also per-connection
    /// request order).
    pending: Vec<(ConnId, RangeQuery)>,
    /// When the open batch must flush (set when its first query
    /// arrives).
    deadline: Instant,
    stats: Arc<RwLock<BatchStats>>,
}

impl<I: MutableIndex + Send + Sync + 'static> Scheduler<I> {
    fn new(session: Session<I>, config: ServeConfig, stats: Arc<RwLock<BatchStats>>) -> Self {
        Self {
            session,
            config: ServeConfig {
                max_batch: config.max_batch.max(1),
                ..config
            },
            conns: HashMap::new(),
            pending: Vec::new(),
            deadline: Instant::now(),
            stats,
        }
    }

    fn run(mut self, ops: Receiver<Op>) {
        loop {
            let op = if self.pending.is_empty() {
                // between batches and out of work: under the `idle`
                // re-tune policy, fold dirty overlays in now (and
                // re-tune the dirty shards against their observed
                // extent mix) instead of waiting for a Seal request
                match ops.try_recv() {
                    Ok(op) => op,
                    Err(crossbeam::channel::TryRecvError::Empty) => {
                        self.maybe_reseal_idle();
                        match ops.recv() {
                            Ok(op) => op,
                            Err(_) => return, // every handle gone
                        }
                    }
                    Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                }
            } else {
                let wait = self.deadline.saturating_duration_since(Instant::now());
                match ops.recv_timeout(wait) {
                    Ok(op) => op,
                    Err(RecvTimeoutError::Timeout) => {
                        self.flush();
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.flush();
                        return;
                    }
                }
            };
            match op {
                Op::Conn(id, tx) => {
                    self.conns.insert(id, tx);
                }
                Op::Request(id, Request::Query(q)) => {
                    if self.pending.is_empty() {
                        self.deadline = Instant::now() + self.config.max_delay;
                    }
                    self.pending.push((id, q));
                    if self.pending.len() >= self.config.max_batch {
                        self.flush();
                    }
                }
                Op::Request(id, Request::Insert(s)) => {
                    // writes are barriers: earlier queries see the
                    // pre-write index, later ones the post-write index
                    self.flush();
                    self.stats.write().writes += 1;
                    let reply = match self.session.try_insert(s) {
                        Ok(()) => Reply {
                            status: Status::Ok,
                            count: 1,
                        },
                        Err(hint_core::WriteError::ReservedId) => Reply {
                            status: Status::ReservedId,
                            count: 0,
                        },
                        Err(hint_core::WriteError::OutOfDomain { .. }) => Reply {
                            status: Status::OutOfDomain,
                            count: 0,
                        },
                    };
                    self.send_end(id, reply);
                }
                Op::Request(id, Request::Delete(s)) => {
                    self.flush();
                    self.stats.write().writes += 1;
                    let found = self.session.delete(&s);
                    self.send_end(
                        id,
                        Reply {
                            status: Status::Ok,
                            count: u64::from(found),
                        },
                    );
                }
                Op::Request(id, Request::Seal) => {
                    self.flush();
                    self.stats.write().writes += 1;
                    let resealed = self.session.seal_if_dirty();
                    self.note_retunes();
                    self.send_end(
                        id,
                        Reply {
                            status: Status::Ok,
                            count: u64::from(resealed),
                        },
                    );
                }
                Op::Invalid(id, status) => {
                    // flush first so the error trailer lands in this
                    // connection's FIFO position
                    self.flush();
                    self.send_end(id, Reply { status, count: 0 });
                }
                Op::Fatal(id, status) => {
                    self.flush();
                    self.send_end(id, Reply { status, count: 0 });
                    self.conns.remove(&id); // writer drains, then exits
                }
                Op::Disconnect(id) => {
                    // the peer is gone but its queued queries may share
                    // a batch with live connections; execute, then drop
                    self.flush();
                    self.conns.remove(&id);
                }
                Op::Stop => {
                    self.flush();
                    return;
                }
            }
        }
    }

    /// Executes the pending batch through one merged walk and
    /// demultiplexes each query's encoded results to its connection.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let queries: Vec<RangeQuery> = self.pending.iter().map(|&(_, q)| q).collect();
        let mut sinks: Vec<WireSink> = queries.iter().map(|_| WireSink::new()).collect();
        self.session.query_batch_merge(&queries, &mut sinks);
        {
            let mut stats = self.stats.write();
            stats.batches += 1;
            stats.queries += queries.len() as u64;
            stats.largest_batch = stats.largest_batch.max(queries.len());
        }
        for ((conn, _), sink) in self.pending.drain(..).zip(sinks) {
            let mut out = BytesMut::new();
            sink.into_frames(&mut out);
            if let Some(tx) = self.conns.get(&conn) {
                let _ = tx.send(Vec::from(out));
            }
        }
    }

    /// The between-batches hook: reseal (and re-tune) dirty shards when
    /// the request stream is idle and the session's policy allows it.
    fn maybe_reseal_idle(&mut self) {
        if self.session.reseal_idle() {
            self.stats.write().idle_reseals += 1;
            self.note_retunes();
        }
    }

    /// Mirrors the session's completed re-tune count into the served
    /// stats snapshot.
    fn note_retunes(&mut self) {
        let total = self.session.retunes().len() as u64;
        self.stats.write().retunes = total;
    }

    fn send_end(&self, conn: ConnId, reply: Reply) {
        let mut out = BytesMut::new();
        encode_end(&mut out, reply);
        if let Some(tx) = self.conns.get(&conn) {
            let _ = tx.send(Vec::from(out));
        }
    }
}
