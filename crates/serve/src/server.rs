//! The batched serving front-end: per-connection reader/writer threads
//! around a single scheduler thread that owns the engine
//! ([`hint_core::Session`]) and turns independent connections into
//! cross-connection query batches.
//!
//! ## Threading model
//!
//! No async runtime: one **scheduler** thread owns the `Session`
//! outright (no locks on the query or write path), and every attached
//! connection contributes a **reader** thread (decode frames → ops
//! channel) and a **writer** thread (response-bytes channel → transport).
//! All cross-thread traffic flows over the vendored `crossbeam`
//! channels. The session keeps each shard on its own persistent,
//! optionally core-pinned worker thread (`hint_core::ShardPool`,
//! `HINT_SHARD_PIN`), so `query_batch_merge` dispatches sub-batches
//! over channels with zero per-batch thread spawns; serving parallelism
//! and index parallelism compose without sharing state. Between
//! batches, when the request stream goes idle, the scheduler may reseal
//! dirty shards at a re-tuned per-shard `m` chosen from the observed
//! query-extent mix (`HINT_SERVE_RETUNE=idle`; see `docs/tuning.md`).
//!
//! ## Batching policy
//!
//! Queries accumulate in arrival order until either `max_batch` are
//! pending or `max_delay` has passed since the batch opened; the batch
//! then executes as one `query_batch_merge` call — the level walks are
//! shared across *all* connections' queries — and each query's
//! [`WireSink`] demultiplexes into its connection's response stream.
//! Writes (`Insert`/`Delete`/`Seal`) act as barriers: they flush the
//! pending batch, apply, and ack, which keeps the global order
//! serializable and every connection's replies in its request order.
//! Because requests are answered strictly FIFO per connection, batched
//! results are bit-identical to what a solo `query_sink` at the same
//! point in the write sequence would produce.

use crate::proto::{
    encode_end, encode_snapshot_chunk, DecodeError, FrameReader, Reply, Request, Status,
};
use crate::sink::WireSink;
use crate::transport::Transport;
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hint_core::{HintMSubs, MutableIndex, RangeQuery, Session};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Payload bytes per streamed snapshot chunk (64 KiB: large enough to
/// amortize frame headers, small enough to keep the writer thread's
/// send granularity bounded).
const SNAP_CHUNK: usize = 64 * 1024;

/// Engine-side support for the wire `Snapshot`/`Restore` verbs.
///
/// The scheduler is generic over the engine it serves, but durable
/// snapshots are a property of the sealed-arena index the snapshot
/// format serializes — so the capability is a separate trait, and
/// [`Server::start`] requires it. Implemented for
/// [`Session<HintMSubs>`]; other engines can implement it (or answer
/// every call with an error, which the scheduler surfaces as
/// [`Status::SnapshotFailed`]).
pub trait SnapshotVerbs {
    /// Serializes the engine's index to snapshot bytes (the streaming
    /// verb). Must act as a write barrier: every applied write is in
    /// the bytes.
    fn snapshot_bytes(&mut self) -> io::Result<Vec<u8>>;
    /// Durably saves the engine's index to a server-side path,
    /// returning the snapshot size in bytes.
    fn snapshot_save(&mut self, path: &Path) -> io::Result<u64>;
    /// Replaces the engine's index from a server-side snapshot file,
    /// returning the restored live count. On error the served index
    /// must be unchanged.
    fn restore_from(&mut self, path: &Path) -> Result<u64, String>;
}

impl SnapshotVerbs for Session<HintMSubs> {
    fn snapshot_bytes(&mut self) -> io::Result<Vec<u8>> {
        Session::snapshot_bytes(self)
    }

    fn snapshot_save(&mut self, path: &Path) -> io::Result<u64> {
        self.snapshot(path)
    }

    fn restore_from(&mut self, path: &Path) -> Result<u64, String> {
        let fresh = Session::restore(path).map_err(|e| e.to_string())?;
        *self = fresh;
        Ok(self.len() as u64)
    }
}

/// Scheduler tuning: how long and how wide query batches may grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush the pending batch at this many queries.
    pub max_batch: usize,
    /// Flush the pending batch this long after it opened, even if not
    /// full — the latency bound a queued query pays for batching.
    pub max_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
        }
    }
}

impl ServeConfig {
    /// Reads `HINT_SERVE_MAX_BATCH` (queries, >= 1) and
    /// `HINT_SERVE_MAX_DELAY_US` (microseconds) over the defaults.
    /// Rejected values warn once on stderr and fall back (see
    /// [`hint_core::env`]).
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            max_batch: hint_core::env::var_or(
                "HINT_SERVE_MAX_BATCH",
                d.max_batch,
                "must be >= 1",
                |&n| n >= 1,
            ),
            max_delay: Duration::from_micros(hint_core::env::var_or(
                "HINT_SERVE_MAX_DELAY_US",
                d.max_delay.as_micros() as u64,
                "microseconds",
                |_| true,
            )),
        }
    }
}

/// Scheduler counters: how well the batching policy is doing. Snapshot
/// via [`Server::stats`]; the bench harness reports the observed mean
/// batch size next to each throughput row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches executed (flushes with at least one query).
    pub batches: u64,
    /// Queries served across all batches.
    pub queries: u64,
    /// Largest single batch executed.
    pub largest_batch: usize,
    /// Write requests (insert/delete/seal) applied.
    pub writes: u64,
    /// Shards rebuilt at a re-tuned `m` (see `HINT_SERVE_RETUNE` and
    /// [`hint_core::RetunePolicy`]).
    pub retunes: u64,
    /// Reseals the scheduler triggered on its own between batches
    /// (`HINT_SERVE_RETUNE=idle`).
    pub idle_reseals: u64,
    /// Accept-loop errors survived (transient failures like FD
    /// exhaustion, retried with bounded backoff instead of killing the
    /// acceptor thread).
    pub accept_errors: u64,
    /// Configured logical read replicas per shard in the served session
    /// (the `HINT_READ_REPLICAS` knob; 1 = unreplicated).
    pub read_replicas: u64,
    /// Shard sub-batches answered from published epochs (replica reader
    /// threads plus scheduler-inline epoch reads) rather than the
    /// owning worker's queue. Zero when unreplicated.
    pub replica_reads: u64,
}

impl BatchStats {
    /// Mean queries per executed batch (0 when idle).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }
}

/// Connection identifier, assigned at attach time.
type ConnId = u64;

/// What reader threads (and the server handle) feed the scheduler.
enum Op {
    /// A connection came up; its response bytes go to this channel.
    Conn(ConnId, Sender<Vec<u8>>),
    /// A well-formed request.
    Request(ConnId, Request),
    /// A malformed-but-framed request: answer with an error trailer,
    /// keep the connection.
    Invalid(ConnId, Status),
    /// The connection's stream is beyond recovery: answer with an error
    /// trailer, then close it.
    Fatal(ConnId, Status),
    /// The connection closed (EOF).
    Disconnect(ConnId),
    /// Stop serving (flush pending work first).
    Stop,
}

/// How `spawn_connection` starts its threads — injectable so tests can
/// induce spawn failure and assert the connection is rejected without
/// taking the acceptor (or the server) down.
type Spawner = fn(String, Box<dyn FnOnce() + Send + 'static>) -> io::Result<()>;

/// The production spawner: a named OS thread per closure.
fn os_spawn(name: String, f: Box<dyn FnOnce() + Send + 'static>) -> io::Result<()> {
    std::thread::Builder::new().name(name).spawn(f).map(|_| ())
}

/// Registers `transport` with the scheduler as connection `id` and
/// spawns its reader and writer threads. Both threads terminate on
/// their own: the reader at transport EOF/error or scheduler exit, the
/// writer when the scheduler drops the connection's response channel or
/// the peer stops reading.
///
/// Connection bring-up is fallible (TCP `try_clone`, thread spawn under
/// resource exhaustion); any failure rejects *this* connection — with a
/// fatal [`Status::Overloaded`] trailer when the write half is still
/// on hand — and never panics the caller, which may be the acceptor
/// serving every other connection.
fn spawn_connection<T: Transport>(ops: &Sender<Op>, id: ConnId, transport: T) {
    spawn_connection_with(ops, id, transport, os_spawn)
}

fn spawn_connection_with<T: Transport>(ops: &Sender<Op>, id: ConnId, transport: T, spawn: Spawner) {
    let (reader, mut writer) = match transport.split() {
        Ok(halves) => halves,
        // no write half to carry a rejection: drop; the peer sees EOF
        Err(_) => return,
    };
    let (resp_tx, resp_rx) = unbounded::<Vec<u8>>();
    // register before the reader can produce the first request so the
    // scheduler always knows the connection
    let _ = ops.send(Op::Conn(id, resp_tx));
    let reader_ops = ops.clone();
    let read = spawn(
        format!("serve-read-{id}"),
        Box::new(move || {
            let mut frames = FrameReader::new(reader);
            loop {
                let op = match frames.read_frame() {
                    Ok(Some(frame)) => match frame.to_request() {
                        Ok(req) => Op::Request(id, req),
                        Err(status) => Op::Invalid(id, status),
                    },
                    Ok(None) => {
                        let _ = reader_ops.send(Op::Disconnect(id));
                        return;
                    }
                    Err(DecodeError::Frame(status)) => Op::Invalid(id, status),
                    Err(DecodeError::Desync(status)) => {
                        let _ = reader_ops.send(Op::Fatal(id, status));
                        return;
                    }
                    Err(DecodeError::Io(_)) => {
                        let _ = reader_ops.send(Op::Fatal(id, Status::Truncated));
                        return;
                    }
                };
                if reader_ops.send(op).is_err() {
                    return; // scheduler gone: server shut down
                }
            }
        }),
    );
    if read.is_err() {
        // reject just this connection: unregister, tell the peer
        // inline (the writer half is still ours), and keep serving
        let _ = ops.send(Op::Disconnect(id));
        let mut out = BytesMut::new();
        encode_end(
            &mut out,
            Reply {
                status: Status::Overloaded,
                count: 0,
            },
        );
        let _ = writer
            .write_all(out.as_slice())
            .and_then(|_| writer.flush());
        return;
    }
    let write = spawn(
        format!("serve-write-{id}"),
        Box::new(move || {
            for chunk in resp_rx.iter() {
                if writer
                    .write_all(&chunk)
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
        }),
    );
    if write.is_err() {
        // the write half went down with the failed spawn; unregister
        // and let the peer see EOF
        let _ = ops.send(Op::Disconnect(id));
    }
}

/// A source of inbound connections for the server's generic accept
/// loop — [`TcpListener`] in production, scriptable shims in tests (the
/// loop's retry/backoff behavior is testable without sockets).
pub trait AcceptSource: Send + 'static {
    /// The transport produced per accepted connection.
    type Conn: Transport;
    /// Blocks until the next connection attempt resolves.
    fn accept(&self) -> io::Result<Self::Conn>;
}

impl AcceptSource for TcpListener {
    type Conn = TcpStream;
    fn accept(&self) -> io::Result<TcpStream> {
        TcpListener::accept(self).map(|(stream, _)| stream)
    }
}

/// First delay after a failed `accept`; doubles per consecutive failure.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
/// Ceiling on the accept retry delay.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// True for accept errors that retrying cannot fix (the listener itself
/// is unusable). Everything else — notably FD exhaustion (`EMFILE`
/// surfaces as an uncategorized kind) and aborted handshakes
/// (`ECONNABORTED`) — is transient: the kernel keeps the listen queue,
/// so backing off and re-accepting recovers.
fn fatal_accept_error(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::InvalidInput
            | io::ErrorKind::NotFound
            | io::ErrorKind::PermissionDenied
            | io::ErrorKind::Unsupported
    )
}

/// The acceptor body: admit connections until the stop flag rises or a
/// fatal accept error. Transient errors are counted
/// ([`BatchStats::accept_errors`]) and retried under exponential
/// backoff, sleeping in short slices so shutdown stays prompt.
fn accept_loop<A: AcceptSource>(
    source: A,
    ops: Sender<Op>,
    next_conn: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    stats: Arc<RwLock<BatchStats>>,
) {
    let mut backoff = ACCEPT_BACKOFF_START;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match source.accept() {
            Ok(conn) => {
                if stop.load(Ordering::Acquire) {
                    return; // the shutdown wake-up connection
                }
                backoff = ACCEPT_BACKOFF_START;
                let id = next_conn.fetch_add(1, Ordering::Relaxed);
                spawn_connection(&ops, id, conn);
            }
            Err(e) if fatal_accept_error(e.kind()) => return,
            Err(_) => {
                stats.write().accept_errors += 1;
                let mut left = backoff;
                while !left.is_zero() {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let slice = left.min(Duration::from_millis(5));
                    std::thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
            }
        }
    }
}

/// A running server over one [`Session`]. Connections attach via
/// [`attach`](Server::attach) (any [`Transport`]) or a TCP listener via
/// [`listen_tcp`](Server::listen_tcp); [`shutdown`](Server::shutdown)
/// flushes and joins the scheduler.
pub struct Server {
    ops: Sender<Op>,
    scheduler: Option<JoinHandle<()>>,
    next_conn: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    /// Acceptor threads; the address is `Some` for TCP listeners so
    /// shutdown can wake a blocking `accept` with a no-op connection.
    acceptors: Vec<(Option<std::net::SocketAddr>, JoinHandle<()>)>,
    stats: Arc<RwLock<BatchStats>>,
}

impl Server {
    /// Starts the scheduler thread over `session` with the given
    /// batching policy. Errors (thread spawn under resource exhaustion)
    /// surface to the caller instead of panicking server bring-up.
    pub fn start<I>(session: Session<I>, config: ServeConfig) -> io::Result<Server>
    where
        I: MutableIndex + Send + Sync + 'static,
        Session<I>: SnapshotVerbs,
    {
        let (ops_tx, ops_rx) = unbounded();
        let stats = Arc::new(RwLock::new(BatchStats::default()));
        let scheduler_stats = Arc::clone(&stats);
        let scheduler = std::thread::Builder::new()
            .name("serve-scheduler".into())
            .spawn(move || Scheduler::new(session, config, scheduler_stats).run(ops_rx))?;
        Ok(Server {
            ops: ops_tx,
            scheduler: Some(scheduler),
            next_conn: Arc::new(AtomicU64::new(1)),
            stop: Arc::new(AtomicBool::new(false)),
            acceptors: Vec::new(),
            stats,
        })
    }

    /// A snapshot of the scheduler's batching counters.
    pub fn stats(&self) -> BatchStats {
        *self.stats.read()
    }

    /// Attaches one connection: spawns its reader and writer threads.
    /// The connection lives until its transport reaches EOF / error or
    /// the server shuts down; the threads clean themselves up.
    pub fn attach<T: Transport>(&self, transport: T) {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        spawn_connection(&self.ops, id, transport);
    }

    /// Accepts TCP connections in a background thread until shutdown.
    /// Returns the bound address (useful with an OS-assigned port 0).
    /// Transient accept failures are retried with bounded backoff (see
    /// [`BatchStats::accept_errors`]); only a fatal error or shutdown
    /// ends the acceptor.
    pub fn listen_tcp(&mut self, listener: TcpListener) -> std::io::Result<std::net::SocketAddr> {
        let addr = listener.local_addr()?;
        self.listen(Some(addr), listener)?;
        Ok(addr)
    }

    /// Accepts connections from an arbitrary [`AcceptSource`] in a
    /// background thread — the seam the accept-loop regression tests
    /// drive with scripted sources. Non-TCP sources cannot be woken by
    /// shutdown; their `accept` must eventually return (the scripted
    /// sources end with a fatal error).
    #[doc(hidden)]
    pub fn listen_source<A: AcceptSource>(&mut self, source: A) -> std::io::Result<()> {
        self.listen(None, source)
    }

    fn listen<A: AcceptSource>(
        &mut self,
        addr: Option<std::net::SocketAddr>,
        source: A,
    ) -> std::io::Result<()> {
        let ops = self.ops.clone();
        let next_conn = Arc::clone(&self.next_conn);
        let stop = Arc::clone(&self.stop);
        let stats = Arc::clone(&self.stats);
        let handle = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(source, ops, next_conn, stop, stats))?;
        self.acceptors.push((addr, handle));
        Ok(())
    }

    /// Flushes pending work, stops the scheduler and joins every
    /// server-owned thread that can be joined promptly (acceptors are
    /// woken with a no-op connection). Connection reader/writer threads
    /// exit on their own as their transports close.
    pub fn shutdown(mut self) {
        self.stop_acceptors();
        let _ = self.ops.send(Op::Stop);
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }

    /// Raises the stop flag, wakes each blocking `accept` with a no-op
    /// connection, and joins the acceptor threads — releasing their
    /// listener sockets. Prompt: a woken acceptor returns immediately.
    fn stop_acceptors(&mut self) {
        self.stop.store(true, Ordering::Release);
        for (addr, handle) in self.acceptors.drain(..) {
            if let Some(addr) = addr {
                let _ = TcpStream::connect(addr);
            }
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // same acceptor teardown as shutdown(), so a dropped server
        // never leaves a thread parked in accept() holding its port;
        // the scheduler is only signalled (joining it could block on
        // in-flight work, which drop must not)
        self.stop_acceptors();
        let _ = self.ops.send(Op::Stop);
    }
}

/// The scheduler: owns the session and the pending batch.
struct Scheduler<I: MutableIndex + Send + Sync + 'static> {
    session: Session<I>,
    config: ServeConfig,
    conns: HashMap<ConnId, Sender<Vec<u8>>>,
    /// The open batch, in arrival order (which is also per-connection
    /// request order).
    pending: Vec<(ConnId, RangeQuery)>,
    /// When the open batch must flush (set when its first query
    /// arrives).
    deadline: Instant,
    stats: Arc<RwLock<BatchStats>>,
}

impl<I: MutableIndex + Send + Sync + 'static> Scheduler<I>
where
    Session<I>: SnapshotVerbs,
{
    fn new(session: Session<I>, config: ServeConfig, stats: Arc<RwLock<BatchStats>>) -> Self {
        stats.write().read_replicas = session.read_replicas() as u64;
        Self {
            session,
            config: ServeConfig {
                max_batch: config.max_batch.max(1),
                ..config
            },
            conns: HashMap::new(),
            pending: Vec::new(),
            deadline: Instant::now(),
            stats,
        }
    }

    fn run(mut self, ops: Receiver<Op>) {
        loop {
            let op = if self.pending.is_empty() {
                // between batches and out of work: under the `idle`
                // re-tune policy, fold dirty overlays in now (and
                // re-tune the dirty shards against their observed
                // extent mix) instead of waiting for a Seal request
                match ops.try_recv() {
                    Ok(op) => op,
                    Err(crossbeam::channel::TryRecvError::Empty) => {
                        self.maybe_reseal_idle();
                        match ops.recv() {
                            Ok(op) => op,
                            Err(_) => return, // every handle gone
                        }
                    }
                    Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                }
            } else {
                let wait = self.deadline.saturating_duration_since(Instant::now());
                match ops.recv_timeout(wait) {
                    Ok(op) => op,
                    Err(RecvTimeoutError::Timeout) => {
                        self.flush();
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.flush();
                        return;
                    }
                }
            };
            match op {
                Op::Conn(id, tx) => {
                    self.conns.insert(id, tx);
                }
                Op::Request(id, Request::Query(q)) => {
                    if self.pending.is_empty() {
                        self.deadline = Instant::now() + self.config.max_delay;
                    }
                    self.pending.push((id, q));
                    if self.pending.len() >= self.config.max_batch {
                        self.flush();
                    }
                }
                Op::Request(id, Request::Insert(s)) => {
                    // writes are barriers: earlier queries see the
                    // pre-write index, later ones the post-write index
                    self.flush();
                    self.stats.write().writes += 1;
                    let reply = match self.session.try_insert(s) {
                        Ok(()) => Reply {
                            status: Status::Ok,
                            count: 1,
                        },
                        Err(hint_core::WriteError::ReservedId) => Reply {
                            status: Status::ReservedId,
                            count: 0,
                        },
                        Err(hint_core::WriteError::OutOfDomain { .. }) => Reply {
                            status: Status::OutOfDomain,
                            count: 0,
                        },
                    };
                    self.send_end(id, reply);
                }
                Op::Request(id, Request::Delete(s)) => {
                    self.flush();
                    self.stats.write().writes += 1;
                    let found = self.session.delete(&s);
                    self.send_end(
                        id,
                        Reply {
                            status: Status::Ok,
                            count: u64::from(found),
                        },
                    );
                }
                Op::Request(id, Request::Seal) => {
                    self.flush();
                    self.stats.write().writes += 1;
                    let resealed = self.session.seal_if_dirty();
                    self.note_retunes();
                    self.send_end(
                        id,
                        Reply {
                            status: Status::Ok,
                            count: u64::from(resealed),
                        },
                    );
                }
                Op::Request(id, Request::Snapshot(path)) => {
                    // snapshots are write barriers too: the bytes must
                    // reflect every request answered before this one
                    self.flush();
                    self.stats.write().writes += 1;
                    match path {
                        None => match self.session.snapshot_bytes() {
                            Ok(bytes) => self.stream_snapshot(id, &bytes),
                            Err(_) => self.send_end(
                                id,
                                Reply {
                                    status: Status::SnapshotFailed,
                                    count: 0,
                                },
                            ),
                        },
                        Some(p) => {
                            let reply = match self.session.snapshot_save(Path::new(&p)) {
                                Ok(bytes) => Reply {
                                    status: Status::Ok,
                                    count: bytes,
                                },
                                Err(_) => Reply {
                                    status: Status::SnapshotFailed,
                                    count: 0,
                                },
                            };
                            self.send_end(id, reply);
                        }
                    }
                }
                Op::Request(id, Request::Restore(p)) => {
                    self.flush();
                    self.stats.write().writes += 1;
                    let reply = match self.session.restore_from(Path::new(&p)) {
                        Ok(live) => Reply {
                            status: Status::Ok,
                            count: live,
                        },
                        // the served index is unchanged on failure
                        Err(_) => Reply {
                            status: Status::SnapshotFailed,
                            count: 0,
                        },
                    };
                    self.send_end(id, reply);
                }
                Op::Invalid(id, status) => {
                    // flush first so the error trailer lands in this
                    // connection's FIFO position
                    self.flush();
                    self.send_end(id, Reply { status, count: 0 });
                }
                Op::Fatal(id, status) => {
                    self.flush();
                    self.send_end(id, Reply { status, count: 0 });
                    self.conns.remove(&id); // writer drains, then exits
                }
                Op::Disconnect(id) => {
                    // the peer is gone but its queued queries may share
                    // a batch with live connections; execute, then drop
                    self.flush();
                    self.conns.remove(&id);
                }
                Op::Stop => {
                    self.flush();
                    return;
                }
            }
        }
    }

    /// Executes the pending batch through one merged walk and
    /// demultiplexes each query's encoded results to its connection.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let queries: Vec<RangeQuery> = self.pending.iter().map(|&(_, q)| q).collect();
        let mut sinks: Vec<WireSink> = queries.iter().map(|_| WireSink::new()).collect();
        self.session.query_batch_merge(&queries, &mut sinks);
        {
            let pool = self.session.pool().stats();
            let mut stats = self.stats.write();
            stats.batches += 1;
            stats.queries += queries.len() as u64;
            stats.largest_batch = stats.largest_batch.max(queries.len());
            // mirror the pool's epoch-read counters (same pattern as
            // `note_retunes`: the pool owns the running total)
            stats.replica_reads = pool.epoch_reads + pool.replica_dispatched;
        }
        for ((conn, _), sink) in self.pending.drain(..).zip(sinks) {
            let mut out = BytesMut::new();
            sink.into_frames(&mut out);
            if let Some(tx) = self.conns.get(&conn) {
                let _ = tx.send(Vec::from(out));
            }
        }
    }

    /// The between-batches hook: reseal (and re-tune) dirty shards when
    /// the request stream is idle and the session's policy allows it.
    fn maybe_reseal_idle(&mut self) {
        if self.session.reseal_idle() {
            self.stats.write().idle_reseals += 1;
            self.note_retunes();
        }
    }

    /// Mirrors the session's completed re-tune count into the served
    /// stats snapshot.
    fn note_retunes(&mut self) {
        let total = self.session.retunes().len() as u64;
        self.stats.write().retunes = total;
    }

    /// Streams snapshot bytes to one connection as [`SNAP_CHUNK`]-sized
    /// chunk frames followed by an `Ok` trailer whose count is the
    /// total byte length.
    fn stream_snapshot(&self, conn: ConnId, bytes: &[u8]) {
        let mut out = BytesMut::new();
        for chunk in bytes.chunks(SNAP_CHUNK) {
            encode_snapshot_chunk(&mut out, chunk);
        }
        encode_end(
            &mut out,
            Reply {
                status: Status::Ok,
                count: bytes.len() as u64,
            },
        );
        if let Some(tx) = self.conns.get(&conn) {
            let _ = tx.send(Vec::from(out));
        }
    }

    fn send_end(&self, conn: ConnId, reply: Reply) {
        let mut out = BytesMut::new();
        encode_end(&mut out, reply);
        if let Some(tx) = self.conns.get(&conn) {
            let _ = tx.send(Vec::from(out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::transport::{duplex, DuplexTransport};
    use crate::ClientError;
    use bytes::Buf;
    use hint_core::{Domain, Interval, ShardedIndex, SubsConfig};

    fn session() -> Session<HintMSubs> {
        let data: Vec<Interval> = (0..500)
            .map(|i| {
                let st = (i * 37) % 4_000;
                Interval::new(i, st, (st + i % 50).min(4_095))
            })
            .collect();
        let sharded = ShardedIndex::build_with_domain(&data, 0, 4_095, 4, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 8), SubsConfig::full())
        });
        Session::new(sharded)
    }

    fn failing_read_spawn(name: String, f: Box<dyn FnOnce() + Send + 'static>) -> io::Result<()> {
        if name.starts_with("serve-read") {
            return Err(io::Error::other("induced spawn failure"));
        }
        os_spawn(name, f)
    }

    /// An [`AcceptSource`] that replays a script of accept outcomes,
    /// then reports a fatal error so the acceptor thread exits and
    /// shutdown can join it.
    struct ScriptedSource {
        script: std::sync::Mutex<std::collections::VecDeque<io::Result<DuplexTransport>>>,
    }

    impl ScriptedSource {
        fn new(script: Vec<io::Result<DuplexTransport>>) -> Self {
            Self {
                script: std::sync::Mutex::new(script.into_iter().collect()),
            }
        }
    }

    impl AcceptSource for ScriptedSource {
        type Conn = DuplexTransport;
        fn accept(&self) -> io::Result<DuplexTransport> {
            self.script
                .lock()
                .unwrap()
                .pop_front()
                .unwrap_or_else(|| Err(io::Error::new(io::ErrorKind::Unsupported, "script over")))
        }
    }

    #[test]
    fn accept_loop_survives_transient_errors_and_keeps_admitting() {
        let mut server = Server::start(session(), ServeConfig::default()).unwrap();
        let (client_end, server_end) = duplex();
        // EMFILE-shaped failures reach userland as an uncategorized
        // kind; the loop must classify them transient, back off, and
        // still admit the connection scripted after them
        let emfile = || io::Error::other("Too many open files (os error 24)");
        server
            .listen_source(ScriptedSource::new(vec![
                Err(emfile()),
                Err(io::Error::from(io::ErrorKind::ConnectionAborted)),
                Ok(server_end),
            ]))
            .unwrap();
        let mut client = Client::new(client_end).unwrap();
        assert!(!client.query(RangeQuery::new(0, 4_095)).unwrap().is_empty());
        let stats = server.stats();
        assert!(
            stats.accept_errors >= 2,
            "transient accept errors must be counted, got {stats:?}"
        );
        server.shutdown();
    }

    #[test]
    fn fatal_accept_errors_end_the_loop_without_retry_spin() {
        let mut server = Server::start(session(), ServeConfig::default()).unwrap();
        server
            .listen_source(ScriptedSource::new(vec![Err(io::Error::from(
                io::ErrorKind::PermissionDenied,
            ))]))
            .unwrap();
        // a fatal error exits immediately: no accept_errors counted,
        // and shutdown joins the acceptor without a wake-up address
        server.shutdown();
    }

    #[test]
    fn batch_stats_report_the_replica_configuration() {
        // `Session::new` honors HINT_READ_REPLICAS (the CI sweep sets
        // it), so assert against what the session actually configured
        let sess = session();
        let replicas = sess.read_replicas() as u64;
        let server = Server::start(sess, ServeConfig::default()).unwrap();
        let (c, s) = duplex();
        server.attach(s);
        let mut client = Client::new(c).unwrap();
        client.query(RangeQuery::new(0, 100)).unwrap();
        let stats = server.stats();
        assert_eq!(stats.read_replicas, replicas);
        if replicas == 1 {
            assert_eq!(stats.replica_reads, 0, "unreplicated reads use the pool");
        } else {
            assert!(stats.replica_reads > 0, "replicated reads skip the pool");
        }
        server.shutdown();
    }

    #[test]
    fn reader_spawn_failure_rejects_only_that_connection() {
        let server = Server::start(session(), ServeConfig::default()).unwrap();
        // a connection whose reader thread cannot start is rejected
        // with a fatal trailer, not a panic in the acceptor path
        let (client_end, server_end) = duplex();
        let id = server.next_conn.fetch_add(1, Ordering::Relaxed);
        spawn_connection_with(&server.ops, id, server_end, failing_read_spawn);
        let (reader, _writer) = client_end.split().unwrap();
        let mut frames = FrameReader::new(reader);
        let f = frames.read_frame().unwrap().expect("a rejection frame");
        assert_eq!(f.kind, crate::proto::Kind::End);
        let mut p = f.payload;
        assert_eq!(Status::from_u8(p.get_u8()), Status::Overloaded);
        assert_eq!(p.get_u64_le(), 0);
        assert!(frames.read_frame().unwrap().is_none(), "then EOF");
        // the server still serves fresh connections
        let (c2, s2) = duplex();
        server.attach(s2);
        let mut client = Client::new(c2).unwrap();
        assert!(!client.query(RangeQuery::new(0, 4_095)).unwrap().is_empty());
        server.shutdown();
    }

    #[test]
    fn snapshot_and_restore_verbs_roundtrip_over_the_wire() {
        let path =
            std::env::temp_dir().join(format!("hint-serve-snap-{}.snap", std::process::id()));
        let server = Server::start(session(), ServeConfig::default()).unwrap();
        let (c, s) = duplex();
        server.attach(s);
        let mut client = Client::new(c).unwrap();
        let mut before = client.query(RangeQuery::new(0, 4_095)).unwrap();
        before.sort_unstable();
        // save, mutate, restore: the mutation must be rolled back
        let saved = client.snapshot_save(path.to_str().unwrap()).unwrap();
        assert!(saved > 0);
        client.insert(Interval::new(90_000, 1, 2)).unwrap();
        client.seal().unwrap();
        assert!(client
            .query(RangeQuery::new(1, 2))
            .unwrap()
            .contains(&90_000));
        let live = client.restore(path.to_str().unwrap()).unwrap();
        assert_eq!(live, before.len() as u64);
        let mut after = client.query(RangeQuery::new(0, 4_095)).unwrap();
        after.sort_unstable();
        assert_eq!(after, before);
        // restoring from a bad path fails recoverably: error trailer,
        // connection kept, index unchanged
        let err = client.restore("/nonexistent/dir/x.snap").unwrap_err();
        assert!(matches!(err, ClientError::Server(Status::SnapshotFailed)));
        assert_eq!(
            client.query(RangeQuery::new(0, 4_095)).unwrap().len(),
            before.len()
        );
        // the streamed snapshot boots an identical twin
        let bytes = client.snapshot_fetch().unwrap();
        let twin = Session::restore_bytes(&bytes).unwrap();
        let mut got: Vec<u64> = Vec::new();
        twin.query_sink(RangeQuery::new(0, 4_095), &mut got);
        got.sort_unstable();
        assert_eq!(got, before);
        server.shutdown();
        std::fs::remove_file(&path).ok();
    }
}
