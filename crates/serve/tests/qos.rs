//! QoS-lane, admission-control, and adaptive-window tests for the
//! serving subsystem.
//!
//! The adaptive scheduler may reorder *across* connections (lanes,
//! round-robin fairness) and refuse work under overload — but it must
//! never change what any single connection observes: replies stay in
//! request order, results stay bit-identical to a direct `query_sink`
//! at the same point in the write sequence, and shedding is a
//! recoverable per-request answer, not a connection or server failure.

use hint_core::env::WindowMode;
use hint_core::{
    Domain, HintMSubs, Interval, IntervalIndex, QuerySink, RangeQuery, ScanOracle, Session,
    ShardedIndex, SubsConfig,
};
use serve::{duplex, Client, DuplexTransport, Request, ServeConfig, Server, Status};
use std::cell::RefCell;
use std::time::Duration;
use test_support::{expect_same_results, fuzz};

const DOM: u64 = 8_192;

fn build_session(data: &[Interval], k: usize) -> Session<HintMSubs> {
    let sharded = ShardedIndex::build_with_domain(data, 0, DOM - 1, k, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 9), SubsConfig::update_friendly())
    });
    Session::new(sharded)
}

fn start_server(data: &[Interval], k: usize, config: ServeConfig) -> Server {
    Server::start(build_session(data, k), config).expect("start server")
}

fn connect(server: &Server) -> Client<DuplexTransport> {
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    Client::new(client_end).unwrap()
}

/// `IntervalIndex` facade over a served connection (see
/// `tests/roundtrip.rs`), here driving the adaptive scheduler.
struct RemoteIndex {
    client: RefCell<Client<DuplexTransport>>,
    live: usize,
}

impl IntervalIndex for RemoteIndex {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        self.client
            .borrow_mut()
            .query_sink(q, sink)
            .expect("served query failed");
    }

    fn size_bytes(&self) -> usize {
        0 // not represented on the wire
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// The adaptive controller plus lanes must be invisible to results: a
/// served round-trip returns bit-identical answers to direct
/// `query_sink` in every access mode, across window bounds including
/// a cramped `[min, max]` that forces constant controller movement.
#[test]
fn adaptive_scheduler_matches_direct_query_sink() {
    let w = fuzz::workload(0xa05_0001, DOM, 600, 48, 0);
    let oracle = ScanOracle::new(&w.data);
    let settings = [
        ServeConfig::default(),
        ServeConfig {
            min_window: 2,
            max_batch: 4,
            max_delay: Duration::from_micros(100),
            ..ServeConfig::default()
        },
        ServeConfig {
            lanes: false,
            ..ServeConfig::default()
        },
    ];
    for config in settings {
        assert_eq!(config.mode, WindowMode::Adaptive);
        let server = start_server(&w.data, 4, config);
        let remote = RemoteIndex {
            client: RefCell::new(connect(&server)),
            live: w.data.len(),
        };
        expect_same_results("served-adaptive", &remote, &oracle, &w.queries);
        drop(remote);
        server.shutdown();
    }
}

/// One connection pipelines a mixed-priority script — plain queries,
/// priority-flagged queries, bounded verbs, and writes — and every
/// reply must arrive in request order, each query answering against
/// exactly the index state its position in the stream implies. The
/// high lane may only ever reorder *across* connections.
#[test]
fn mixed_priority_pipeline_preserves_per_connection_fifo() {
    let w = fuzz::workload(0xa05_0002, DOM, 500, 0, 0);
    let server = start_server(&w.data, 4, ServeConfig::default());
    let mut client = connect(&server);
    let mut oracle = ScanOracle::new(&w.data);
    // the oracle mirror for top-k: the live intervals with endpoints
    let mut live: Vec<Interval> = w.data.clone();
    let mut rng = fuzz::Rng::new(0xa05_0003);

    // the script: each step sends one pipelined request and records
    // what its reply must say, given every write sent before it
    enum Expect {
        Ids(Vec<u64>),
        Count(u64),
    }
    let mut expected: Vec<Expect> = Vec::new();
    let mut next_id = 900_000u64;
    for step in 0..120 {
        let st = rng.below(DOM - 64);
        let q = RangeQuery::new(st, st + 1 + rng.below(512));
        match step % 6 {
            // plain enumeration (low lane)
            0 | 3 => {
                client.send(&Request::Query(q)).unwrap();
                expected.push(Expect::Ids(oracle.query_sorted(q)));
            }
            // priority-flagged enumeration (high lane)
            1 => {
                client.send_flagged(None, true, &Request::Query(q)).unwrap();
                expected.push(Expect::Ids(oracle.query_sorted(q)));
            }
            // a write barrier mid-pipeline
            2 => {
                let s = Interval::new(next_id, st, st + 40);
                next_id += 1;
                client.send(&Request::Insert(s)).unwrap();
                oracle.insert(s);
                live.push(s);
                expected.push(Expect::Count(1));
            }
            // bounded verb: rides the high lane unflagged
            4 => {
                let k = 1 + rng.below(8) as u32;
                client.send(&Request::TopK { k, q }).unwrap();
                let mut rows: Vec<Interval> = live
                    .iter()
                    .filter(|s| s.st <= q.end && s.end >= q.st)
                    .copied()
                    .collect();
                rows.sort_unstable_by(|a, b| {
                    (b.end - b.st).cmp(&(a.end - a.st)).then(a.id.cmp(&b.id))
                });
                rows.truncate(k as usize);
                expected.push(Expect::Ids(rows.into_iter().map(|s| s.id).collect()));
            }
            // seal mid-pipeline: a no-op to results, a barrier to order
            _ => {
                client.send(&Request::Seal).unwrap();
                expected.push(Expect::Count(u64::MAX)); // either 0 or 1
            }
        }
    }
    for (i, want) in expected.iter().enumerate() {
        let mut got = Vec::new();
        let reply = client.recv_reply(|ids| got.extend_from_slice(ids)).unwrap();
        assert_eq!(reply.status, Status::Ok, "step {i}");
        match want {
            Expect::Ids(ids) => {
                // top-k replies are order-significant; plain query
                // results are compared as sets like the oracle does
                let mut sorted_got = got.clone();
                sorted_got.sort_unstable();
                let mut sorted_want = ids.clone();
                sorted_want.sort_unstable();
                assert_eq!(sorted_got, sorted_want, "step {i}: wrong ids");
            }
            Expect::Count(u64::MAX) => assert!(reply.count <= 1, "step {i}"),
            Expect::Count(n) => assert_eq!(reply.count, *n, "step {i}"),
        }
    }
    drop(client);
    server.shutdown();
}

/// The overload scenario from the issue: a hostile connection floods
/// enumerations far past its admission budget while a well-behaved
/// connection asks one bounded query. The flood is shed with
/// *recoverable* `Overloaded` trailers in FIFO position (never a
/// dropped connection, never a panic), the bounded query completes
/// without shedding — and both connections work fine afterwards.
#[test]
fn flooding_connection_is_shed_while_bounded_queries_complete() {
    let w = fuzz::workload(0xa05_0004, DOM, 400, 0, 0);
    // a window the flood cannot fill and a deadline far enough out that
    // shedding is deterministic: admission is the only policy in play
    let config = ServeConfig {
        mode: WindowMode::Fixed,
        max_batch: 1_024,
        max_delay: Duration::from_millis(40),
        min_window: 1,
        conn_pending: 4,
        max_pending: 64,
        lanes: true,
    };
    const FLOOD: usize = 200;
    let server = start_server(&w.data, 4, config);
    let mut bounded = connect(&server);
    let q = RangeQuery::new(100, 2_000);

    // the expected bounded answer, fetched before any overload exists
    let want_top = bounded.top_k(5, q).expect("unloaded top-k");

    let mut flood = connect(&server);
    for i in 0..FLOOD {
        let st = (i as u64 * 37) % (DOM - 600);
        flood
            .send(&Request::Query(RangeQuery::new(st, st + 512)))
            .unwrap();
    }
    // the bounded connection's queue is all-high: lanes flush it
    // immediately, so this completes while the flood still queues
    let got_top = bounded.top_k(5, q).expect("top-k under flood");
    assert_eq!(got_top, want_top, "bounded reply must not degrade");

    // the flood's replies arrive in request order: the admitted prefix
    // answers Ok, everything past the budget is Overloaded
    let mut ok = 0usize;
    let mut shed = 0usize;
    for i in 0..FLOOD {
        let reply = flood.recv_reply(|_| {}).expect("flood replies decode");
        match reply.status {
            Status::Ok => {
                assert_eq!(shed, 0, "reply {i}: Ok after Overloaded breaks FIFO");
                ok += 1;
            }
            Status::Overloaded => shed += 1,
            s => panic!("reply {i}: unexpected status {s:?}"),
        }
    }
    assert_eq!(ok, config.conn_pending, "the admitted prefix is the budget");
    assert_eq!(shed, FLOOD - config.conn_pending);
    let stats = server.stats();
    assert_eq!(stats.shed, shed as u64, "stats count every shed request");
    assert!(stats.lane_high >= 1, "the bounded query rode the high lane");

    // recoverable: both connections serve normally after the storm
    let again = bounded.top_k(5, q).expect("bounded conn after flood");
    assert_eq!(again, want_top);
    let ids = flood.query_priority(None, q).expect("flood conn recovers");
    let mut direct = ScanOracle::new(&w.data).query_sorted(q);
    direct.sort_unstable();
    let mut got = ids;
    got.sort_unstable();
    assert_eq!(got, direct, "shed connection answers correctly again");

    drop(bounded);
    drop(flood);
    server.shutdown();
}

/// The global admission budget backstops many connections flooding at
/// once: total admitted work never exceeds `max_pending`, every
/// over-budget request is shed recoverably, and the server survives.
#[test]
fn global_budget_sheds_across_many_connections() {
    let w = fuzz::workload(0xa05_0005, DOM, 300, 0, 0);
    let config = ServeConfig {
        mode: WindowMode::Fixed,
        max_batch: 10_000,
        max_delay: Duration::from_millis(40),
        min_window: 1,
        conn_pending: 1_000, // per-conn budget out of the way
        max_pending: 16,
        lanes: true,
    };
    let server = start_server(&w.data, 2, config);
    let conns = 8usize;
    let per_conn = 10usize;
    let mut clients: Vec<_> = (0..conns).map(|_| connect(&server)).collect();
    for (c, client) in clients.iter_mut().enumerate() {
        for i in 0..per_conn {
            let st = ((c * per_conn + i) as u64 * 53) % (DOM - 300);
            client
                .send(&Request::Query(RangeQuery::new(st, st + 256)))
                .unwrap();
        }
    }
    let mut ok = 0usize;
    let mut shed = 0usize;
    for client in clients.iter_mut() {
        for _ in 0..per_conn {
            match client.recv_reply(|_| {}).expect("reply decodes").status {
                Status::Ok => ok += 1,
                Status::Overloaded => shed += 1,
                s => panic!("unexpected status {s:?}"),
            }
        }
    }
    assert_eq!(ok + shed, conns * per_conn);
    assert_eq!(ok, config.max_pending, "admitted exactly the global budget");
    assert_eq!(server.stats().shed, shed as u64);
    // every connection still works
    for client in clients.iter_mut() {
        let ids = client
            .query_priority(None, RangeQuery::new(0, DOM - 1))
            .unwrap();
        assert_eq!(ids.len(), w.data.len());
    }
    drop(clients);
    server.shutdown();
}
