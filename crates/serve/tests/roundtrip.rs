//! End-to-end differential tests for the serving subsystem.
//!
//! The wire path (encode → schedule → batch → demux → decode) must be
//! invisible: a client sees exactly what a direct `query_sink` against
//! the same index state produces, in every access mode, under
//! concurrency, and malformed wire input must never panic the server.

use hint_core::{
    Domain, HintMSubs, Interval, IntervalId, IntervalIndex, QuerySink, RangeQuery, ScanOracle,
    Session, ShardedIndex, SubsConfig,
};
use serve::{duplex, Client, ClientError, DuplexTransport, ServeConfig, Server, Status};
use std::cell::RefCell;
use std::io::Write as _;
use std::time::Duration;
use test_support::{expect_same_results, fuzz};

const DOM: u64 = 8_192;

fn build_session(data: &[Interval], k: usize) -> Session<HintMSubs> {
    let sharded = ShardedIndex::build_with_domain(data, 0, DOM - 1, k, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 9), SubsConfig::update_friendly())
    });
    Session::new(sharded)
}

fn start_server(data: &[Interval], k: usize, config: ServeConfig) -> Server {
    Server::start(build_session(data, k), config).expect("start server")
}

fn connect(server: &Server) -> Client<DuplexTransport> {
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    Client::new(client_end).unwrap()
}

/// `IntervalIndex` facade over a served connection, so the shared
/// differential harness (`test_support::assert_same_results`) can drive
/// the whole wire path exactly like an in-process index.
struct RemoteIndex {
    client: RefCell<Client<DuplexTransport>>,
    live: usize,
}

impl IntervalIndex for RemoteIndex {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        self.client
            .borrow_mut()
            .query_sink(q, sink)
            .expect("served query failed");
    }

    fn size_bytes(&self) -> usize {
        0 // not represented on the wire
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// The acceptance-criteria core: a server round-trip returns
/// bit-identical results to direct `query_sink`, verified through the
/// shared differential harness in every access mode (enumerate / count
/// / exists), for several batch-window settings.
#[test]
fn roundtrip_matches_direct_query_sink() {
    let w = fuzz::workload(0x5e4e_0001, DOM, 600, 48, 0);
    let oracle = ScanOracle::new(&w.data);
    for (max_batch, delay_us) in [(1, 0), (16, 200), (256, 1_000)] {
        let server = start_server(
            &w.data,
            4,
            ServeConfig::fixed(max_batch, Duration::from_micros(delay_us)),
        );
        let remote = RemoteIndex {
            client: RefCell::new(connect(&server)),
            live: w.data.len(),
        };
        expect_same_results("served", &remote, &oracle, &w.queries);
        drop(remote);
        server.shutdown();
    }
}

/// Writes act as barriers: a single connection pipelining
/// query/insert/query/delete/query/seal/query sees each query answer
/// against exactly the index state its position in the stream implies.
#[test]
fn write_barriers_order_replies_per_connection() {
    let w = fuzz::workload(0x5e4e_0002, DOM, 400, 0, 0);
    let server = start_server(&w.data, 3, ServeConfig::default());
    let mut client = connect(&server);
    let mut oracle = ScanOracle::new(&w.data);
    let direct = |oracle: &ScanOracle, q: RangeQuery| oracle.query_sorted(q);

    let q = RangeQuery::new(100, 2_000);
    let fresh = Interval::new(990_000, 150, 1_800);

    let mut got = client.query(q).unwrap();
    got.sort_unstable();
    assert_eq!(got, direct(&oracle, q), "pre-insert");

    client.insert(fresh).unwrap();
    oracle.insert(fresh);
    let mut got = client.query(q).unwrap();
    got.sort_unstable();
    assert_eq!(got, direct(&oracle, q), "post-insert");
    assert!(got.contains(&fresh.id));

    assert!(client.delete(fresh).unwrap());
    assert!(oracle.delete(fresh.id));
    assert!(
        !client.delete(fresh).unwrap(),
        "double delete reports absent"
    );
    let mut got = client.query(q).unwrap();
    got.sort_unstable();
    assert_eq!(got, direct(&oracle, q), "post-delete");

    // reseal after the delete tombstone, then query again
    assert!(client.seal().unwrap());
    assert!(!client.seal().unwrap(), "clean index reseal is a no-op");
    let mut got = client.query(q).unwrap();
    got.sort_unstable();
    assert_eq!(got, direct(&oracle, q), "post-seal");

    drop(client);
    server.shutdown();
}

/// N concurrent connections issue interleaved queries and writes (ids
/// disjoint per connection, so the final state is order-independent);
/// after a seal barrier every connection's queries must match direct
/// `query_sink` over an identically-updated twin.
#[test]
fn concurrent_connections_interleaving_queries_and_writes() {
    let w = fuzz::workload(0x5e4e_0003, DOM, 800, 0, 0);
    let clients = 4usize;
    let server = start_server(
        &w.data,
        4,
        ServeConfig::fixed(32, Duration::from_micros(300)),
    );
    // the twin: every connection's writes applied (order across
    // connections is irrelevant — ids and endpoints are disjoint)
    let mut twin = ScanOracle::new(&w.data);
    let mut writes_per_client: Vec<Vec<Interval>> = Vec::new();
    for c in 0..clients {
        let mut ws = Vec::new();
        for i in 0..24u64 {
            let st = (c as u64 * 1_900 + i * 67) % (DOM - 200);
            let s = Interval::new(1_000_000 + c as u64 * 1_000 + i, st, st + 150);
            twin.insert(s);
            ws.push(s);
        }
        writes_per_client.push(ws);
    }

    std::thread::scope(|scope| {
        let handles: Vec<_> = writes_per_client
            .iter()
            .enumerate()
            .map(|(c, writes)| {
                let mut client = connect(&server);
                scope.spawn(move || {
                    // interleave writes with queries (answers during this
                    // phase are timing-dependent; just check integrity)
                    for (i, s) in writes.iter().enumerate() {
                        client.insert(*s).unwrap();
                        if i % 3 == 0 {
                            let q = RangeQuery::new(s.st, s.end);
                            let ids = client.query(q).unwrap();
                            assert!(ids.contains(&s.id), "conn {c}: own acked insert invisible");
                        }
                    }
                    client.seal().ok();
                    client
                })
            })
            .collect();
        let mut clients: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // all writes acked: every connection now sees the same final
        // state, which must equal the twin's
        for (c, client) in clients.iter_mut().enumerate() {
            for i in 0..24u64 {
                let st = (i * 311) % (DOM - 900);
                let q = RangeQuery::new(st, st + 777);
                let mut got = client.query(q).unwrap();
                got.sort_unstable();
                assert_eq!(got, twin.query_sorted(q), "conn {c} on {q:?}");
            }
        }
    });
    server.shutdown();
}

/// Raw duplex halves for writing arbitrary bytes at the server.
fn raw_connect(server: &Server) -> (serve::transport::PipeReader, serve::transport::PipeWriter) {
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    use serve::Transport;
    client_end.split().unwrap()
}

/// Reads frames back until EOF, returning the End statuses seen.
fn drain_statuses(reader: serve::transport::PipeReader) -> Vec<Status> {
    let mut rd = serve::FrameReader::new(reader);
    let mut statuses = Vec::new();
    while let Ok(Some(frame)) = rd.read_frame() {
        if frame.kind == serve::Kind::End {
            use bytes::Buf;
            let mut p = frame.payload;
            statuses.push(Status::from_u8(p.get_u8()));
        }
    }
    statuses
}

/// Targeted malformed frames: each failure mode earns its error trailer
/// — fatal ones close the connection, recoverable ones keep it usable —
/// and the server survives to serve a clean connection afterwards.
#[test]
fn malformed_frames_error_per_connection_without_killing_the_server() {
    let w = fuzz::workload(0x5e4e_0004, DOM, 300, 4, 0);
    let server = start_server(&w.data, 2, ServeConfig::default());

    // 1. bad magic: fatal
    let (r, mut wtr) = raw_connect(&server);
    wtr.write_all(&[0xFFu8; 64]).unwrap();
    drop(wtr);
    assert_eq!(drain_statuses(r), vec![Status::BadMagic]);

    // 2. truncated mid-frame: fatal
    let (r, mut wtr) = raw_connect(&server);
    wtr.write_all(&[0x69, 1, 0x01]).unwrap(); // header cut short
    drop(wtr);
    assert_eq!(drain_statuses(r), vec![Status::Truncated]);

    // 3. oversized length: fatal
    let (r, mut wtr) = raw_connect(&server);
    let mut junk = vec![0x69, 1, 0x01, 0];
    junk.extend_from_slice(&u32::MAX.to_le_bytes());
    wtr.write_all(&junk).unwrap();
    drop(wtr);
    assert_eq!(drain_statuses(r), vec![Status::Oversized]);

    // 4. unknown kind and bad payload length: recoverable — the same
    //    connection then serves a valid query
    let mut client = connect(&server);
    {
        // reach into the pipe: send an unknown-kind frame by hand
        let mut frame = vec![0x69u8, 1, 0x6E, 0, 2, 0, 0, 0, 9, 9];
        // and a Seal with a bogus payload length
        frame.extend_from_slice(&[0x69, 1, 0x04, 0, 1, 0, 0, 0, 7]);
        // then a well-formed query
        let mut ok = bytes::BytesMut::new();
        serve::proto::encode_request(&mut ok, &serve::Request::Query(RangeQuery::new(0, DOM - 1)));
        frame.extend_from_slice(ok.as_slice());
        // write the three frames as raw bytes through a fresh pipe
        let (client_end, server_end) = duplex();
        server.attach(server_end);
        use serve::Transport;
        let (r, mut wtr) = client_end.split().unwrap();
        wtr.write_all(&frame).unwrap();
        let mut rd = serve::FrameReader::new(r);
        // reply 1: BadKind trailer; reply 2: BadLength trailer
        for want in [Status::BadKind, Status::BadLength] {
            let f = rd.read_frame().unwrap().unwrap();
            assert_eq!(f.kind, serve::Kind::End);
            use bytes::Buf;
            assert_eq!(Status::from_u8(f.payload.clone().get_u8()), want);
        }
        // reply 3: real results
        let mut results = 0usize;
        loop {
            let f = rd.read_frame().unwrap().unwrap();
            match f.kind {
                serve::Kind::Results => results += f.payload.len() / 8,
                serve::Kind::End => break,
                k => panic!("unexpected {k:?}"),
            }
        }
        assert_eq!(results, w.data.len(), "full-domain query after junk");
        drop(wtr);
    }

    // 5. semantic errors: inverted query range, out-of-domain insert —
    //    error replies, connection stays up
    let mut raw = bytes::BytesMut::new();
    raw.clear();
    {
        use bytes::BufMut;
        raw.put_u8(0x69);
        raw.put_u8(1);
        raw.put_u8(0x01);
        raw.put_u8(0);
        raw.put_u32_le(16);
        raw.put_u64_le(500);
        raw.put_u64_le(3); // st > end
    }
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    use serve::Transport;
    let (r, mut wtr) = client_end.split().unwrap();
    wtr.write_all(raw.as_slice()).unwrap();
    let mut rd = serve::FrameReader::new(r);
    let f = rd.read_frame().unwrap().unwrap();
    use bytes::Buf;
    assert_eq!(
        Status::from_u8(f.payload.clone().get_u8()),
        Status::InvalidRange
    );
    drop(wtr);

    match client.insert(Interval::new(5, 0, DOM * 10)) {
        Err(ClientError::Server(Status::OutOfDomain)) => {}
        other => panic!("expected OutOfDomain, got {other:?}"),
    }
    // the reserved tombstone id must be refused, not acked-and-lost
    match client.insert(Interval::new(u64::MAX, 5, 9)) {
        Err(ClientError::Server(Status::ReservedId)) => {}
        other => panic!("expected ReservedId, got {other:?}"),
    }
    // ... and the connection still answers queries
    let ids = client.query(RangeQuery::new(0, DOM - 1)).unwrap();
    assert_eq!(ids.len(), w.data.len());

    drop(client);
    server.shutdown();
}

/// Seeded garbage fuzz: arbitrary byte streams must never panic the
/// server; every connection either errors out or EOFs, and the server
/// still serves a clean connection afterwards. Any seed that ever
/// breaks this graduates into `tests/regressions.rs` at the workspace
/// root.
#[test]
fn garbage_streams_never_panic_the_server() {
    let w = fuzz::workload(0x5e4e_0005, DOM, 200, 0, 0);
    let server = start_server(&w.data, 3, ServeConfig::default());
    for seed in 0..32u64 {
        let mut rng = fuzz::Rng::new(0xbad_c0de ^ seed);
        let len = 1 + (rng.below(200) as usize);
        let mut junk = Vec::with_capacity(len);
        for _ in 0..len {
            // bias towards the magic byte so some frames get past the
            // header checks into payload validation
            let b = if rng.below(4) == 0 {
                0x69
            } else {
                (rng.next_u64() & 0xFF) as u8
            };
            junk.push(b);
        }
        let (r, mut wtr) = raw_connect(&server);
        wtr.write_all(&junk).unwrap();
        drop(wtr);
        let _ = drain_statuses(r); // any statuses are fine; no panic, no hang
    }
    // the scheduler survived 32 garbage connections
    let mut client = connect(&server);
    let ids = client.query(RangeQuery::new(0, DOM - 1)).unwrap();
    assert_eq!(ids.len(), w.data.len());
    drop(client);
    server.shutdown();
}

/// Catalog-era failure modes are all recoverable: bad relation bytes,
/// unknown index ids, unknown flag bits, truncated catalog verbs, and
/// semantic catalog misuse each earn an error trailer — and the very
/// same connection keeps serving afterwards.
#[test]
fn unknown_verbs_and_indexes_error_recoverably() {
    let w = fuzz::workload(0x5e4e_0007, DOM, 300, 4, 0);
    let server = start_server(&w.data, 2, ServeConfig::default());

    // raw frames: every case on ONE connection, then a real query
    let mut raw = bytes::BytesMut::new();
    {
        use bytes::BufMut;
        // 1. Allen with a relation byte past the 13 relations → BadVerb
        raw.put_u8(0x69);
        raw.put_u8(1);
        raw.put_u8(0x0B); // Allen
        raw.put_u8(0);
        raw.put_u32_le(17);
        raw.put_u8(13); // first invalid relation discriminant
        raw.put_u64_le(10);
        raw.put_u64_le(20);
        // 2. query addressed at a never-created index id → UnknownIndex
        raw.put_u8(0x69);
        raw.put_u8(1);
        raw.put_u8(0x01); // Query
        raw.put_u8(serve::FLAG_INDEXED);
        raw.put_u32_le(20);
        raw.put_u32_le(999);
        raw.put_u64_le(0);
        raw.put_u64_le(50);
        // 3. unknown flag bit → BadVerb (frame is well-formed, so the
        //    connection survives)
        raw.put_u8(0x69);
        raw.put_u8(1);
        raw.put_u8(0x01);
        raw.put_u8(0x80);
        raw.put_u32_le(16);
        raw.put_u64_le(0);
        raw.put_u64_le(50);
        // 4. CreateIndex whose name length overruns the payload →
        //    BadLength, still recoverable
        raw.put_u8(0x69);
        raw.put_u8(1);
        raw.put_u8(0x07); // CreateIndex
        raw.put_u8(0);
        raw.put_u32_le(3);
        raw.put_u8(200); // claims a 200-byte name, 2 bytes follow
        raw.put_u8(b'h');
        raw.put_u8(b'i');
        // 5. histogram with width 0 → BadVerb
        raw.put_u8(0x69);
        raw.put_u8(1);
        raw.put_u8(0x0E); // Histogram
        raw.put_u8(0);
        raw.put_u32_le(24);
        raw.put_u64_le(0); // width 0
        raw.put_u64_le(0);
        raw.put_u64_le(100);
        // then a well-formed query proving the connection is intact
        serve::proto::encode_request(
            &mut raw,
            &serve::Request::Query(RangeQuery::new(0, DOM - 1)),
        );
    }
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    use serve::Transport;
    let (r, mut wtr) = client_end.split().unwrap();
    wtr.write_all(raw.as_slice()).unwrap();
    let mut rd = serve::FrameReader::new(r);
    for (i, want) in [
        Status::BadVerb,
        Status::UnknownIndex,
        Status::BadVerb,
        Status::BadLength,
        Status::BadVerb,
    ]
    .iter()
    .enumerate()
    {
        let f = rd.read_frame().unwrap().unwrap();
        assert_eq!(f.kind, serve::Kind::End, "trailer {i}");
        use bytes::Buf;
        assert_eq!(Status::from_u8(f.payload.clone().get_u8()), *want, "{i}");
    }
    let mut results = 0usize;
    loop {
        let f = rd.read_frame().unwrap().unwrap();
        match f.kind {
            serve::Kind::Results => results += f.payload.len() / 8,
            serve::Kind::End => break,
            k => panic!("unexpected {k:?}"),
        }
    }
    assert_eq!(results, w.data.len(), "query after five rejected verbs");
    drop(wtr);

    // semantic catalog misuse through the typed client
    let mut client = connect(&server);
    match client.drop_index("default") {
        Err(ClientError::Server(Status::BadVerb)) => {}
        other => panic!("dropping the default index: {other:?}"),
    }
    match client.use_index("nope") {
        Err(ClientError::Server(Status::UnknownIndex)) => {}
        other => panic!("using an unknown index: {other:?}"),
    }
    match client.drop_index("nope") {
        Err(ClientError::Server(Status::UnknownIndex)) => {}
        other => panic!("dropping an unknown index: {other:?}"),
    }
    client.create_index("twice", 0, 99).unwrap();
    match client.create_index("twice", 0, 99) {
        Err(ClientError::Server(Status::BadVerb)) => {}
        other => panic!("duplicate create: {other:?}"),
    }
    match client.join_on(None, 999, RangeQuery::new(0, 50)) {
        Err(ClientError::Server(Status::UnknownIndex)) => {}
        other => panic!("join against an unknown inner: {other:?}"),
    }
    // a histogram whose bucket count explodes is refused, not allocated
    match client.histogram(1, RangeQuery::new(0, 100_000_000)) {
        Err(ClientError::Server(Status::BadVerb)) => {}
        other => panic!("oversized histogram: {other:?}"),
    }
    // the connection still answers real queries afterwards
    let ids = client.query(RangeQuery::new(0, DOM - 1)).unwrap();
    assert_eq!(ids.len(), w.data.len());
    drop(client);
    server.shutdown();
}

/// Pipelined queries across the batch boundary come back in send order
/// with the same results as one-at-a-time calls.
#[test]
fn pipelined_replies_preserve_request_order() {
    let w = fuzz::workload(0x5e4e_0006, DOM, 500, 40, 0);
    let server = start_server(
        &w.data,
        4,
        ServeConfig::fixed(8, Duration::from_micros(100)),
    );
    let mut client = connect(&server);
    for q in &w.queries {
        client.send(&serve::Request::Query(*q)).unwrap();
    }
    let oracle = ScanOracle::new(&w.data);
    for q in &w.queries {
        let mut got: Vec<IntervalId> = Vec::new();
        let reply = client.recv_reply(|ids| got.extend_from_slice(ids)).unwrap();
        assert_eq!(reply.status, Status::Ok);
        assert_eq!(reply.count as usize, got.len());
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(*q), "{q:?}");
    }
    drop(client);
    server.shutdown();
}
