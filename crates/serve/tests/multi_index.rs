//! Differential tests for the multi-index catalog: everything a wire
//! client can do against named indexes must match the direct library
//! API over identically-maintained twins — across the shard sweep,
//! under interleaved writers, and through create/drop/use lifecycle
//! fuzz.

use hint_core::{
    AllenIndex, AllenRelation, Domain, HintMSubs, Interval, IntervalId, RangeQuery, ScanOracle,
    Session, ShardedIndex, SubsConfig,
};
use serve::{duplex, Client, ClientError, DuplexTransport, ServeConfig, Server, Status};
use std::time::Duration;
use test_support::{fuzz, shard_counts};

const DOM: u64 = 8_192;

fn build_session(data: &[Interval], k: usize) -> Session<HintMSubs> {
    let sharded = ShardedIndex::build_with_domain(data, 0, DOM - 1, k, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 9), SubsConfig::update_friendly())
    });
    Session::new(sharded)
}

fn start_server(data: &[Interval], k: usize, config: ServeConfig) -> Server {
    Server::start(build_session(data, k), config).expect("start server")
}

fn connect(server: &Server) -> Client<DuplexTransport> {
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    Client::new(client_end).unwrap()
}

/// Brute-force join twin: every (outer id, inner id) pair whose
/// intervals overlap each other inside the window, sorted.
fn join_twin(outer: &[Interval], inner: &[Interval], q: RangeQuery) -> Vec<(u64, u64)> {
    let mut pairs = Vec::new();
    for o in outer {
        if o.st > q.end || o.end < q.st {
            continue;
        }
        let (lo, hi) = (o.st.max(q.st), o.end.min(q.end));
        for i in inner {
            if i.st <= hi && i.end >= lo {
                pairs.push((o.id, i.id));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// The acceptance scenario, swept across shard counts: create two named
/// indexes over the wire, ingest into both from interleaved writers,
/// then check range, Allen, top-k, histogram, and the streamed join
/// against the direct library API — bit-identical results everywhere.
#[test]
fn two_named_indexes_match_direct_library() {
    let w = fuzz::workload(0x9_0001, DOM, 400, 32, 0);
    for k in shard_counts() {
        let server = start_server(
            &w.data,
            k,
            ServeConfig::fixed(16, Duration::from_micros(200)),
        );
        let mut admin = connect(&server);
        let left = admin.create_index("left", 0, DOM - 1).unwrap();
        let right = admin.create_index("right", 0, DOM - 1).unwrap();
        assert_ne!(left, 0);
        assert_ne!(right, 0);
        assert_ne!(left, right);

        // interleaved writers: two connections, each writing to BOTH
        // named indexes in alternation (ids disjoint per writer)
        let mut left_twin: Vec<Interval> = Vec::new();
        let mut right_twin: Vec<Interval> = Vec::new();
        let gen = |c: u64, i: u64| {
            let st = (c * 2_311 + i * 131) % (DOM - 400);
            Interval::new(c * 100_000 + i, st, st + 40 + (i * 13) % 350)
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=2u64)
                .map(|c| {
                    let mut client = connect(&server);
                    scope.spawn(move || {
                        for i in 0..60u64 {
                            let s = gen(c, i);
                            let target = if i % 2 == 0 { left } else { right };
                            client.insert_on(Some(target), s).unwrap();
                        }
                        client.seal_on(Some(left)).ok();
                        client.seal_on(Some(right)).ok();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        for c in 1..=2u64 {
            for i in 0..60u64 {
                let s = gen(c, i);
                if i % 2 == 0 {
                    left_twin.push(s);
                } else {
                    right_twin.push(s);
                }
            }
        }

        // the default index is untouched by the named-index writers
        let d_oracle = ScanOracle::new(&w.data);
        let l_oracle = ScanOracle::new(&left_twin);
        let r_oracle = ScanOracle::new(&right_twin);
        for q in &w.queries {
            let mut got = admin.query(*q).unwrap();
            got.sort_unstable();
            assert_eq!(got, d_oracle.query_sorted(*q), "default k={k} {q:?}");
            let mut got = admin.query_on(Some(left), *q).unwrap();
            got.sort_unstable();
            assert_eq!(got, l_oracle.query_sorted(*q), "left k={k} {q:?}");
            let mut got = admin.query_on(Some(right), *q).unwrap();
            got.sort_unstable();
            assert_eq!(got, r_oracle.query_sorted(*q), "right k={k} {q:?}");
        }

        // Allen relations on a named index vs the library's AllenIndex
        let allen_twin = AllenIndex::build(&left_twin, 9);
        for rel in AllenRelation::ALL {
            for q in w.queries.iter().take(8) {
                let mut want: Vec<IntervalId> = Vec::new();
                allen_twin.select(rel, *q, &mut want);
                want.sort_unstable();
                let mut got = admin.allen_on(Some(left), rel, *q).unwrap();
                got.sort_unstable();
                assert_eq!(got, want, "allen {rel:?} k={k} {q:?}");
            }
        }

        // aggregation verbs vs the library sinks driven directly
        for q in w.queries.iter().take(8) {
            let mut by_len: Vec<(u64, u64)> = l_oracle
                .query_sorted(*q)
                .into_iter()
                .map(|id| {
                    let s = left_twin.iter().find(|s| s.id == id).unwrap();
                    (s.end - s.st, id)
                })
                .collect();
            by_len.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let want: Vec<IntervalId> = by_len.iter().take(5).map(|&(_, id)| id).collect();
            let got = admin.top_k_on(Some(left), 5, *q).unwrap();
            assert_eq!(got, want, "top-k k={k} {q:?}");

            let width = 64u64;
            let buckets = ((q.end - q.st) / width + 1) as usize;
            let mut want = vec![0u64; buckets];
            for id in l_oracle.query_sorted(*q) {
                let s = left_twin.iter().find(|s| s.id == id).unwrap();
                let lo = s.st.max(q.st);
                let hi = s.end.min(q.end);
                for (b, w_) in want.iter_mut().enumerate() {
                    let b_lo = q.st + b as u64 * width;
                    let b_hi = (b_lo + width - 1).min(q.end);
                    if lo <= b_hi && hi >= b_lo {
                        *w_ += 1;
                    }
                }
            }
            let got = admin.histogram_on(Some(left), width, *q).unwrap();
            assert_eq!(got, want, "histogram k={k} {q:?}");
        }

        // the streamed join between the two named indexes
        for q in w.queries.iter().take(8) {
            let mut got = admin.join_on(Some(left), right, *q).unwrap();
            got.sort_unstable();
            assert_eq!(
                got,
                join_twin(&left_twin, &right_twin, *q),
                "join k={k} {q:?}"
            );
        }

        // UseIndex re-points un-addressed verbs at a named index
        assert_eq!(admin.use_index("left").unwrap(), left);
        for q in w.queries.iter().take(4) {
            let mut got = admin.query(*q).unwrap();
            got.sort_unstable();
            assert_eq!(got, l_oracle.query_sorted(*q), "use-index k={k} {q:?}");
        }

        // the catalog listing reflects both names and live counts
        let infos = admin.list_indexes().unwrap();
        assert_eq!(infos.len(), 3);
        assert_eq!(infos[0].name, "default");
        let l_info = infos.iter().find(|i| i.id == left).unwrap();
        assert_eq!((l_info.name.as_str(), l_info.len), ("left", 60));
        assert_eq!((l_info.lo, l_info.hi), (0, DOM - 1));

        drop(admin);
        server.shutdown();
    }
}

/// Writes to one index must not disturb another: a writer hammering
/// index A interleaved with queries on index B gives B answers
/// identical to a never-written twin.
#[test]
fn writes_on_one_index_leave_others_consistent() {
    let w = fuzz::workload(0x9_0002, DOM, 500, 16, 0);
    let server = start_server(&w.data, 3, ServeConfig::default());
    let mut client = connect(&server);
    let scratch = client.create_index("scratch", 0, DOM - 1).unwrap();
    let d_oracle = ScanOracle::new(&w.data);
    for (i, q) in w.queries.iter().enumerate() {
        let s = Interval::new(i as u64 + 1, (i as u64 * 97) % (DOM - 100), DOM - 1);
        client.insert_on(Some(scratch), s).unwrap();
        let mut got = client.query(*q).unwrap();
        got.sort_unstable();
        assert_eq!(got, d_oracle.query_sorted(*q), "{q:?} after write {i}");
    }
    drop(client);
    server.shutdown();
}

/// Seeded lifecycle fuzz: random create / drop / use / insert / query
/// over a pool of names, mirrored into per-index oracle twins. Every
/// query answer matches its twin; every verb against a dropped or
/// never-created name earns `UnknownIndex`; drops free catalog
/// capacity.
#[test]
fn catalog_lifecycle_fuzz_with_oracle_twin() {
    const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
    for seed in 0..4u64 {
        let w = fuzz::workload(0x9_1000 ^ seed, DOM, 200, 0, 0);
        let server = start_server(&w.data, 2, ServeConfig::default());
        let mut client = connect(&server);
        let mut rng = fuzz::Rng::new(0xca7a_7065 ^ seed);
        // name -> (catalog id, oracle twin); None while dropped
        let mut live: Vec<Option<(u32, ScanOracle)>> = (0..NAMES.len()).map(|_| None).collect();
        let mut next_id = 1u64;
        for _ in 0..300 {
            let n = rng.below(NAMES.len() as u64) as usize;
            match rng.below(10) {
                0..=1 => {
                    let r = client.create_index(NAMES[n], 0, DOM - 1);
                    match (&live[n], r) {
                        (None, Ok(id)) => live[n] = Some((id, ScanOracle::new(&[]))),
                        (Some(_), Err(ClientError::Server(Status::BadVerb))) => {}
                        (state, other) => {
                            panic!(
                                "create {:?} (live={}): {other:?}",
                                NAMES[n],
                                state.is_some()
                            )
                        }
                    }
                }
                2 => {
                    let r = client.drop_index(NAMES[n]);
                    match (&live[n], r) {
                        (Some((id, _)), Ok(freed)) => {
                            assert_eq!(freed, *id);
                            live[n] = None;
                        }
                        (None, Err(ClientError::Server(Status::UnknownIndex))) => {}
                        (state, other) => {
                            panic!("drop {:?} (live={}): {other:?}", NAMES[n], state.is_some())
                        }
                    }
                }
                3..=5 => {
                    let st = rng.below(DOM - 200);
                    let s = Interval::new(next_id, st, st + 1 + rng.below(199));
                    next_id += 1;
                    match &mut live[n] {
                        Some((id, twin)) => {
                            client.insert_on(Some(*id), s).unwrap();
                            twin.insert(s);
                        }
                        None => {
                            // a dropped name's old id must stay dead
                            // (slots are never reused)
                            match client.use_index(NAMES[n]) {
                                Err(ClientError::Server(Status::UnknownIndex)) => {}
                                other => panic!("use dropped {:?}: {other:?}", NAMES[n]),
                            }
                        }
                    }
                }
                _ => {
                    let st = rng.below(DOM - 500);
                    let q = RangeQuery::new(st, st + rng.below(500));
                    match &live[n] {
                        Some((id, twin)) => {
                            let mut got = client.query_on(Some(*id), q).unwrap();
                            got.sort_unstable();
                            assert_eq!(got, twin.query_sorted(q), "{:?} {q:?}", NAMES[n]);
                        }
                        None => {
                            // id may have been freed; query by a stale
                            // name via UseIndex instead
                            match client.use_index(NAMES[n]) {
                                Err(ClientError::Server(Status::UnknownIndex)) => {}
                                other => panic!("use dropped {:?}: {other:?}", NAMES[n]),
                            }
                        }
                    }
                }
            }
        }
        // final sweep: every live index still matches its twin
        for (n, slot) in live.iter().enumerate() {
            if let Some((id, twin)) = slot {
                for st in [0u64, 1_000, 4_000] {
                    let q = RangeQuery::new(st, st + 900);
                    let mut got = client.query_on(Some(*id), q).unwrap();
                    got.sort_unstable();
                    assert_eq!(got, twin.query_sorted(q), "final {:?} {q:?}", NAMES[n]);
                }
            }
        }
        drop(client);
        server.shutdown();
    }
}

/// The catalog cap (`HINT_MAX_INDEXES`, default 16) rejects the
/// overflowing create with `Overloaded` and recovers capacity on drop.
#[test]
fn catalog_capacity_is_bounded_and_recovers() {
    let server = start_server(&[], 1, ServeConfig::default());
    let mut client = connect(&server);
    // default occupies one of the 16 slots
    for i in 0..15 {
        client.create_index(&format!("idx{i}"), 0, 1_023).unwrap();
    }
    match client.create_index("one-too-many", 0, 1_023) {
        Err(ClientError::Server(Status::Overloaded)) => {}
        other => panic!("over-cap create: {other:?}"),
    }
    client.drop_index("idx7").unwrap();
    let id = client.create_index("one-too-many", 0, 1_023).unwrap();
    // slots are never reused: the new index gets a fresh id
    assert_eq!(id, 16);
    drop(client);
    server.shutdown();
}
