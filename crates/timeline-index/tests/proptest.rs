//! Property-based validation of the timeline index against the oracle,
//! across checkpoint spacings (the roll-forward logic is the tricky part).

use hint_core::{Interval, RangeQuery, ScanOracle};
use proptest::prelude::*;
use timeline_index::TimelineIndex;

fn intervals(max_val: u64) -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0..max_val, 0..max_val), 1..100).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Interval::new(i as u64, a.min(b), a.max(b)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_oracle_any_spacing(
        data in intervals(3_000),
        qa in 0u64..3_000,
        qb in 0u64..3_000,
        every in 1usize..64,
    ) {
        let q = RangeQuery::new(qa.min(qb), qa.max(qb));
        let oracle = ScanOracle::new(&data);
        let idx = TimelineIndex::build_with_spacing(&data, every);
        let mut got = Vec::new();
        idx.query(q, &mut got);
        got.sort_unstable();
        prop_assert_eq!(got, oracle.query_sorted(q));
    }

    #[test]
    fn spacing_never_changes_results(data in intervals(1_500), t in 0u64..1_500) {
        let a = TimelineIndex::build_with_spacing(&data, 1);
        let b = TimelineIndex::build_with_spacing(&data, 1_000_000);
        let q = RangeQuery::stab(t);
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        a.query(q, &mut ra);
        b.query(q, &mut rb);
        ra.sort_unstable();
        rb.sort_unstable();
        prop_assert_eq!(ra, rb);
    }
}
