//! Property-based validation of the timeline index against the oracle,
//! across checkpoint spacings (the roll-forward logic is the tricky
//! part). Oracle comparison runs through the shared `test-support`
//! differential harness, which compares result *sets* — the timeline
//! reports each checkpoint's survivors from a `HashSet`, so emission
//! order is not deterministic.

use hint_core::{RangeQuery, ScanOracle};
use proptest::prelude::*;
use test_support::{assert_indexes_agree, assert_same_results_named, intervals, query};
use timeline_index::TimelineIndex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_oracle_any_spacing(
        data in intervals(3_000),
        q in query(3_000),
        every in 1usize..64,
    ) {
        let oracle = ScanOracle::new(&data);
        let idx = TimelineIndex::build_with_spacing(&data, every);
        assert_same_results_named("timeline", &idx, &oracle, &[q])?;
    }

    #[test]
    fn spacing_never_changes_results(data in intervals(1_500), t in 0u64..1_500) {
        let a = TimelineIndex::build_with_spacing(&data, 1);
        let b = TimelineIndex::build_with_spacing(&data, 1_000_000);
        assert_indexes_agree("spacing-1-vs-huge", &a, &b, &[RangeQuery::stab(t)])?;
    }
}
