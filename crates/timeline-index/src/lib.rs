//! The timeline index of Kaufmann et al. \[19\] (SAP HANA), as described in
//! §2 / Figure 2 of the HINT paper.
//!
//! All interval endpoints are kept in a single *event list* of
//! `⟨time, id, isStart⟩` triples, sorted by time (starts before ends at
//! equal times). At regular positions, *checkpoints* materialize the full
//! set of active interval ids together with a pointer back into the event
//! list. A range (time-travel) query restores the active set of the last
//! checkpoint before `q.st`, rolls it forward by replaying events, reports
//! it, and then keeps scanning until `q.end`, adding every interval that
//! starts inside the query range.
//!
//! The structure is designed for versioned/temporal data: ad-hoc updates
//! would have to splice the sorted event list, so — like the paper, which
//! excludes the timeline index from the update experiment — this
//! implementation is build-once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hint_core::{Interval, IntervalId, IntervalIndex, QuerySink, RangeQuery, Time};
use std::collections::HashSet;

/// One endpoint event in the event list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: Time,
    id: IntervalId,
    is_start: bool,
}

/// A materialized checkpoint: the set of intervals alive just after
/// `time`, plus the event-list position from which to resume scanning.
#[derive(Debug, Clone)]
struct Checkpoint {
    time: Time,
    /// Index of the first event with `time > self.time`.
    resume: usize,
    /// Ids of all intervals with `st <= time < end`.
    active: Vec<IntervalId>,
}

/// The timeline index \[19\].
#[derive(Debug, Clone)]
pub struct TimelineIndex {
    events: Vec<Event>,
    checkpoints: Vec<Checkpoint>,
    live: usize,
    min: Time,
    max: Time,
}

/// Default number of events between consecutive checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 4096;

impl TimelineIndex {
    /// Builds the index with the default checkpoint spacing.
    pub fn build(data: &[Interval]) -> Self {
        Self::build_with_spacing(data, DEFAULT_CHECKPOINT_EVERY)
    }

    /// Builds the index placing a checkpoint roughly every `every` events.
    ///
    /// # Panics
    /// Panics if `data` is empty or `every == 0`.
    pub fn build_with_spacing(data: &[Interval], every: usize) -> Self {
        assert!(!data.is_empty(), "timeline index requires data");
        assert!(every > 0);
        let mut events = Vec::with_capacity(data.len() * 2);
        for s in data {
            events.push(Event {
                time: s.st,
                id: s.id,
                is_start: true,
            });
            events.push(Event {
                time: s.end,
                id: s.id,
                is_start: false,
            });
        }
        // time ascending; at equal times starts sort before ends
        // (isStart descending), matching the paper's event-list order.
        events.sort_unstable_by(|a, b| {
            a.time
                .cmp(&b.time)
                .then(b.is_start.cmp(&a.is_start))
                .then(a.id.cmp(&b.id))
        });

        let min = events.first().map_or(0, |e| e.time);
        let max = events.last().map_or(0, |e| e.time);

        // Single forward sweep maintaining the active set; snapshot it
        // between timestamp groups so every checkpoint is exact.
        let mut checkpoints = Vec::new();
        let mut active: HashSet<IntervalId> = HashSet::new();
        let mut i = 0;
        while i < events.len() {
            let group_start = i;
            let t = events[group_start].time;
            while i < events.len() && events[i].time == t {
                let e = events[i];
                if e.is_start {
                    active.insert(e.id);
                } else {
                    active.remove(&e.id);
                }
                i += 1;
            }
            let _ = group_start;
            if checkpoints.len() * every <= i && i < events.len() {
                let mut ids: Vec<IntervalId> = active.iter().copied().collect();
                ids.sort_unstable();
                checkpoints.push(Checkpoint {
                    time: t,
                    resume: i,
                    active: ids,
                });
            }
        }
        Self {
            events,
            checkpoints,
            live: data.len(),
            min,
            max,
        }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of checkpoints materialized.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Evaluates a range (time-travel) query, pushing result ids into
    /// `out`.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Evaluates a range (time-travel) query into an arbitrary sink; the
    /// event-list scan stops once the sink is saturated (the checkpoint
    /// roll-forward must still complete — the active set is the query's
    /// first batch of results).
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        if q.end < self.min || q.st > self.max {
            return;
        }
        // last checkpoint strictly before q.st: its active set holds
        // intervals with st <= cp.time < end; roll forward from there.
        let cp_idx = self.checkpoints.partition_point(|c| c.time < q.st);
        let (mut scan, mut alive): (usize, HashSet<IntervalId>) = if cp_idx == 0 {
            (0, HashSet::new())
        } else {
            let cp = &self.checkpoints[cp_idx - 1];
            (cp.resume, cp.active.iter().copied().collect())
        };
        // replay events strictly before q.st
        while scan < self.events.len() && self.events[scan].time < q.st {
            let e = self.events[scan];
            if e.is_start {
                alive.insert(e.id);
            } else {
                alive.remove(&e.id);
            }
            scan += 1;
        }
        // `alive` now holds intervals that started before q.st and end at
        // or after it — all guaranteed results.
        for id in alive {
            if sink.is_saturated() {
                return;
            }
            sink.emit(id);
        }
        // every start event inside [q.st, q.end] is a further result
        while scan < self.events.len() && self.events[scan].time <= q.end {
            if sink.is_saturated() {
                return;
            }
            let e = self.events[scan];
            if e.is_start {
                sink.emit(e.id);
            }
            scan += 1;
        }
    }

    /// Convenience: stabbing (pure-timeslice) query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    /// Approximate heap footprint in bytes — large checkpoint active sets
    /// are exactly the space weakness the paper calls out.
    pub fn size_bytes(&self) -> usize {
        self.events.len() * std::mem::size_of::<Event>()
            + self
                .checkpoints
                .iter()
                .map(|c| {
                    std::mem::size_of::<Checkpoint>()
                        + c.active.len() * std::mem::size_of::<IntervalId>()
                })
                .sum::<usize>()
    }
}

impl IntervalIndex for TimelineIndex {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        TimelineIndex::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        TimelineIndex::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        TimelineIndex::size_bytes(self)
    }
    fn len(&self) -> usize {
        TimelineIndex::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_core::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    #[test]
    fn exhaustive_small_domain_tight_checkpoints() {
        let data = lcg_data(150, 64, 25, 3);
        // tiny spacing forces many checkpoint/rollforward interactions
        for every in [4, 16, 1024] {
            let idx = TimelineIndex::build_with_spacing(&data, every);
            let oracle = ScanOracle::new(&data);
            for st in 0..64u64 {
                for end in st..64 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "every={every} {q:?}");
                }
            }
        }
    }

    #[test]
    fn random_large_domain() {
        let data = lcg_data(800, 500_000, 60_000, 7);
        let idx = TimelineIndex::build_with_spacing(&data, 64);
        let oracle = ScanOracle::new(&data);
        let mut x = 1u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let st = (x >> 17) % 500_000;
            let end = (st + (x >> 5) % 50_000).min(499_999);
            let q = RangeQuery::new(st, end);
            let mut got = Vec::new();
            idx.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn stabbing_matches_oracle() {
        let data = lcg_data(300, 4096, 600, 11);
        let idx = TimelineIndex::build_with_spacing(&data, 32);
        let oracle = ScanOracle::new(&data);
        for t in (0..4096).step_by(7) {
            let mut got = Vec::new();
            idx.stab(t, &mut got);
            assert_eq!(
                sorted(got),
                oracle.query_sorted(RangeQuery::stab(t)),
                "t={t}"
            );
        }
    }

    #[test]
    fn closed_end_boundaries() {
        // an interval ending exactly at q.st must be reported
        let data = vec![
            Interval::new(1, 0, 10),
            Interval::new(2, 10, 20),
            Interval::new(3, 21, 30),
        ];
        let idx = TimelineIndex::build_with_spacing(&data, 1);
        let mut got = Vec::new();
        idx.query(RangeQuery::new(10, 10), &mut got);
        assert_eq!(sorted(got.clone()), vec![1, 2]);
        got.clear();
        idx.query(RangeQuery::new(20, 21), &mut got);
        assert_eq!(sorted(got), vec![2, 3]);
    }

    #[test]
    fn checkpoints_are_materialized() {
        let data = lcg_data(1000, 10_000, 500, 5);
        let idx = TimelineIndex::build_with_spacing(&data, 100);
        assert!(idx.checkpoint_count() >= 10, "{}", idx.checkpoint_count());
        // tighter spacing -> more checkpoints -> more space
        let loose = TimelineIndex::build_with_spacing(&data, 1000);
        assert!(idx.size_bytes() > loose.size_bytes());
    }

    #[test]
    fn no_duplicates() {
        let data = lcg_data(500, 10_000, 3_000, 13);
        let idx = TimelineIndex::build_with_spacing(&data, 128);
        for st in (0..10_000u64).step_by(173) {
            let q = RangeQuery::new(st, (st + 4000).min(9999));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }
}
