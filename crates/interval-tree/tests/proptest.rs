//! Property-based validation of the interval tree against the oracle,
//! through the shared `test-support` differential harness.

use hint_core::ScanOracle;
use interval_tree::IntervalTree;
use proptest::prelude::*;
use test_support::{assert_indexes_agree, assert_same_results_named, intervals, query};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_oracle(data in intervals(5_000), q in query(5_000)) {
        let oracle = ScanOracle::new(&data);
        let tree = IntervalTree::build(&data);
        assert_same_results_named("interval-tree", &tree, &oracle, &[q])?;
    }

    #[test]
    fn incremental_build_equals_bulk_build(data in intervals(2_000), t in 0u64..2_000) {
        let bulk = IntervalTree::build(&data);
        let mut inc = IntervalTree::with_domain(0, 2_000);
        for &s in &data {
            inc.insert(s);
        }
        assert_indexes_agree(
            "bulk-vs-incremental",
            &bulk,
            &inc,
            &[hint_core::RangeQuery::stab(t)],
        )?;
    }

    #[test]
    fn delete_removes_only_the_victim(mut data in intervals(1_000), pick in any::<prop::sample::Index>()) {
        let victim = data[pick.index(data.len())];
        let mut tree = IntervalTree::build(&data);
        prop_assert!(tree.delete(&victim));
        data.retain(|s| s.id != victim.id);
        let oracle = ScanOracle::new(&data);
        assert_same_results_named(
            "interval-tree-after-delete",
            &tree,
            &oracle,
            &[hint_core::RangeQuery::new(0, 1_000)],
        )?;
    }
}
