//! Property-based validation of the interval tree against the oracle.

use hint_core::{Interval, RangeQuery, ScanOracle};
use interval_tree::IntervalTree;
use proptest::prelude::*;

fn intervals(max_val: u64) -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0..max_val, 0..max_val), 1..100).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Interval::new(i as u64, a.min(b), a.max(b)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_oracle(data in intervals(5_000), qa in 0u64..5_000, qb in 0u64..5_000) {
        let q = RangeQuery::new(qa.min(qb), qa.max(qb));
        let oracle = ScanOracle::new(&data);
        let tree = IntervalTree::build(&data);
        let mut got = Vec::new();
        tree.query(q, &mut got);
        got.sort_unstable();
        prop_assert_eq!(got, oracle.query_sorted(q));
    }

    #[test]
    fn incremental_build_equals_bulk_build(data in intervals(2_000), t in 0u64..2_000) {
        let bulk = IntervalTree::build(&data);
        let mut inc = IntervalTree::with_domain(0, 2_000);
        for &s in &data {
            inc.insert(s);
        }
        let q = RangeQuery::stab(t);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        bulk.query(q, &mut a);
        inc.query(q, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn delete_removes_only_the_victim(mut data in intervals(1_000), pick in any::<prop::sample::Index>()) {
        let victim = data[pick.index(data.len())];
        let mut tree = IntervalTree::build(&data);
        prop_assert!(tree.delete(&victim));
        data.retain(|s| s.id != victim.id);
        let oracle = ScanOracle::new(&data);
        let q = RangeQuery::new(0, 1_000);
        let mut got = Vec::new();
        tree.query(q, &mut got);
        got.sort_unstable();
        prop_assert_eq!(got, oracle.query_sorted(q));
    }
}
