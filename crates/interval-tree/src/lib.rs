//! Edelsbrunner's interval tree \[16\], the classic main-memory interval
//! index the HINT paper compares against (§2, Figure 1).
//!
//! The tree divides the domain hierarchically: all intervals containing the
//! domain's center point are stored at the root in two sorted lists (`ST`
//! by start ascending, `END` by end ascending); intervals strictly before
//! (after) the center go to the left (right) subtree, built over the
//! corresponding half of the domain. Queries descend the tree, harvesting
//! each visited node's lists with at most one comparison per reported
//! interval — the weakness the HINT paper highlights.
//!
//! Nodes are kept in an arena (`Vec`) with `u32` child links; empty
//! subtrees are materialized lazily (on insert) so sparse domains stay
//! cheap. Updates: inserts keep the `ST`/`END` lists sorted (binary search
//! plus `Vec::insert`, the "slow updates" of Table 1); deletes are logical
//! (tombstones), mirroring the other indexes in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hint_core::sink::{emit_live, SATURATION_POLL};
use hint_core::{Interval, IntervalId, IntervalIndex, QuerySink, RangeQuery, Time, TOMBSTONE};

const NONE: u32 = u32::MAX;

/// Emits ids from `list` while `cond` holds, polling saturation
/// periodically.
fn push_while<'a, S: QuerySink + ?Sized>(
    list: impl Iterator<Item = &'a Interval>,
    mut cond: impl FnMut(&Interval) -> bool,
    sink: &mut S,
) {
    for (k, s) in list.enumerate() {
        if !cond(s) {
            return;
        }
        if k % SATURATION_POLL == 0 && sink.is_saturated() {
            return;
        }
        emit_live(s.id, sink);
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Domain range this node is responsible for (inclusive).
    lo: Time,
    hi: Time,
    /// Center point: intervals containing it live here.
    center: Time,
    /// Node intervals sorted by start point ascending.
    st_list: Vec<Interval>,
    /// Node intervals sorted by end point ascending.
    end_list: Vec<Interval>,
    left: u32,
    right: u32,
}

impl Node {
    fn new(lo: Time, hi: Time) -> Self {
        Self {
            lo,
            hi,
            center: lo + (hi - lo) / 2,
            st_list: Vec::new(),
            end_list: Vec::new(),
            left: NONE,
            right: NONE,
        }
    }
}

/// A domain-centered interval tree (Edelsbrunner \[16\]).
#[derive(Debug, Clone)]
pub struct IntervalTree {
    nodes: Vec<Node>,
    root: u32,
    live: usize,
    tombstones: usize,
}

impl IntervalTree {
    /// Builds the tree over `data`, using the dataset's endpoint range as
    /// the domain.
    ///
    /// # Panics
    /// Panics if `data` is empty (use [`IntervalTree::with_domain`] for an
    /// empty, insert-ready tree).
    pub fn build(data: &[Interval]) -> Self {
        assert!(!data.is_empty(), "use with_domain() for an empty tree");
        let mut min = Time::MAX;
        let mut max = 0;
        for s in data {
            min = min.min(s.st);
            max = max.max(s.end);
        }
        let mut tree = Self::with_domain(min, max);
        // Recursive bulk build: route the whole collection down at once so
        // each node's lists are filled and sorted exactly once.
        tree.bulk(tree.root, data.to_vec());
        tree.live = data.len();
        tree
    }

    /// Creates an empty tree over the domain `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn with_domain(min: Time, max: Time) -> Self {
        assert!(min <= max);
        let root_node = Node::new(min, max);
        Self {
            nodes: vec![root_node],
            root: 0,
            live: 0,
            tombstones: 0,
        }
    }

    fn bulk(&mut self, node: u32, data: Vec<Interval>) {
        if data.is_empty() {
            return;
        }
        let (center, lo, hi) = {
            let n = &self.nodes[node as usize];
            (n.center, n.lo, n.hi)
        };
        let mut here = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for s in data {
            if s.end < center {
                left.push(s);
            } else if s.st > center {
                right.push(s);
            } else {
                here.push(s);
            }
        }
        {
            let mut st_list = here.clone();
            st_list.sort_unstable_by_key(|s| s.st);
            here.sort_unstable_by_key(|s| s.end);
            let n = &mut self.nodes[node as usize];
            n.st_list = st_list;
            n.end_list = here;
        }
        if !left.is_empty() && center > lo {
            let child = self.child(node, lo, center - 1, true);
            self.bulk(child, left);
        }
        if !right.is_empty() && center < hi {
            let child = self.child(node, center + 1, hi, false);
            self.bulk(child, right);
        }
    }

    /// Returns (creating if needed) the left/right child of `node`.
    fn child(&mut self, node: u32, lo: Time, hi: Time, left: bool) -> u32 {
        let existing = if left {
            self.nodes[node as usize].left
        } else {
            self.nodes[node as usize].right
        };
        if existing != NONE {
            return existing;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::new(lo, hi));
        if left {
            self.nodes[node as usize].left = idx;
        } else {
            self.nodes[node as usize].right = idx;
        }
        idx
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Evaluates a range query, pushing result ids into `out`.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Evaluates a range query into an arbitrary sink; the tree descent
    /// stops once the sink is saturated.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        let mut node = self.root;
        loop {
            if sink.is_saturated() {
                return;
            }
            let n = &self.nodes[node as usize];
            if q.end < n.center {
                // query entirely left of the center: node intervals (which
                // all reach the center) overlap iff they start <= q.end
                push_while(n.st_list.iter(), |s| s.st <= q.end, sink);
                if n.left == NONE {
                    return;
                }
                node = n.left;
            } else if q.st > n.center {
                // query entirely right: overlap iff s.end >= q.st; walk the
                // END list (ascending by end) backwards
                push_while(n.end_list.iter().rev(), |s| s.end >= q.st, sink);
                if n.right == NONE {
                    return;
                }
                node = n.right;
            } else {
                // the center lies inside the query: everything stored here
                // qualifies, and both subtrees may contain further results
                push_while(n.st_list.iter(), |_| true, sink);
                self.descend_left(n.left, q, sink);
                self.descend_right(n.right, q, sink);
                return;
            }
        }
    }

    /// Left spine below the split node: every node range ends before the
    /// split center, hence before `q.end`.
    fn descend_left<S: QuerySink + ?Sized>(&self, mut node: u32, q: RangeQuery, sink: &mut S) {
        while node != NONE && !sink.is_saturated() {
            let n = &self.nodes[node as usize];
            if n.center >= q.st {
                // the center is inside q: everything here qualifies, and
                // the right subtree lies entirely within [q.st, q.end]
                push_while(n.st_list.iter(), |_| true, sink);
                self.report_subtree(n.right, sink);
                node = n.left;
            } else {
                // center before q.st: harvest via the END list, go right
                push_while(n.end_list.iter().rev(), |s| s.end >= q.st, sink);
                node = n.right;
            }
        }
    }

    /// Right spine below the split node (symmetric to `descend_left`).
    fn descend_right<S: QuerySink + ?Sized>(&self, mut node: u32, q: RangeQuery, sink: &mut S) {
        while node != NONE && !sink.is_saturated() {
            let n = &self.nodes[node as usize];
            if n.center <= q.end {
                push_while(n.st_list.iter(), |_| true, sink);
                self.report_subtree(n.left, sink);
                node = n.right;
            } else {
                push_while(n.st_list.iter(), |s| s.st <= q.end, sink);
                node = n.left;
            }
        }
    }

    /// Reports every interval in a subtree (its range lies inside `q`).
    fn report_subtree<S: QuerySink + ?Sized>(&self, node: u32, sink: &mut S) {
        if node == NONE || sink.is_saturated() {
            return;
        }
        let n = &self.nodes[node as usize];
        push_while(n.st_list.iter(), |_| true, sink);
        self.report_subtree(n.left, sink);
        self.report_subtree(n.right, sink);
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    /// Inserts an interval, keeping the node lists sorted (the "slow
    /// updates" of Table 1).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the tree domain.
    pub fn insert(&mut self, s: Interval) {
        let root = &self.nodes[self.root as usize];
        assert!(
            s.st >= root.lo && s.end <= root.hi,
            "interval outside tree domain"
        );
        let mut node = self.root;
        loop {
            let (center, lo, hi) = {
                let n = &self.nodes[node as usize];
                (n.center, n.lo, n.hi)
            };
            if s.end < center {
                node = self.child(node, lo, center - 1, true);
            } else if s.st > center {
                node = self.child(node, center + 1, hi, false);
            } else {
                let n = &mut self.nodes[node as usize];
                let pos = n.st_list.partition_point(|x| x.st <= s.st);
                n.st_list.insert(pos, s);
                let pos = n.end_list.partition_point(|x| x.end <= s.end);
                n.end_list.insert(pos, s);
                self.live += 1;
                return;
            }
        }
    }

    /// Logically deletes an interval (tombstones in both node lists).
    /// Returns true if found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let mut node = self.root;
        loop {
            let n = &self.nodes[node as usize];
            if s.end < n.center {
                if n.left == NONE {
                    return false;
                }
                node = n.left;
            } else if s.st > n.center {
                if n.right == NONE {
                    return false;
                }
                node = n.right;
            } else {
                let n = &mut self.nodes[node as usize];
                let mut found = false;
                for slot in n.st_list.iter_mut() {
                    if slot.id == s.id {
                        slot.id = TOMBSTONE;
                        found = true;
                        break;
                    }
                }
                if found {
                    for slot in n.end_list.iter_mut() {
                        if slot.id == s.id {
                            slot.id = TOMBSTONE;
                            break;
                        }
                    }
                    self.live -= 1;
                    self.tombstones += 1;
                }
                return found;
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| (n.st_list.len() + n.end_list.len()) * std::mem::size_of::<Interval>())
                .sum::<usize>()
    }
}

impl IntervalIndex for IntervalTree {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        IntervalTree::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        IntervalTree::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        IntervalTree::size_bytes(self)
    }
    fn len(&self) -> usize {
        IntervalTree::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_core::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    #[test]
    fn exhaustive_small_domain() {
        let data = lcg_data(150, 64, 25, 3);
        let tree = IntervalTree::build(&data);
        let oracle = ScanOracle::new(&data);
        for st in 0..64u64 {
            for end in st..64 {
                let q = RangeQuery::new(st, end);
                let mut got = Vec::new();
                tree.query(q, &mut got);
                assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
            }
        }
    }

    #[test]
    fn random_large_domain() {
        let data = lcg_data(700, 1_000_000, 80_000, 7);
        let tree = IntervalTree::build(&data);
        let oracle = ScanOracle::new(&data);
        let mut x = 1u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let st = (x >> 17) % 1_000_000;
            let end = (st + (x >> 5) % 90_000).min(999_999);
            let q = RangeQuery::new(st, end);
            let mut got = Vec::new();
            tree.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn stabbing() {
        let data = lcg_data(300, 4096, 600, 11);
        let tree = IntervalTree::build(&data);
        let oracle = ScanOracle::new(&data);
        for t in (0..4096).step_by(7) {
            let mut got = Vec::new();
            tree.stab(t, &mut got);
            assert_eq!(
                sorted(got),
                oracle.query_sorted(RangeQuery::stab(t)),
                "t={t}"
            );
        }
    }

    #[test]
    fn no_duplicates() {
        let data = lcg_data(500, 10_000, 3_000, 13);
        let tree = IntervalTree::build(&data);
        for st in (0..10_000u64).step_by(113) {
            let q = RangeQuery::new(st, (st + 4000).min(9999));
            let mut got = Vec::new();
            tree.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }

    #[test]
    fn updates_match_oracle() {
        let data = lcg_data(200, 2048, 150, 5);
        let mut tree = IntervalTree::with_domain(0, 2047);
        let mut oracle = ScanOracle::new(&[]);
        for &s in &data {
            tree.insert(s);
            oracle.insert(s);
        }
        for s in data.iter().filter(|s| s.id % 3 == 0) {
            assert_eq!(tree.delete(s), oracle.delete(s.id));
        }
        assert_eq!(tree.len(), oracle.len());
        for st in (0..2048u64).step_by(31) {
            let q = RangeQuery::new(st, (st + 64).min(2047));
            let mut got = Vec::new();
            tree.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn delete_missing_returns_false() {
        let data = lcg_data(20, 256, 30, 9);
        let mut tree = IntervalTree::build(&data);
        assert!(!tree.delete(&Interval::new(9999, 0, 255)));
        let victim = data[0];
        assert!(tree.delete(&victim));
        assert!(!tree.delete(&victim));
    }

    #[test]
    fn single_interval_tree() {
        let data = vec![Interval::new(42, 100, 200)];
        let tree = IntervalTree::build(&data);
        let mut out = Vec::new();
        tree.query(RangeQuery::new(150, 160), &mut out);
        assert_eq!(out, vec![42]);
        out.clear();
        tree.query(RangeQuery::new(0, 99), &mut out);
        assert!(out.is_empty());
    }
}
