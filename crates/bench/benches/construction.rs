//! Criterion micro-benchmark backing Tables 8 and 9: construction cost of
//! all six indexes on a BOOKS-shaped clone (sizes are printed by the
//! harness; criterion measures the build times precisely).

use bench::datasets;
use bench::RunConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::realistic::RealDataset;

fn bench_construction(c: &mut Criterion) {
    let cfg = RunConfig {
        scale_mul: 16,
        ..RunConfig::default()
    };
    let ds = datasets::real(RealDataset::Books, &cfg);
    let data = &ds.data;

    let mut group = c.benchmark_group("table9_build_books");
    group.sample_size(10);
    group.bench_function("interval_tree", |b| {
        b.iter(|| interval_tree::IntervalTree::build(data))
    });
    group.bench_function("period_index", |b| {
        b.iter(|| period_index::PeriodIndex::build(data, 100, 4))
    });
    group.bench_function("timeline_index", |b| {
        b.iter(|| timeline_index::TimelineIndex::build_with_spacing(data, 64))
    });
    group.bench_function("grid1d", |b| b.iter(|| grid1d::Grid1D::build(data, 500)));
    group.bench_function("hint_cf_sparse", |b| {
        b.iter(|| hint_core::HintCf::build(data, 20, hint_core::CfLayout::Sparse))
    });
    group.bench_function("hint_m_opt", |b| {
        b.iter(|| hint_core::Hint::build(data, 10))
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
