//! Criterion micro-benchmark backing Figure 13: range-query latency of
//! all six indexes on a BOOKS-shaped clone, at the default 0.1% extent
//! and at stabbing extent.

use bench::datasets;
use bench::experiments::build_all;
use bench::RunConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hint_core::IntervalId;
use workloads::queries::QueryWorkload;
use workloads::realistic::RealDataset;

fn bench_queries(c: &mut Criterion) {
    let cfg = RunConfig {
        scale_mul: 8,
        queries: 256,
        ..RunConfig::default()
    };
    let ds = datasets::real(RealDataset::Books, &cfg);
    let indexes = build_all(&ds, &cfg);

    for (frac, label) in [(0.0, "stab"), (0.001, "extent_0.1pct")] {
        let extent = (ds.domain as f64 * frac) as u64;
        let workload = QueryWorkload::uniform(0, ds.domain - 1, extent, cfg.queries, cfg.seed);
        let mut group = c.benchmark_group(format!("fig13_books/{label}"));
        for (name, _, idx) in &indexes {
            group.bench_with_input(BenchmarkId::from_parameter(name), idx, |b, idx| {
                let mut out: Vec<IntervalId> = Vec::with_capacity(4096);
                let mut i = 0;
                b.iter(|| {
                    let q = workload.queries()[i % workload.len()];
                    i += 1;
                    out.clear();
                    idx.query(q, &mut out);
                    out.len()
                });
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queries
}
criterion_main!(benches);
