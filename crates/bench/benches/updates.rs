//! Criterion micro-benchmark backing Table 10: insertion and deletion
//! cost of the updatable indexes (interval tree, period index, 1D-grid,
//! update-friendly HINT^m, hybrid HINT^m).

use bench::datasets;
use bench::RunConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use hint_core::Interval;
use workloads::realistic::RealDataset;

fn bench_updates(c: &mut Criterion) {
    let cfg = RunConfig {
        scale_mul: 32,
        ..RunConfig::default()
    };
    let ds = datasets::real(RealDataset::Books, &cfg);
    let split = ds.data.len() * 9 / 10;
    let (old, new) = ds.data.split_at(split);
    let domain_max = ds.domain - 1;

    let mut group = c.benchmark_group("table10_inserts_books");
    group.sample_size(10);
    group.bench_function("interval_tree", |b| {
        b.iter_batched(
            || {
                let mut t = interval_tree::IntervalTree::with_domain(0, domain_max);
                for &s in old.iter().take(20_000) {
                    t.insert(s);
                }
                t
            },
            |mut t| {
                for &s in new.iter().take(1_000) {
                    t.insert(s);
                }
                t.len()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("grid1d", |b| {
        b.iter_batched(
            || {
                let mut g = grid1d::Grid1D::with_domain(0, domain_max, 500);
                for &s in old.iter().take(20_000) {
                    g.insert(s);
                }
                g
            },
            |mut g| {
                for &s in new.iter().take(1_000) {
                    g.insert(s);
                }
                g.len()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("subs_sopt_hintm", |b| {
        b.iter_batched(
            || {
                let domain = hint_core::Domain::new(0, domain_max, 10);
                hint_core::HintMSubs::build_with_domain(
                    &old[..20_000.min(old.len())],
                    domain,
                    hint_core::SubsConfig::update_friendly(),
                )
            },
            |mut h| {
                for &s in new.iter().take(1_000) {
                    h.insert(s);
                }
                h.len()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("hybrid_hintm", |b| {
        b.iter_batched(
            || hint_core::HybridHint::new(&old[..20_000.min(old.len())], 0, domain_max, 10),
            |mut h| {
                for &s in new.iter().take(1_000) {
                    h.insert(s);
                }
                h.len()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();

    let mut group = c.benchmark_group("table10_deletes_books");
    group.sample_size(10);
    let victims: Vec<Interval> = old.iter().copied().take(500).collect();
    group.bench_function("subs_sopt_hintm", |b| {
        b.iter_batched(
            || {
                let domain = hint_core::Domain::new(0, domain_max, 10);
                hint_core::HintMSubs::build_with_domain(
                    &old[..20_000.min(old.len())],
                    domain,
                    hint_core::SubsConfig::update_friendly(),
                )
            },
            |mut h| {
                for s in &victims {
                    h.delete(s);
                }
                h.len()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("grid1d", |b| {
        b.iter_batched(
            || {
                let mut g = grid1d::Grid1D::with_domain(0, domain_max, 500);
                for &s in old.iter().take(20_000) {
                    g.insert(s);
                }
                g
            },
            |mut g| {
                for s in &victims {
                    g.delete(s);
                }
                g.len()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
