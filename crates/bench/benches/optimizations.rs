//! Criterion micro-benchmark backing Figures 10-12 and Table 6: the
//! HINT/HINT^m optimization lattice measured head-to-head at a fixed `m`.

use bench::datasets;
use bench::RunConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hint_core::{
    CfLayout, Eval, Hint, HintCf, HintMBase, HintMSubs, HintOptions, IntervalId, SubsConfig,
};
use workloads::queries::QueryWorkload;
use workloads::realistic::RealDataset;

fn bench_optimizations(c: &mut Criterion) {
    let cfg = RunConfig {
        scale_mul: 8,
        ..RunConfig::default()
    };
    let ds = datasets::real(RealDataset::Books, &cfg);
    let m = 10;
    let extent = (ds.domain as f64 * 0.001) as u64;
    let workload = QueryWorkload::uniform(0, ds.domain - 1, extent, 256, cfg.seed);
    let run = |idx: &dyn hint_core::IntervalIndex, q_i: &mut usize, out: &mut Vec<IntervalId>| {
        let q = workload.queries()[*q_i % workload.len()];
        *q_i += 1;
        out.clear();
        idx.query(q, out);
        out.len()
    };

    // Figure 10: base HINT^m, top-down vs bottom-up
    {
        let idx = HintMBase::build(&ds.data, m);
        let mut group = c.benchmark_group("fig10_eval_strategy");
        for eval in [Eval::TopDown, Eval::BottomUp] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{eval:?}")),
                &eval,
                |b, &eval| {
                    let mut out = Vec::with_capacity(4096);
                    let mut i = 0;
                    b.iter(|| {
                        let q = workload.queries()[i % workload.len()];
                        i += 1;
                        out.clear();
                        idx.query_with(q, eval, &mut out);
                        out.len()
                    });
                },
            );
        }
        group.finish();
    }

    // Figure 11: subdivision/sort/sopt lattice
    {
        let mut group = c.benchmark_group("fig11_subdivisions");
        let base = HintMBase::build(&ds.data, m);
        group.bench_function("base", |b| {
            let mut out = Vec::with_capacity(4096);
            let mut i = 0;
            b.iter(|| run(&base, &mut i, &mut out));
        });
        for (name, sc) in [
            (
                "subs+sort",
                SubsConfig {
                    sort: true,
                    sopt: false,
                },
            ),
            (
                "subs+sopt",
                SubsConfig {
                    sort: false,
                    sopt: true,
                },
            ),
            (
                "subs+sort+sopt",
                SubsConfig {
                    sort: true,
                    sopt: true,
                },
            ),
        ] {
            let idx = HintMSubs::build(&ds.data, m, sc);
            group.bench_function(name, |b| {
                let mut out = Vec::with_capacity(4096);
                let mut i = 0;
                b.iter(|| run(&idx, &mut i, &mut out));
            });
        }
        group.finish();
    }

    // Figure 12: sparse/columnar lattice
    {
        let mut group = c.benchmark_group("fig12_storage");
        for (name, opts) in [
            (
                "skew_sparsity",
                HintOptions {
                    sparse: true,
                    columnar: false,
                },
            ),
            (
                "cache_misses",
                HintOptions {
                    sparse: false,
                    columnar: true,
                },
            ),
            (
                "all",
                HintOptions {
                    sparse: true,
                    columnar: true,
                },
            ),
        ] {
            let idx = Hint::build_with_options(&ds.data, m, opts);
            group.bench_function(name, |b| {
                let mut out = Vec::with_capacity(4096);
                let mut i = 0;
                b.iter(|| run(&idx, &mut i, &mut out));
            });
        }
        group.finish();
    }

    // Table 6: comparison-free HINT, dense vs sparse
    {
        let bits = (64 - (ds.domain - 1).leading_zeros()).min(21);
        let mut group = c.benchmark_group("table6_hint_cf");
        for (name, layout) in [("dense", CfLayout::Dense), ("sparse", CfLayout::Sparse)] {
            let idx = HintCf::build(&ds.data, bits, layout);
            group.bench_function(name, |b| {
                let mut out = Vec::with_capacity(4096);
                let mut i = 0;
                b.iter(|| run(&idx, &mut i, &mut out));
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_optimizations
}
criterion_main!(benches);
