//! Criterion micro-benchmark backing Figure 14: HINT^m vs the strongest
//! competitors on synthetic data, sweeping the Zipf length exponent `α`
//! and the query extent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hint_core::IntervalId;
use workloads::queries::{QueryGen, QueryWorkload};
use workloads::synthetic::SyntheticConfig;

fn bench_synthetic(c: &mut Criterion) {
    let base = SyntheticConfig {
        cardinality: 200_000,
        ..SyntheticConfig::default()
    };

    let mut group = c.benchmark_group("fig14_alpha");
    for alpha in [1.01, 1.2, 1.8] {
        let data = SyntheticConfig { alpha, ..base }.generate();
        let workload =
            QueryWorkload::with_extent_fraction(QueryGen::DataFollowing, &data, 0.001, 256, 42);
        let hint = hint_core::Hint::build(&data, 14);
        let tree = interval_tree::IntervalTree::build(&data);
        group.bench_with_input(BenchmarkId::new("hint_m", alpha), &(), |b, ()| {
            let mut out: Vec<IntervalId> = Vec::with_capacity(4096);
            let mut i = 0;
            b.iter(|| {
                let q = workload.queries()[i % workload.len()];
                i += 1;
                out.clear();
                hint.query(q, &mut out);
                out.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("interval_tree", alpha), &(), |b, ()| {
            let mut out: Vec<IntervalId> = Vec::with_capacity(4096);
            let mut i = 0;
            b.iter(|| {
                let q = workload.queries()[i % workload.len()];
                i += 1;
                out.clear();
                tree.query(q, &mut out);
                out.len()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig14_extent");
    let data = base.generate();
    let hint = hint_core::Hint::build(&data, 14);
    for extent in [0.0001, 0.001, 0.01] {
        let workload =
            QueryWorkload::with_extent_fraction(QueryGen::DataFollowing, &data, extent, 256, 42);
        group.bench_with_input(BenchmarkId::new("hint_m", extent), &(), |b, ()| {
            let mut out: Vec<IntervalId> = Vec::with_capacity(4096);
            let mut i = 0;
            b.iter(|| {
                let q = workload.queries()[i % workload.len()];
                i += 1;
                out.clear();
                hint.query(q, &mut out);
                out.len()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_synthetic
}
criterion_main!(benches);
