//! Snapshot durability study (beyond the paper's figures): what a
//! crash-safe snapshot costs to write and what restoring one saves
//! over rebuilding the index from raw intervals.
//!
//! For TAXIS clones at two scales the experiment times (a) the sealed
//! sharded build from raw data — the recovery path a process without
//! snapshots is stuck with, (b) `Session::snapshot` — columnar encode,
//! chunked write, fsync, atomic rename, and (c) repeated
//! `Session::restore` bulk-loads of the same file, reporting save
//! bandwidth, best and p99 restore latency, and the restore-vs-rebuild
//! speedup. Before anything is timed the restored twin is asserted
//! result-identical to the live session on a query window.
//!
//! Writes `BENCH_snapshot.json`.

use crate::datasets::{self, Dataset};
use crate::experiments::{model_m, rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::{mb, time};
use crate::RunConfig;
use hint_core::{
    Domain, HintMSubs, IntervalId, IntervalIndex, RangeQuery, Session, ShardedIndex, SubsConfig,
};
use std::fmt::Write as _;
use workloads::realistic::RealDataset;

/// Shards in the pooled index (matches the serve/retune setup).
const SHARDS: usize = 4;

/// Restore repetitions per scale; best and p99 reported.
const RESTORES: usize = 20;

/// Queries in the restored-twin identity window.
const WINDOW: usize = 64;

fn build_sharded(ds: &Dataset, shard_m: u32) -> ShardedIndex<HintMSubs> {
    let mut idx =
        ShardedIndex::build_with_domain(&ds.data, 0, ds.domain - 1, SHARDS, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, shard_m), SubsConfig::full())
        });
    idx.seal();
    idx
}

/// Sorted result sets of one batched window through a session's pool —
/// the restored-twin identity witness.
fn window_results(window: &[RangeQuery], session: &Session<HintMSubs>) -> Vec<Vec<IntervalId>> {
    let mut bufs: Vec<Vec<IntervalId>> = window.iter().map(|_| Vec::new()).collect();
    session.query_batch_merge(window, &mut bufs);
    for v in &mut bufs {
        v.sort_unstable();
    }
    bufs
}

/// Runs the experiment and writes `BENCH_snapshot.json`.
pub fn run(cfg: &RunConfig) {
    println!("== Crash-safe snapshot: save bandwidth + restore vs rebuild (K = {SHARDS}) ==");
    let path =
        std::env::temp_dir().join(format!("hint-bench-snapshot-{}.snap", std::process::id()));
    println!(
        "\n{:>8} {:>9} {:>9} {:>9} {:>9} {:>11} {:>10} {:>10}",
        "dataset", "n", "snap MB", "save s", "MB/s", "restore s", "p99 s", "vs build"
    );
    rule(82);
    let mut rows = String::new();
    for scale in [1u64, 4] {
        let ds = datasets::real(
            RealDataset::Taxis,
            &RunConfig {
                scale_mul: cfg.scale_mul * scale,
                ..*cfg
            },
        );
        let m = model_m(&ds, DEFAULT_EXTENT, cfg.max_m);
        let shard_m = m.saturating_sub(SHARDS.trailing_zeros()).max(1);
        // (a) rebuild-from-raw-data: the no-snapshot recovery baseline —
        // the full path back to a serving session (build + pool spawn),
        // the same endpoint `Session::restore` is timed to below
        let (build_s, mut session) = time(|| Session::new(build_sharded(&ds, shard_m)));
        // (b) the durable save: encode + chunked write + fsync + rename
        let (save_s, saved) = time(|| session.snapshot(&path).expect("snapshot save"));
        // (c) repeated restores of the same file
        let mut restores = Vec::with_capacity(RESTORES);
        let mut restored = None;
        for _ in 0..RESTORES {
            let (t, s) = time(|| Session::restore(&path).expect("snapshot restore"));
            restores.push(t);
            restored = Some(s);
        }
        let restored = restored.expect("RESTORES >= 1");
        // identity before arithmetic: live count + a sorted query window
        assert_eq!(restored.len(), session.len(), "restored live count drift");
        let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
        let window = &queries.queries()[..WINDOW.min(queries.queries().len())];
        assert_eq!(
            window_results(window, &session),
            window_results(window, &restored),
            "restored twin diverged from the live session"
        );
        restores.sort_by(f64::total_cmp);
        let best = restores[0];
        let p99 = restores[((RESTORES * 99).div_ceil(100)).clamp(1, RESTORES) - 1];
        let save_mb_s = mb(saved as usize) / save_s.max(1e-12);
        let speedup = build_s / best.max(1e-12);
        println!(
            "{:>8} {:>9} {:>9.2} {:>9.4} {:>9.0} {:>11.4} {:>10.4} {:>9.1}x",
            ds.name,
            ds.data.len(),
            mb(saved as usize),
            save_s,
            save_mb_s,
            best,
            p99,
            speedup,
        );
        if speedup < 1.0 {
            println!("  !! restoring the snapshot lost to rebuilding from raw data");
        }
        if !rows.is_empty() {
            rows.push(',');
        }
        write!(
            rows,
            "\n    {{\"dataset\": \"{}\", \"n\": {}, \"shards\": {}, \"snapshot_bytes\": {}, \
             \"save_s\": {:.6}, \"save_mb_s\": {:.1}, \"build_s\": {:.6}, \
             \"restore_best_s\": {:.6}, \"restore_p99_s\": {:.6}, \"restore_samples\": {}, \
             \"restore_vs_rebuild\": {:.3}}}",
            ds.name,
            ds.data.len(),
            SHARDS,
            saved,
            save_s,
            save_mb_s,
            build_s,
            best,
            p99,
            RESTORES,
            speedup,
        )
        .unwrap();
    }
    let _ = std::fs::remove_file(&path);
    let json = format!(
        "{{\n  \"experiment\": \"snapshot\",\n  \"workload\": \"durable save bandwidth and \
         restore latency vs rebuild-from-raw-data, TAXIS at two scales\",\n  \
         \"config\": {{\"scale_mul\": {}, \"queries\": {}, \"max_m\": {}, \"seed\": {}, \
         \"shards\": {}, \"restore_samples\": {}}},\n  \"scales\": [{}\n  ]\n}}\n",
        cfg.scale_mul, cfg.queries, cfg.max_m, cfg.seed, SHARDS, RESTORES, rows,
    );
    match std::fs::write("BENCH_snapshot.json", &json) {
        Ok(()) => println!("\nwrote BENCH_snapshot.json"),
        Err(e) => eprintln!("\ncould not write BENCH_snapshot.json: {e}"),
    }
}
