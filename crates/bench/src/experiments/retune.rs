//! Pool-dispatch + serve-time re-tuning study (beyond the paper's
//! figures): the PR 5 persistent shard-worker pool against the PR 3
//! per-batch scoped fan-out, and adaptive per-shard `m` re-tuning
//! against a mis-tuned baseline on a skewed query-extent mix.
//!
//! **Part 1 — dispatch.** The same sealed `ShardedIndex` (TAXIS clone,
//! K = 4) answers the same batched enumeration workload three ways:
//!
//! * **inline** — `query_batch_merge` at the machine's own worker cap
//!   (on a single-core host this degenerates to the zero-spawn inline
//!   walk: the floor);
//! * **scoped** — the PR 3 fan-out with one thread *spawned per batch*
//!   per active shard (`query_batch_merge_workers` forced to K), the
//!   multi-core path whose per-batch spawn cost the pool eliminates;
//! * **pool** — the persistent, optionally core-pinned shard workers
//!   (`ShardPool::query_batch_merge`), batches dispatched over channels.
//!
//! Results are asserted bit-identical across all three before anything
//! is timed.
//!
//! **Part 2 — re-tune.** A deliberately coarse hierarchy (`m = 5`) is
//! built per shard and served a stab-heavy mix it is mis-tuned for; the
//! session observes the mix, the shards are dirtied, and a reseal under
//! `RetunePolicy::OnSeal` rebuilds each at the cost model's `m` for the
//! observed histogram. Throughput is measured before and after at
//! asserted-identical result sets, and every re-tune move is recorded.
//!
//! Writes `BENCH_retune.json`.

use crate::datasets::{self, Dataset};
use crate::experiments::{model_m, rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::{
    batched_throughput_with, merge_batch_throughput, pool_batch_throughput, scoped_batch_throughput,
};
use crate::RunConfig;
use hint_core::{
    Domain, HintMSubs, Interval, IntervalId, IntervalIndex, RangeQuery, RetunePolicy, Session,
    ShardPool, ShardedIndex, SubsConfig,
};
use std::fmt::Write as _;
use workloads::realistic::RealDataset;

/// Shards in the pooled index (matches the serve/shardscale setup).
const SHARDS: usize = 4;

/// Batch size for the batched columns (matches `cachelayout`).
const BATCH: usize = 64;

/// Repetitions per measurement; best run reported.
const REPEATS: usize = 3;

/// The deliberately mis-tuned per-shard `m` of the re-tune baseline.
const COARSE_M: u32 = 5;

fn best_of(mut f: impl FnMut() -> crate::measure::Throughput) -> crate::measure::Throughput {
    let mut best = f();
    for _ in 1..REPEATS {
        let t = f();
        assert_eq!(t.results, best.results, "nondeterministic measurement");
        if t.qps > best.qps {
            best = t;
        }
    }
    best
}

fn taxis(cfg: &RunConfig) -> Dataset {
    // same ×4 sizing as shardscale, so the two baselines stay comparable
    datasets::real(
        RealDataset::Taxis,
        &RunConfig {
            scale_mul: cfg.scale_mul * 4,
            ..*cfg
        },
    )
}

fn build_sharded(ds: &Dataset, shard_m: impl Fn(u64, u64) -> u32) -> ShardedIndex<HintMSubs> {
    let mut idx =
        ShardedIndex::build_with_domain(&ds.data, 0, ds.domain - 1, SHARDS, |s, lo, hi| {
            HintMSubs::build_with_domain(
                s,
                Domain::new(lo, hi, shard_m(lo, hi)),
                SubsConfig::full(),
            )
        });
    idx.seal();
    idx
}

/// Sorted result sets of one batched window — the bit-identity witness.
fn window_results<F: FnMut(&[RangeQuery], &mut [Vec<IntervalId>])>(
    queries: &[RangeQuery],
    mut run: F,
) -> Vec<Vec<IntervalId>> {
    let mut out = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(BATCH) {
        let mut bufs: Vec<Vec<IntervalId>> = chunk.iter().map(|_| Vec::new()).collect();
        run(chunk, &mut bufs);
        out.extend(bufs);
    }
    for v in &mut out {
        v.sort_unstable();
    }
    out
}

/// Runs the experiment and writes `BENCH_retune.json`.
pub fn run(cfg: &RunConfig) {
    println!("== Pool dispatch vs scoped fan-out + serve-time m re-tuning (K = {SHARDS}) ==");
    let ds = taxis(cfg);
    let m = model_m(&ds, DEFAULT_EXTENT, cfg.max_m);
    let shard_m = m.saturating_sub(SHARDS.trailing_zeros()).max(1);
    println!(
        "\n[{} | n={} m={} (m_shard={}) domain={}]",
        ds.name,
        ds.data.len(),
        m,
        shard_m,
        ds.domain
    );

    // ---- part 1: dispatch --------------------------------------------
    let index = build_sharded(&ds, |_, _| shard_m);
    let pool = ShardPool::new(index.clone());
    let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
    // bit-identity across all three executors, asserted before timing
    let want = window_results(
        &queries.queries()[..BATCH.min(queries.queries().len())],
        |c, b| index.query_batch_merge(c, b),
    );
    let scoped = window_results(
        &queries.queries()[..BATCH.min(queries.queries().len())],
        |c, b| index.query_batch_merge_workers(c, b, SHARDS),
    );
    let pooled = window_results(
        &queries.queries()[..BATCH.min(queries.queries().len())],
        |c, b| pool.query_batch_merge(c, b),
    );
    assert_eq!(want, scoped, "scoped fan-out diverged from inline");
    assert_eq!(want, pooled, "pool dispatch diverged from inline");

    let inline = best_of(|| merge_batch_throughput(&index, queries.queries(), BATCH));
    let scoped = best_of(|| scoped_batch_throughput(&index, queries.queries(), BATCH, SHARDS));
    let pooled = best_of(|| pool_batch_throughput(&pool, queries.queries(), BATCH));
    assert_eq!(inline.results, scoped.results, "scoped result drift");
    assert_eq!(inline.results, pooled.results, "pool result drift");
    println!(
        "\n{:>10} {:>14} {:>14} {:>14} {:>16} {:>10}",
        "extent", "inline q/s", "scoped q/s", "pool q/s", "pool/scoped", "results"
    );
    rule(84);
    println!(
        "{:>9.2}% {:>14.0} {:>14.0} {:>14.0} {:>15.2}x {:>10}",
        DEFAULT_EXTENT * 100.0,
        inline.qps,
        scoped.qps,
        pooled.qps,
        pooled.qps / scoped.qps.max(1e-9),
        inline.results,
    );
    if pooled.qps < scoped.qps {
        println!("  !! pool dispatch lost to the per-batch scoped fan-out");
    }
    let dispatch_row = format!(
        "\n    {{\"dataset\": \"{}\", \"extent\": {}, \"shards\": {}, \"batch\": {}, \
         \"inline_qps\": {:.1}, \"scoped_qps\": {:.1}, \"pool_qps\": {:.1}, \
         \"pool_vs_scoped\": {:.3}, \"results\": {}}}",
        ds.name,
        DEFAULT_EXTENT,
        SHARDS,
        BATCH,
        inline.qps,
        scoped.qps,
        pooled.qps,
        pooled.qps / scoped.qps.max(1e-9),
        inline.results,
    );
    drop(pool);

    // ---- part 2: re-tune ---------------------------------------------
    // a stab-heavy mix (extent 0) against shards built at a coarse m:
    // boundary partitions hold n / 2^COARSE_M intervals each, so every
    // stab pays a long comparison scan the model knows how to shrink
    let coarse = build_sharded(&ds, |_, _| COARSE_M);
    let mut session = Session::with_retune(coarse, RetunePolicy::OnSeal);
    let stabs: Vec<RangeQuery> = uniform_queries(&ds, 0.0, cfg)
        .queries()
        .iter()
        .map(|q| RangeQuery::stab(q.st))
        .collect();
    // reference results (sorted: a re-tuned shard may emit in a
    // different within-shard order)
    let before_sets = window_results(&stabs[..BATCH.min(stabs.len())], |c, b| {
        session.query_batch_merge(c, b)
    });
    let before = best_of(|| {
        batched_throughput_with(&stabs, BATCH, |chunk, bufs| {
            session.query_batch_merge(chunk, bufs)
        })
    });
    // dirty every shard, then reseal: the session re-tunes each against
    // its observed (stab-only) histogram
    for (j, &(lo, _)) in session.pool().shard_bounds().to_vec().iter().enumerate() {
        session
            .try_insert(Interval::new(3_000_000_000 + j as u64, lo, lo))
            .unwrap();
    }
    assert!(session.seal_if_dirty());
    let events: Vec<(usize, u32, u32)> = session
        .retunes()
        .iter()
        .map(|e| (e.shard, e.from, e.to))
        .collect();
    println!("\nretune events (shard: m -> m'):");
    for (j, from, to) in &events {
        println!("  shard {j}: {from} -> {to}");
    }
    if events.is_empty() {
        println!("  (none — the model kept m = {COARSE_M})");
    }
    // the inserted stabs are part of the post-retune truth; fold them
    // into the expectation before asserting identity
    let after_sets = window_results(&stabs[..BATCH.min(stabs.len())], |c, b| {
        session.query_batch_merge(c, b)
    });
    let bounds = session.pool().shard_bounds().to_vec();
    for (i, q) in stabs[..before_sets.len()].iter().enumerate() {
        let mut want = before_sets[i].clone();
        for (j, &(lo, _)) in bounds.iter().enumerate() {
            if q.st == lo {
                want.push(3_000_000_000 + j as u64);
                want.sort_unstable();
            }
        }
        assert_eq!(after_sets[i], want, "retune changed results on {q:?}");
    }
    let after = best_of(|| {
        batched_throughput_with(&stabs, BATCH, |chunk, bufs| {
            session.query_batch_merge(chunk, bufs)
        })
    });
    println!(
        "\n{:>12} {:>14} {:>14} {:>10}",
        "mix", "untuned q/s", "retuned q/s", "speedup"
    );
    rule(56);
    println!(
        "{:>12} {:>14.0} {:>14.0} {:>9.2}x",
        "stab-only",
        before.qps,
        after.qps,
        after.qps / before.qps.max(1e-9),
    );
    if after.qps < before.qps {
        println!("  !! retuned m lost to the untuned baseline");
    }
    let mut event_json = String::new();
    for (j, from, to) in &events {
        if !event_json.is_empty() {
            event_json.push(',');
        }
        write!(
            event_json,
            "{{\"shard\": {j}, \"from\": {from}, \"to\": {to}}}"
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"experiment\": \"retune\",\n  \"workload\": \"pool dispatch vs scoped fan-out; \
         adaptive per-shard m on a stab-only mix vs a coarse baseline\",\n  \
         \"config\": {{\"scale_mul\": {}, \"queries\": {}, \"max_m\": {}, \"seed\": {}, \
         \"shards\": {}, \"batch\": {}, \"repeats\": {}, \"coarse_m\": {}}},\n  \
         \"dispatch\": [{}\n  ],\n  \"retune\": {{\"dataset\": \"{}\", \"mix\": \"stab\", \
         \"untuned_qps\": {:.1}, \"retuned_qps\": {:.1}, \"speedup\": {:.3}, \
         \"events\": [{}]}}\n}}\n",
        cfg.scale_mul,
        cfg.queries,
        cfg.max_m,
        cfg.seed,
        SHARDS,
        BATCH,
        REPEATS,
        COARSE_M,
        dispatch_row,
        ds.name,
        before.qps,
        after.qps,
        after.qps / before.qps.max(1e-9),
        event_json,
    );
    match std::fs::write("BENCH_retune.json", &json) {
        Ok(()) => println!("\nwrote BENCH_retune.json"),
        Err(e) => eprintln!("\ncould not write BENCH_retune.json: {e}"),
    }
}
