//! Table 10: mixed query/update workload — 10K range queries (0.1%
//! extent), 5K insertions, 1K deletions over an index pre-filled with 90%
//! of the dataset (BOOKS and TAXIS clones).
//!
//! Competitors: interval tree, period index, 1D-grid, the update-friendly
//! `subs+sopt` HINT^m, and the hybrid HINT^m (optimized main + delta,
//! §4.4). Expected shape: both HINT^m variants lead queries by ~4-10x and
//! keep insert/delete throughput competitive; the interval tree pays for
//! sorted-list maintenance; the hybrid setting wins the total cost.

use crate::datasets;
use crate::experiments::{competitor_params, model_m, rule, DEFAULT_EXTENT};
use crate::RunConfig;
use hint_core::{Interval, IntervalId, RangeQuery};
use std::time::Instant;
use workloads::queries::QueryWorkload;
use workloads::realistic::RealDataset;

/// Per-index outcome of the mixed workload.
struct Row {
    name: &'static str,
    queries_ps: f64,
    inserts_ps: f64,
    deletes_ps: f64,
    total_s: f64,
}

/// Abstracts the five updatable competitors.
trait Updatable {
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>);
    fn insert(&mut self, s: Interval);
    fn delete(&mut self, s: &Interval) -> bool;
}

macro_rules! impl_updatable {
    ($ty:ty) => {
        impl Updatable for $ty {
            fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
                <$ty>::query(self, q, out)
            }
            fn insert(&mut self, s: Interval) {
                <$ty>::insert(self, s)
            }
            fn delete(&mut self, s: &Interval) -> bool {
                <$ty>::delete(self, s)
            }
        }
    };
}

impl_updatable!(interval_tree::IntervalTree);
impl_updatable!(period_index::PeriodIndex);
impl_updatable!(grid1d::Grid1D);
impl_updatable!(hint_core::HintMSubs);
impl_updatable!(hint_core::HybridHint);

fn run_mixed(
    idx: &mut dyn Updatable,
    name: &'static str,
    queries: &QueryWorkload,
    inserts: &[Interval],
    deletes: &[Interval],
) -> Row {
    let mut out = Vec::new();
    let t0 = Instant::now();
    for &q in queries.queries() {
        out.clear();
        idx.query(q, &mut out);
    }
    let tq = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for &s in inserts {
        idx.insert(s);
    }
    let ti = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for s in deletes {
        idx.delete(s);
    }
    let td = t0.elapsed().as_secs_f64();

    Row {
        name,
        queries_ps: queries.len() as f64 / tq.max(1e-9),
        inserts_ps: inserts.len() as f64 / ti.max(1e-9),
        deletes_ps: deletes.len() as f64 / td.max(1e-9),
        total_s: tq + ti + td,
    }
}

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    println!("== Table 10: mixed workload (queries + inserts + deletes) ==");
    for ds_kind in [RealDataset::Books, RealDataset::Taxis] {
        let ds = datasets::real(ds_kind, cfg);
        let n = ds.data.len();
        let split = n * 9 / 10;
        let (old, new) = ds.data.split_at(split);
        let inserts: Vec<Interval> = new.iter().copied().take(cfg.queries / 2).collect();
        let deletes: Vec<Interval> = old.iter().copied().take(cfg.queries / 10).collect();
        let queries = {
            let extent = (ds.domain as f64 * DEFAULT_EXTENT) as u64;
            QueryWorkload::uniform(0, ds.domain - 1, extent, cfg.queries, cfg.seed)
        };
        let params = competitor_params(ds.name, n);
        let m = model_m(&ds, DEFAULT_EXTENT, cfg.max_m);

        println!(
            "\n[{} | prefill={} inserts={} deletes={} queries={}]",
            ds.name,
            split,
            inserts.len(),
            deletes.len(),
            queries.len()
        );
        println!(
            "{:>18} {:>12} {:>14} {:>14} {:>12}",
            "index", "queries/s", "inserts/s", "deletes/s", "total [s]"
        );
        rule(74);

        let mut rows = Vec::new();
        {
            let mut idx = interval_tree::IntervalTree::with_domain(0, ds.domain - 1);
            for &s in old {
                idx.insert(s);
            }
            rows.push(run_mixed(
                &mut idx,
                "Interval tree",
                &queries,
                &inserts,
                &deletes,
            ));
        }
        {
            let mut idx = period_index::PeriodIndex::with_domain(
                0,
                ds.domain - 1,
                params.period_p,
                params.period_levels,
            );
            for &s in old {
                idx.insert(s);
            }
            rows.push(run_mixed(&mut idx, "Period", &queries, &inserts, &deletes));
        }
        {
            let mut idx = grid1d::Grid1D::with_domain(0, ds.domain - 1, params.grid_p);
            for &s in old {
                idx.insert(s);
            }
            rows.push(run_mixed(&mut idx, "1D-grid", &queries, &inserts, &deletes));
        }
        {
            let domain = hint_core::Domain::new(0, ds.domain - 1, m);
            let mut idx = hint_core::HintMSubs::build_with_domain(
                old,
                domain,
                hint_core::SubsConfig::update_friendly(),
            );
            rows.push(run_mixed(
                &mut idx,
                "subs+sopt HINT^m",
                &queries,
                &inserts,
                &deletes,
            ));
        }
        {
            let mut idx = hint_core::HybridHint::new(old, 0, ds.domain - 1, m);
            rows.push(run_mixed(
                &mut idx,
                "HINT^m (hybrid)",
                &queries,
                &inserts,
                &deletes,
            ));
        }
        for r in rows {
            println!(
                "{:>18} {:>12.0} {:>14.0} {:>14.0} {:>12.2}",
                r.name, r.queries_ps, r.inserts_ps, r.deletes_ps, r.total_s
            );
        }
    }
}
