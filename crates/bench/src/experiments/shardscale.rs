//! Shard-scaling study (beyond the paper's figures): query throughput of
//! the `ShardedIndex` parallel executor vs shard count.
//!
//! PR 2's sealed CSR arenas made every HINT^m variant immutable and
//! trivially shardable by domain range; this experiment quantifies the
//! serving-side payoff. The domain is split into K ∈ {1, 2, 4, 8}
//! contiguous shards (boundary-crossing intervals replicated with
//! dedup-on-emit), and batches of queries fan out with one thread per
//! shard, per-shard results merged back in shard order.
//!
//! Four execution modes per (dataset, extent, K):
//!
//! * **solo** — sequential `query_sink`, shards visited in order: the
//!   routing overhead floor (no parallelism; should stay flat with K);
//! * **batch** — the trait-level parallel `query_batch` (per-shard
//!   thread-local buffers merged via `emit_slice`), materializing every
//!   result into per-query `Vec`s;
//! * **merge** — the typed `query_batch_merge` fast path with zero-copy
//!   `HandleSink` forks: comparison-free runs cross the fork/merge
//!   boundary as arena-slice handles and nothing is materialized — the
//!   shape the wire server drives (its `WireSink` encodes frames
//!   straight from the arena slices). An untimed in-run differential
//!   pins every query's materialized handle stream to the solo path's
//!   exact id sequence;
//! * **count** — `query_batch_merge` with `CountSink` forks: the pure
//!   cost of the sharded level walks, no result copying at all;
//! * **pool** — the same batch through the persistent shard-worker
//!   pool (`ShardPool::query_batch_merge`): every sub-batch takes a
//!   channel round-trip to its shard's owning worker;
//! * **rep4** — the pool with four logical read replicas per shard
//!   (`HINT_READ_REPLICAS=4` shape): reads answer from epoch-published
//!   shard images — on spare cores via dedicated reader threads, on a
//!   single core caller-inline with zero channel hops. An untimed
//!   in-run differential asserts the replicated answers are
//!   bit-identical to solo, and `replica_vs_pool` in the JSON tracks
//!   the read-scaling payoff.
//!
//! A fifth column measures **batched ingest**: a burst of time-ordered
//! appends (landing at the top of the domain, as streaming interval data
//! does) followed by a reseal that folds the overlay back into the
//! arenas. Writes route to the single owning shard and resealing a clean
//! shard is free, so the reseal — the dominant cost — touches `n/K`
//! entries instead of `n`: ingest throughput scales near-linearly with
//! the shard count, on any hardware, with no thread parallelism
//! involved. This is the sharded executor's headline single-core win;
//! on multi-core hardware the query columns additionally scale through
//! the thread fan-out (cap with `HINT_SHARD_THREADS`), and per-shard
//! hierarchies are `log2 K` levels shallower at the same
//! bottom-partition width (`m_shard = m - log2 K`) so walk-bound query
//! batches lean out as K grows.
//!
//! The synthetic workload is the adversarial control: centre-heavy
//! normal positions put half the intervals across one shard boundary,
//! so replication (and replica filtering on emit) prices the worst case.
//!
//! Besides the printed table, the run writes a machine-readable baseline
//! to `BENCH_shardscale.json` so the scaling trajectory is tracked
//! across commits.

use crate::datasets::{self, Dataset};
use crate::experiments::{model_m, rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::{
    assert_handle_merge_matches_solo, batch_throughput, mb, merge_count_throughput,
    merge_handle_throughput, pool_batch_throughput, query_throughput, time,
};
use crate::RunConfig;
use hint_core::{Domain, HintMSubs, IntervalIndex, ShardPool, ShardedIndex, SubsConfig};
use std::fmt::Write as _;
use workloads::realistic::RealDataset;
use workloads::synthetic::SyntheticConfig;

/// Shard counts swept by the experiment.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Query-extent fractions: stabbing queries (pure level-walk cost, where
/// the shards' shallower hierarchies pay directly), the paper's 0.1%
/// default, and a result-copy-heavy 1%.
const EXTENTS: [f64; 3] = [0.0, DEFAULT_EXTENT, 0.01];

/// Batch size for the batched columns (matches `cachelayout`).
const BATCH: usize = 64;

/// Logical read replicas per shard for the replicated-pool column
/// (the `HINT_READ_REPLICAS=4` shape). Reader threads are sized
/// against the machine's worker budget; on a single core the replicas
/// degenerate to caller-inline epoch reads — the honest single-core
/// payoff being measured: reads skip the owner worker's channel
/// round-trip entirely.
const READ_REPLICAS: usize = 4;

/// Repetitions per measurement; the best run is reported (standard
/// anti-noise discipline for shared/virtualized CPUs, where a single
/// run can be off by ±30% from scheduler steal and frequency shifts).
const REPEATS: usize = 3;

/// Best-of-[`REPEATS`] wrapper around a throughput measurement.
fn best_of(mut f: impl FnMut() -> crate::measure::Throughput) -> crate::measure::Throughput {
    let mut best = f();
    for _ in 1..REPEATS {
        let t = f();
        assert_eq!(t.results, best.results, "nondeterministic measurement");
        if t.qps > best.qps {
            best = t;
        }
    }
    best
}

/// The two workloads: a TAXIS-style clone (short intervals — the
/// sharding-friendly shape) and the Table-5 synthetic generator
/// (Zipfian lengths, normal positions — a harder, centre-heavy shape).
fn workloads(cfg: &RunConfig) -> Vec<Dataset> {
    // ×4 on top of the run scale: sized so the per-shard sealed arenas
    // cross under a typical L2 (~2 MB) within the K sweep — the
    // cache-blocking regime domain sharding serves (see module docs)
    let taxis = datasets::real(
        RealDataset::Taxis,
        &RunConfig {
            scale_mul: cfg.scale_mul * 4,
            ..*cfg
        },
    );
    let syn_cfg = SyntheticConfig {
        cardinality: (1_000_000 / cfg.scale_mul as usize).max(1_000),
        ..SyntheticConfig::default()
    };
    let synth = Dataset {
        name: "SYNTH",
        data: syn_cfg.generate(),
        domain: syn_cfg.domain,
        scale: cfg.scale_mul,
    };
    vec![taxis, synth]
}

/// Runs the experiment and writes `BENCH_shardscale.json`.
pub fn run(cfg: &RunConfig) {
    println!("== Shard scaling: parallel batch executor over sealed HINT^m (K = 1/2/4/8) ==");
    let mut rows = String::new();
    let mut builds = String::new();
    let mut ingests = String::new();
    // CI smoke gate (HINT_READPATH_GATE=1): the merged read path must
    // hold at least 80% of solo throughput at K=4 on every row, or the
    // run exits nonzero — the regression tripwire for the batch
    // planner / tiled walk / zero-copy merge path. The margin is real
    // on both workloads: short-interval TAXIS rides the planner and
    // tiled walk, and SYNTH's centre-heavy Zipfian shape (thousands of
    // ids per query) rides the handle path that keeps those ids from
    // ever being materialized on the merge side.
    let gate = std::env::var("HINT_READPATH_GATE").is_ok_and(|v| v == "1");
    let mut gate_failures: Vec<String> = Vec::new();
    for ds in workloads(cfg) {
        let m = model_m(&ds, DEFAULT_EXTENT, cfg.max_m);
        println!(
            "\n[{} | n={} m={} domain={}]",
            ds.name,
            ds.data.len(),
            m,
            ds.domain
        );
        println!(
            "{:>8} {:>3} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} {:>9} {:>9} {:>10}",
            "extent",
            "K",
            "replicas",
            "solo q/s",
            "batch q/s",
            "merge q/s",
            "count q/s",
            "pool q/s",
            "rep4 q/s",
            "scale",
            "mrg/solo",
            "rep/pool",
            "results"
        );
        rule(142);
        // build (and seal) one sharded index per K up front; each shard
        // keeps the unsharded index's bottom-partition width by dropping
        // log2(K) levels (same resolution, shallower walks — the whole
        // point of giving every shard 1/K of the domain)
        #[allow(clippy::type_complexity)]
        let mut indexes: Vec<(
            usize,
            ShardedIndex<HintMSubs>,
            ShardPool<HintMSubs>,
            ShardPool<HintMSubs>,
        )> = Vec::new();
        for &k in &SHARDS {
            let shard_m = m.saturating_sub(k.trailing_zeros()).max(1);
            let (t_build, sharded) = time(|| {
                let mut idx = ShardedIndex::build_with_domain(
                    &ds.data,
                    0,
                    ds.domain - 1,
                    k,
                    |slice, lo, hi| {
                        HintMSubs::build_with_domain(
                            slice,
                            Domain::new(lo, hi, shard_m),
                            SubsConfig::full(),
                        )
                    },
                );
                idx.seal();
                idx
            });
            if !builds.is_empty() {
                builds.push(',');
            }
            write!(
                builds,
                "\n    {{\"dataset\": \"{}\", \"shards\": {}, \"n\": {}, \"m\": {}, \
                 \"build_s\": {:.6}, \"replicas\": {}, \"bytes\": {}}}",
                ds.name,
                k,
                ds.data.len(),
                m,
                t_build,
                sharded.replicated(),
                sharded.size_bytes(),
            )
            .unwrap();
            println!(
                "  built K={k}: {:.3}s, {} replicas, {:.2} MB",
                t_build,
                sharded.replicated(),
                mb(sharded.size_bytes()),
            );
            // two pooled twins per K: the single-reader worker pool and
            // the epoch-published replicated pool the serve path uses
            // under HINT_READ_REPLICAS
            let pool = ShardPool::new(sharded.clone());
            let rpool = ShardPool::with_read_replicas(sharded.clone(), READ_REPLICAS);
            indexes.push((k, sharded, pool, rpool));
        }
        // batched ingest: a burst of time-ordered appends (top 1/8 of the
        // domain — they land in the last shard for every K in the sweep)
        // followed by a reseal; the reseal only rebuilds the dirty shard
        let burst: Vec<hint_core::Interval> = {
            let width = (ds.domain / 8).max(2);
            let lo = ds.domain - width;
            let n = (ds.data.len() as u64 / 64).max(1_024);
            (0..n)
                .map(|i| {
                    let st = lo + (i.wrapping_mul(7_919)) % (width - 1);
                    hint_core::Interval::new(
                        1_000_000_000 + i,
                        st,
                        (st + i % 64).min(ds.domain - 1),
                    )
                })
                .collect()
        };
        println!(
            "{:>3} {:>14} {:>10}",
            "K", "ingest op/s", "(burst of time-ordered appends + reseal)"
        );
        let mut ingest_rows: Vec<(usize, f64)> = Vec::new();
        for (k, sharded, _, _) in &indexes {
            let ingest = best_of(|| {
                let mut idx = sharded.clone();
                let t0 = std::time::Instant::now();
                for &s in &burst {
                    idx.insert(s);
                }
                idx.seal();
                let secs = t0.elapsed().as_secs_f64().max(1e-9);
                crate::measure::Throughput {
                    qps: burst.len() as f64 / secs,
                    results: idx.len() as u64,
                }
            });
            println!("{:>3} {:>14.0}", k, ingest.qps);
            ingest_rows.push((*k, ingest.qps));
            if !ingests.is_empty() {
                ingests.push(',');
            }
            write!(
                ingests,
                "\n    {{\"dataset\": \"{}\", \"shards\": {}, \"burst\": {}, \
                 \"ingest_ops\": {:.1}, \"scale_vs_k1\": {:.3}}}",
                ds.name,
                k,
                burst.len(),
                ingest.qps,
                ingest.qps / ingest_rows[0].1.max(1e-9),
            )
            .unwrap();
        }
        for extent in EXTENTS {
            let queries = uniform_queries(&ds, extent, cfg);
            let mut base_batch_qps = 0.0f64;
            for (k, sharded, pool, rpool) in &indexes {
                let solo = best_of(|| query_throughput(sharded, queries.queries()));
                let batch = best_of(|| batch_throughput(sharded, queries.queries(), BATCH));
                let merge = best_of(|| merge_handle_throughput(sharded, queries.queries(), BATCH));
                let count = best_of(|| merge_count_throughput(sharded, queries.queries(), BATCH));
                let pooled = best_of(|| pool_batch_throughput(pool, queries.queries(), BATCH));
                let replicated = best_of(|| pool_batch_throughput(rpool, queries.queries(), BATCH));
                assert_eq!(
                    solo.results, batch.results,
                    "{} K={k}: batch diverged",
                    ds.name
                );
                assert_eq!(
                    solo.results, merge.results,
                    "{} K={k}: merge diverged",
                    ds.name
                );
                // untimed: the handle streams must materialize to the
                // exact per-query id sequences the solo path produces
                assert_handle_merge_matches_solo(sharded, queries.queries(), BATCH);
                assert_eq!(
                    solo.results, count.results,
                    "{} K={k}: count diverged",
                    ds.name
                );
                assert_eq!(
                    solo.results, pooled.results,
                    "{} K={k}: worker pool diverged",
                    ds.name
                );
                assert_eq!(
                    solo.results, replicated.results,
                    "{} K={k}: replicated pool diverged",
                    ds.name
                );
                // untimed: the replicated read path must be
                // bit-identical per query, not just total-count equal
                {
                    let mut want: Vec<hint_core::IntervalId> = Vec::new();
                    let mut got: Vec<hint_core::IntervalId> = Vec::new();
                    for &q in queries.queries().iter().take(256) {
                        want.clear();
                        got.clear();
                        sharded.query_sink(q, &mut want);
                        IntervalIndex::query_sink(rpool, q, &mut got);
                        assert_eq!(
                            got, want,
                            "{} K={k}: replicated epoch read diverged on {q:?}",
                            ds.name
                        );
                    }
                }
                if *k == 1 {
                    base_batch_qps = batch.qps;
                }
                let scale = batch.qps / base_batch_qps.max(1e-9);
                let merge_vs_solo = merge.qps / solo.qps.max(1e-9);
                if gate && *k == 4 && merge_vs_solo < 0.8 {
                    gate_failures.push(format!(
                        "{} extent={:.2}% K=4: merge/solo = {:.3} (< 0.8)",
                        ds.name,
                        extent * 100.0,
                        merge_vs_solo
                    ));
                }
                let replica_vs_pool = replicated.qps / pooled.qps.max(1e-9);
                println!(
                    "{:>7.2}% {:>3} {:>10} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>7.2}x {:>8.2}x {:>8.2}x {:>10}",
                    extent * 100.0,
                    k,
                    sharded.replicated(),
                    solo.qps,
                    batch.qps,
                    merge.qps,
                    count.qps,
                    pooled.qps,
                    replicated.qps,
                    scale,
                    merge_vs_solo,
                    replica_vs_pool,
                    solo.results,
                );
                if !rows.is_empty() {
                    rows.push(',');
                }
                write!(
                    rows,
                    "\n    {{\"dataset\": \"{}\", \"extent\": {}, \"shards\": {}, \
                     \"solo_qps\": {:.1}, \"batch_qps\": {:.1}, \"merge_qps\": {:.1}, \
                     \"count_qps\": {:.1}, \"pool_qps\": {:.1}, \"read_replicas\": {}, \
                     \"replica_qps\": {:.1}, \"replica_vs_pool\": {:.3}, \
                     \"scale_vs_k1\": {:.3}, \"merge_vs_solo\": {:.3}, \
                     \"results\": {}}}",
                    ds.name,
                    extent,
                    k,
                    solo.qps,
                    batch.qps,
                    merge.qps,
                    count.qps,
                    pooled.qps,
                    READ_REPLICAS,
                    replicated.qps,
                    replica_vs_pool,
                    scale,
                    merge_vs_solo,
                    solo.results,
                )
                .unwrap();
            }
        }
    }
    if gate {
        if gate_failures.is_empty() {
            println!("read-path gate: OK (merge/solo >= 0.8 at K=4 on every row)");
        } else {
            eprintln!("read-path gate FAILED:");
            for f in &gate_failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"shardscale\",\n  \"workload\": \"enumerate + count, solo vs \
         batched, sharded executor\",\n  \"config\": {{\"scale_mul\": {}, \"queries\": {}, \
         \"max_m\": {}, \"seed\": {}, \"batch\": {}, \"repeats\": {}}},\n  \
         \"builds\": [{}\n  ],\n  \"ingest\": [{}\n  ],\n  \"rows\": [{}\n  ]\n}}\n",
        cfg.scale_mul, cfg.queries, cfg.max_m, cfg.seed, BATCH, REPEATS, builds, ingests, rows
    );
    match std::fs::write("BENCH_shardscale.json", &json) {
        Ok(()) => println!("\nwrote BENCH_shardscale.json"),
        Err(e) => eprintln!("\ncould not write BENCH_shardscale.json: {e}"),
    }
}
