//! Figure 10: top-down vs bottom-up query evaluation on HINT^m, varying
//! `m` (BOOKS and TAXIS clones).
//!
//! Expected shape (paper §5.2.1): bottom-up clearly ahead on BOOKS (long
//! intervals live high in the hierarchy, so the Lemma-2 flag clearing
//! saves real comparisons); near-parity on TAXIS (short intervals sit at
//! the bottom level, higher levels are empty either way).

use crate::datasets;
use crate::experiments::{uniform_queries, DEFAULT_EXTENT};
use crate::measure::query_throughput;
use crate::RunConfig;
use hint_core::hintm::base::{Eval, HintMBase};

/// Runs the experiment and prints one block per dataset.
pub fn run(cfg: &RunConfig) {
    println!("== Figure 10: HINT^m query evaluation, top-down vs bottom-up ==");
    for ds in datasets::opt_study(cfg) {
        let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
        println!("\n[{} | n={} domain={}]", ds.name, ds.data.len(), ds.domain);
        println!(
            "{:>4} {:>18} {:>18}",
            "m", "top-down [q/s]", "bottom-up [q/s]"
        );
        let mut m = 5;
        while m <= cfg.max_m {
            let idx = HintMBase::build(&ds.data, m);
            let mut out = Vec::new();
            let td = {
                let t0 = std::time::Instant::now();
                for &q in queries.queries() {
                    out.clear();
                    idx.query_with(q, Eval::TopDown, &mut out);
                }
                queries.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
            };
            let bu = query_throughput(&idx, queries.queries()).qps;
            let _ = idx.len();
            println!("{m:>4} {td:>18.0} {bu:>18.0}");
            m += 2;
        }
    }
}
