//! Open-loop serving latency study: the adaptive batch-window
//! controller, QoS lanes and admission control under offered load.
//!
//! Unlike the closed-loop `serve` experiment (whose clients wait for
//! replies, so the server can never fall behind), this harness is
//! **open-loop**: every connection sends on a precomputed Poisson
//! arrival schedule regardless of how the server is doing, which is
//! what real front-ends look like and the only way to observe queueing
//! collapse, admission control, and coordinated omission honestly.
//! Latency is measured from each request's *scheduled* send time to its
//! trailer, so sender lag counts against the server, never for it.
//!
//! Three offered loads are swept — comfortable (0.25x), busy (0.6x)
//! and overloaded (1.5x) relative to a closed-loop capacity probe —
//! across the same four scheduler settings as `serve`: static windows
//! 1/16/64 and the adaptive controller. Traffic is mixed per
//! connection: ~80% range enumerations plus top-k, Allen, histogram
//! reads on the served index, and inserts/reseals routed to a side
//! `aux` catalog index so the read results stay comparable across
//! settings. The run pins the window-64 cliff (at low load a static
//! window larger than the in-flight count waits out its full deadline
//! on every batch; the controller must not reproduce that) and checks
//! that shedding engages at overload but never below it.
//!
//! A second scenario isolates the QoS lanes: eight connections flood
//! enumerations while one well-behaved connection issues bounded top-k
//! queries; the bounded connection's p99 with lanes on must beat the
//! same setup with lanes off.
//!
//! Writes `BENCH_latency.json` with one row per (load, setting) plus
//! the two lane-scenario rows.

use crate::datasets::{self, Dataset};
use crate::experiments::{model_m, rule, DEFAULT_EXTENT};
use crate::RunConfig;
use hint_core::{
    AllenRelation, Domain, HintMSubs, Interval, RangeQuery, Session, ShardedIndex, SubsConfig,
};
use serve::proto::encode_request_flagged;
use serve::{
    duplex, Client, DuplexTransport, FrameReader, Kind, Request, ServeConfig, Server, Status,
    Transport,
};
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};
use workloads::realistic::RealDataset;

/// Shards in the served index (matches the `serve` experiment).
const SHARDS: usize = 4;

/// The swept scheduler settings, identical to the `serve` experiment.
fn settings() -> [(&'static str, ServeConfig); 4] {
    [
        ("window-1", ServeConfig::fixed(1, Duration::ZERO)),
        (
            "window-16",
            ServeConfig::fixed(16, Duration::from_micros(200)),
        ),
        (
            "window-64",
            ServeConfig::fixed(64, Duration::from_micros(500)),
        ),
        ("adaptive", ServeConfig::default()),
    ]
}

/// Offered-load multipliers over the measured closed-loop capacity.
const LOADS: [f64; 3] = [0.25, 0.6, 1.5];

/// SplitMix64: the harness's deterministic RNG (schedules and traffic
/// mixes must be identical across settings, so they are seeded per
/// (load, connection) only).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in (0, 1].
fn uniform01(state: &mut u64) -> f64 {
    ((splitmix(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// One scheduled request in a connection's open-loop plan.
enum Planned {
    Query(RangeQuery),
    TopK(RangeQuery),
    Allen(RangeQuery),
    Histogram(RangeQuery, u64),
    /// Routed to the `aux` index: keeps the served reads deterministic.
    Insert(Interval),
    Seal,
}

impl Planned {
    /// True for the verbs the admission gate meters (sheddable).
    fn gated(&self) -> bool {
        !matches!(self, Planned::Insert(_) | Planned::Seal)
    }

    /// The wire form: catalog addressing plus the request itself.
    /// Writes go to the `aux` index.
    fn to_request(&self, aux: u32) -> (Option<u32>, Request) {
        match self {
            Planned::Query(q) => (None, Request::Query(*q)),
            Planned::TopK(q) => (None, Request::TopK { k: 8, q: *q }),
            Planned::Allen(q) => (
                None,
                Request::Allen {
                    rel: AllenRelation::Overlaps,
                    q: *q,
                },
            ),
            Planned::Histogram(q, w) => (None, Request::Histogram { width: *w, q: *q }),
            Planned::Insert(iv) => (Some(aux), Request::Insert(*iv)),
            Planned::Seal => (Some(aux), Request::Seal),
        }
    }
}

/// Draws one request of the traffic mix: ~80% range enumerations, the
/// bounded verbs (top-k / Allen / histogram) at ~14%, and writes
/// (inserts plus the occasional reseal) at ~6%, routed to `aux`.
fn draw_mix(rng: &mut u64, next_id: &mut u64, domain: u64, extent: u64) -> Planned {
    let st = splitmix(rng) % (domain - extent);
    let q = RangeQuery::new(st, st + extent);
    match splitmix(rng) % 100 {
        0..=79 => Planned::Query(q),
        80..=84 => Planned::TopK(q),
        85..=89 => Planned::Allen(q),
        90..=93 => Planned::Histogram(q, (extent / 8).max(1)),
        94..=98 => {
            let len = 1 + splitmix(rng) % 64;
            let iv = Interval::new(*next_id, st, (st + len).min(domain - 1));
            *next_id += 1;
            Planned::Insert(iv)
        }
        // seals are a full rebuild of the (growing) write index plus a
        // scheduler barrier — rare enough that the retune component is
        // present in every run but does not dominate the cost model
        _ if splitmix(rng).is_multiple_of(8) => Planned::Seal,
        _ => {
            let len = 1 + splitmix(rng) % 64;
            let iv = Interval::new(*next_id, st, (st + len).min(domain - 1));
            *next_id += 1;
            Planned::Insert(iv)
        }
    }
}

/// Draws one connection's Poisson schedule and traffic mix:
/// `(offset_us, request)` pairs, exponential inter-arrival gaps at
/// `rate_hz`, running for `duration`.
fn plan(
    seed: u64,
    conn: usize,
    rate_hz: f64,
    duration: Duration,
    domain: u64,
    extent: u64,
) -> Vec<(u64, Planned)> {
    let mut rng = seed ^ ((conn as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut at_us = 0.0f64;
    let horizon_us = duration.as_secs_f64() * 1e6;
    let mut out = Vec::new();
    let mut next_id = (conn as u64 + 1) * 10_000_000;
    loop {
        at_us += -uniform01(&mut rng).ln() * 1e6 / rate_hz;
        if at_us >= horizon_us {
            return out;
        }
        out.push((
            at_us as u64,
            draw_mix(&mut rng, &mut next_id, domain, extent),
        ));
    }
}

/// One (setting, load) measurement cell.
struct Cell {
    offered: f64,
    qps: f64,
    p50: Duration,
    p99: Duration,
    p999: Duration,
    sent: usize,
    shed: usize,
    /// Sum of Ok reply counts on the gated verbs — the cross-setting
    /// determinism check (valid whenever nothing was shed).
    results: u64,
}

/// The `p`-th percentile (0..=100) of a sorted duration slice.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[rank]
}

/// Runs one open-loop cell: a fresh server, `conns` sender/receiver
/// thread pairs on the shared Poisson schedules, aggregate percentiles.
fn measure_open_loop(
    index: &ShardedIndex<HintMSubs>,
    config: ServeConfig,
    plans: &[Vec<(u64, Planned)>],
    domain: u64,
) -> Cell {
    let server = Server::start(Session::new(index.clone()), config).expect("start server");
    // the side index every write targets, created before traffic starts
    let aux = {
        let (c, s) = duplex();
        server.attach(s);
        let mut setup = Client::new(c).expect("setup conn");
        setup
            .create_index("aux", 0, domain - 1)
            .expect("create aux")
    };
    let sent: usize = plans.iter().map(Vec::len).sum();
    // no request is *scheduled* before every sender/receiver thread of
    // the fleet has had time to spawn: on a small machine bringing up
    // 2 x conns threads takes tens of milliseconds, and a connection
    // whose receiver spawns late would book that lag as reply latency
    // (p99-scale noise attributed to whichever setting is measured)
    let warmup = Duration::from_millis(250);
    let t0 = Instant::now() + warmup;
    let per_conn: Vec<(Vec<Duration>, usize, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let (client_end, server_end) = duplex();
                server.attach(server_end);
                let (reader, mut writer) = client_end.split().expect("split");
                // sender: sleep to each scheduled offset, then fire —
                // never waits for replies (open loop)
                scope.spawn(move || {
                    let mut out = bytes::BytesMut::new();
                    for (offset_us, planned) in plan {
                        let at = t0 + Duration::from_micros(*offset_us);
                        if let Some(wait) = at.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        out.clear();
                        let (index, req) = planned.to_request(aux);
                        encode_request_flagged(&mut out, index, false, &req);
                        writer.write_all(out.as_slice()).expect("send");
                        writer.flush().expect("flush");
                    }
                });
                // receiver: pair the FIFO replies back to the schedule
                let mut frames = FrameReader::new(reader);
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(plan.len());
                    let mut shed = 0usize;
                    let mut results = 0u64;
                    for (offset_us, planned) in plan {
                        loop {
                            let f = frames
                                .read_frame()
                                .expect("decode reply")
                                .expect("server closed mid-run");
                            if f.kind != Kind::End {
                                continue; // results chunks
                            }
                            let mut p = f.payload;
                            use bytes::Buf;
                            let status = Status::from_u8(p.get_u8());
                            let count = p.get_u64_le();
                            match status {
                                Status::Ok => {
                                    if planned.gated() {
                                        results += count;
                                    }
                                }
                                Status::Overloaded if planned.gated() => shed += 1,
                                s => panic!("unexpected reply status {s:?}"),
                            }
                            break;
                        }
                        let sched = Duration::from_micros(*offset_us);
                        lats.push(t0.elapsed().saturating_sub(sched));
                    }
                    (lats, shed, results)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    server.shutdown();
    let mut lats: Vec<Duration> = per_conn
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    lats.sort_unstable();
    let shed: usize = per_conn.iter().map(|(_, s, _)| s).sum();
    let results: u64 = per_conn.iter().map(|(_, _, r)| r).sum();
    Cell {
        offered: 0.0, // filled by the caller
        qps: (sent - shed) as f64 / elapsed,
        p50: percentile(&lats, 50.0),
        p99: percentile(&lats, 99.0),
        p999: percentile(&lats, 99.9),
        sent,
        shed,
        results,
    }
}

/// Closed-loop capacity probe over the *same traffic mix* and the
/// *same connection fleet* the open loop uses — a pure-query or
/// small-fleet probe overstates capacity badly (the bounded verbs and
/// write barriers are the expensive part, and on a small machine the
/// fleet's own thread pressure is part of the budget). Reply-paced on
/// the window-16 static setting; this is the denominator the offered
/// loads scale from.
fn probe_capacity(
    index: &ShardedIndex<HintMSubs>,
    domain: u64,
    extent: u64,
    n: usize,
    conns: usize,
) -> f64 {
    let config = ServeConfig::fixed(16, Duration::from_micros(200));
    let server = Server::start(Session::new(index.clone()), config).expect("start server");
    let aux = {
        let (c, s) = duplex();
        server.attach(s);
        let mut setup = Client::new(c).expect("probe setup");
        setup
            .create_index("aux", 0, domain - 1)
            .expect("create aux")
    };
    const PIPELINE: usize = 2;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..conns {
            let (client_end, server_end) = duplex();
            server.attach(server_end);
            let mut client = Client::new(client_end).expect("probe conn");
            scope.spawn(move || {
                let mut rng = 0xca11_b007 ^ c as u64;
                let mut next_id = (c as u64 + 1) * 10_000_000;
                let mut in_flight = 0usize;
                for _ in 0..n {
                    if in_flight == PIPELINE {
                        client.recv_reply(|_| {}).expect("probe recv");
                        in_flight -= 1;
                    }
                    let planned = draw_mix(&mut rng, &mut next_id, domain, extent);
                    let (index, req) = planned.to_request(aux);
                    client.send_flagged(index, false, &req).expect("probe send");
                    in_flight += 1;
                }
                for _ in 0..in_flight {
                    client.recv_reply(|_| {}).expect("probe drain");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    server.shutdown();
    (conns * n) as f64 / elapsed
}

/// The lane scenario: eight reply-paced flooders saturate the batch
/// window with enumerations while one bounded connection issues
/// sequential top-k queries; returns the bounded connection's sorted
/// latencies and the flood's completed qps.
fn measure_lanes(
    index: &ShardedIndex<HintMSubs>,
    lanes: bool,
    bounded_queries: usize,
    extent: u64,
    domain: u64,
) -> (Vec<Duration>, f64) {
    // a static window wider than the flood's in-flight count, with a
    // long deadline — the window-64 cliff shape. The flood can never
    // fill it, so every shared batch waits out the full deadline;
    // without lanes a bounded query is stuck in that batch, with lanes
    // it flushes immediately
    let config = ServeConfig {
        lanes,
        ..ServeConfig::fixed(1024, Duration::from_millis(2))
    };
    const FLOODERS: usize = 8;
    const PIPELINE: usize = 16;
    let server = Server::start(Session::new(index.clone()), config).expect("start server");
    let stop = std::sync::atomic::AtomicBool::new(false);
    let t0 = Instant::now();
    let (lats, flood_done) = std::thread::scope(|scope| {
        let flood_handles: Vec<_> = (0..FLOODERS)
            .map(|f| {
                let (client_end, server_end) = duplex();
                server.attach(server_end);
                let mut client = Client::new(client_end).expect("flood conn");
                let stop = &stop;
                scope.spawn(move || {
                    let mut rng = 0xf100d ^ (f as u64);
                    let mut send = |client: &mut Client<DuplexTransport>| {
                        let st = splitmix(&mut rng) % (domain - extent);
                        client
                            .send(&Request::Query(RangeQuery::new(st, st + extent)))
                            .expect("flood send");
                    };
                    let mut done = 0u64;
                    for _ in 0..PIPELINE {
                        send(&mut client);
                    }
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        client.recv_reply(|_| {}).expect("flood recv");
                        done += 1;
                        send(&mut client);
                    }
                    for _ in 0..PIPELINE {
                        client.recv_reply(|_| {}).expect("flood drain");
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        let (client_end, server_end) = duplex();
        server.attach(server_end);
        let mut bounded = Client::new(client_end).expect("bounded conn");
        let mut rng = 0x000b_0de5_u64;
        let mut lats = Vec::with_capacity(bounded_queries);
        for _ in 0..bounded_queries {
            let st = splitmix(&mut rng) % (domain - extent);
            let q = RangeQuery::new(st, st + extent);
            let t = Instant::now();
            bounded.top_k(8, q).expect("bounded top-k never shed");
            lats.push(t.elapsed());
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        let done: u64 = flood_handles
            .into_iter()
            .map(|h| h.join().expect("flood"))
            .sum();
        (lats, done)
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    server.shutdown();
    let mut lats = lats;
    lats.sort_unstable();
    (lats, flood_done as f64 / elapsed)
}

fn workloads(cfg: &RunConfig) -> Vec<Dataset> {
    vec![datasets::real(
        RealDataset::Taxis,
        &RunConfig {
            scale_mul: cfg.scale_mul * 4,
            ..*cfg
        },
    )]
}

/// Runs the experiment and writes `BENCH_latency.json`.
pub fn run(cfg: &RunConfig) {
    // --quick trims connections and per-cell duration, not coverage
    let quick = cfg.queries <= 1_000;
    // every connection costs a sender and a receiver thread: a fleet
    // that oversubscribes the core count by hundreds of threads
    // measures the OS scheduler, not the server, so full mode scales
    // the fleet to the machine (hundreds of connections on real
    // hardware, a modest fleet on a starved CI box)
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let conns = if quick {
        48
    } else {
        (cores * 40).clamp(64, 160)
    };
    let duration = if quick {
        Duration::from_millis(1_200)
    } else {
        Duration::from_millis(2_500)
    };
    let bounded_queries = if quick { 200 } else { 400 };
    println!(
        "== Open-loop serving latency: Poisson arrivals over {conns} connections, \
         mixed read/write traffic =="
    );
    let mut rows = String::new();
    for ds in workloads(cfg) {
        let m = model_m(&ds, DEFAULT_EXTENT, cfg.max_m);
        let shard_m = m.saturating_sub(SHARDS.trailing_zeros()).max(1);
        let mut index =
            ShardedIndex::build_with_domain(&ds.data, 0, ds.domain - 1, SHARDS, |slice, lo, hi| {
                HintMSubs::build_with_domain(
                    slice,
                    Domain::new(lo, hi, shard_m),
                    SubsConfig::full(),
                )
            });
        hint_core::IntervalIndex::seal(&mut index);
        let extent = ((ds.domain as f64 * DEFAULT_EXTENT) as u64).max(1);
        let probe_n = if quick { 400 } else { 500 };
        let capacity = probe_capacity(&index, ds.domain, extent, probe_n, conns);
        println!(
            "\n[{} | n={} m={} shards={} capacity~{:.0} q/s]",
            ds.name,
            ds.data.len(),
            m,
            SHARDS,
            capacity,
        );
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "load", "setting", "done q/s", "p50 us", "p99 us", "p999 us", "shed"
        );
        rule(80);
        for (li, load) in LOADS.iter().enumerate() {
            let offered = capacity * load;
            let rate_per_conn = offered / conns as f64;
            let plans: Vec<Vec<(u64, Planned)>> = (0..conns)
                .map(|c| {
                    plan(
                        cfg.seed ^ ((li as u64) << 32),
                        c,
                        rate_per_conn,
                        duration,
                        ds.domain,
                        extent,
                    )
                })
                .collect();
            let mut cells: Vec<(&str, Cell)> = Vec::new();
            for (label, config) in settings() {
                let mut cell = measure_open_loop(&index, config, &plans, ds.domain);
                cell.offered = offered;
                println!(
                    "{:>7.2}x {:>12} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>10}",
                    load,
                    label,
                    cell.qps,
                    cell.p50.as_secs_f64() * 1e6,
                    cell.p99.as_secs_f64() * 1e6,
                    cell.p999.as_secs_f64() * 1e6,
                    cell.shed,
                );
                if !rows.is_empty() {
                    rows.push(',');
                }
                write!(
                    rows,
                    "\n    {{\"dataset\": \"{}\", \"scenario\": \"open-loop\", \"setting\": \
                     \"{}\", \"mode\": \"{}\", \"load\": {}, \"offered_qps\": {:.0}, \
                     \"completed_qps\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                     \"p999_us\": {:.1}, \"sent\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \
                     \"results\": {}}}",
                    ds.name,
                    label,
                    config.mode,
                    load,
                    cell.offered,
                    cell.qps,
                    cell.p50.as_secs_f64() * 1e6,
                    cell.p99.as_secs_f64() * 1e6,
                    cell.p999.as_secs_f64() * 1e6,
                    cell.sent,
                    cell.shed,
                    cell.shed as f64 / cell.sent.max(1) as f64,
                    cell.results,
                )
                .unwrap();
                cells.push((label, cell));
            }
            let adaptive = &cells.iter().find(|(l, _)| *l == "adaptive").unwrap().1;
            let best_static_qps = cells
                .iter()
                .filter(|(l, _)| *l != "adaptive")
                .map(|(_, c)| c.qps)
                .fold(0.0f64, f64::max);
            // the controller must track the best static window at every
            // offered load (slack absorbs shared-runner noise)
            assert!(
                adaptive.qps >= 0.8 * best_static_qps,
                "{}: adaptive fell behind the best static window at {load}x \
                 ({:.0} vs {:.0} q/s)",
                ds.name,
                adaptive.qps,
                best_static_qps,
            );
            if *load < 1.0 {
                // below the batched capacity the controller must keep
                // up without refusing anything (window-1 is allowed to
                // shed here: the un-batched path has less capacity than
                // the probe that set the load — that gap is the point)
                assert_eq!(
                    adaptive.shed, 0,
                    "{}: adaptive shed below capacity at {load}x",
                    ds.name,
                );
                // settings that shed nothing did identical reads:
                // their answers must be bit-identical
                let clean: Vec<&(&str, Cell)> = cells.iter().filter(|(_, c)| c.shed == 0).collect();
                for (label, cell) in &clean {
                    assert_eq!(
                        cell.results, clean[0].1.results,
                        "{}: {label} diverged from {} at {load}x",
                        ds.name, clean[0].0,
                    );
                }
            } else {
                // past capacity admission control must engage —
                // recoverable shedding instead of unbounded queueing
                for (label, cell) in &cells {
                    assert!(
                        cell.shed > 0,
                        "{}: {label} never shed at {load}x offered load",
                        ds.name,
                    );
                }
            }
            // tail sanity at every load: the controller may not
            // collapse the way a mistuned static window does. The
            // bound is deliberately loose (4x the best static tail):
            // on a small shared runner the p99 of every setting is
            // rebuild-stall recovery, which jitters by 2x run to run —
            // this catches an order-of-magnitude queueing collapse,
            // while the p50 pin below catches the deadline-wait cliff
            let best_static_p99 = cells
                .iter()
                .filter(|(l, _)| *l != "adaptive")
                .map(|(_, c)| c.p99)
                .min()
                .unwrap();
            assert!(
                adaptive.p99 <= best_static_p99.mul_f64(4.0),
                "{}: adaptive p99 ({:?}) collapsed vs best static ({:?}) at {load}x",
                ds.name,
                adaptive.p99,
                best_static_p99,
            );
            if li == 0 {
                // the pinned window-64 cliff: at low load the oversized
                // static window waits out its flush deadline on (nearly)
                // every batch, which floors its *median*; the controller
                // must sit clearly under that floor
                let w64 = &cells.iter().find(|(l, _)| *l == "window-64").unwrap().1;
                assert!(
                    adaptive.p50 <= w64.p50.mul_f64(0.9),
                    "{}: adaptive p50 ({:?}) reproduced the window-64 deadline \
                     stall ({:?})",
                    ds.name,
                    adaptive.p50,
                    w64.p50,
                );
            }
        }
        // ---- QoS lane scenario --------------------------------------
        println!("\n[lanes | 8 flooders vs 1 bounded top-k connection]");
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            "lanes", "bnd p50 us", "bnd p99 us", "flood q/s"
        );
        rule(50);
        let mut p50s = [Duration::ZERO; 2];
        for (i, lanes) in [true, false].into_iter().enumerate() {
            let (lats, flood_qps) =
                measure_lanes(&index, lanes, bounded_queries, extent, ds.domain);
            let p50 = percentile(&lats, 50.0);
            let p99 = percentile(&lats, 99.0);
            p50s[i] = p50;
            println!(
                "{:>10} {:>12.1} {:>12.1} {:>12.0}",
                if lanes { "on" } else { "off" },
                p50.as_secs_f64() * 1e6,
                p99.as_secs_f64() * 1e6,
                flood_qps,
            );
            if !rows.is_empty() {
                rows.push(',');
            }
            write!(
                rows,
                "\n    {{\"dataset\": \"{}\", \"scenario\": \"qos-lanes\", \"setting\": \
                 \"lanes-{}\", \"mode\": \"fixed\", \"load\": 0, \"offered_qps\": 0, \
                 \"completed_qps\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"p999_us\": {:.1}, \"sent\": {}, \"shed\": 0, \"shed_rate\": 0.0, \
                 \"results\": 0}}",
                ds.name,
                if lanes { "on" } else { "off" },
                flood_qps,
                p50.as_secs_f64() * 1e6,
                p99.as_secs_f64() * 1e6,
                percentile(&lats, 99.9).as_secs_f64() * 1e6,
                lats.len(),
            )
            .unwrap();
        }
        // the lanes' reason to exist: a bounded query must not wait
        // out other connections' deadline-bound enumeration batches.
        // Asserted on the median — it is deadline-floored without
        // lanes (a structural ~2ms) and walk-bound with them; the p99
        // of a single sequential connection on a shared runner is OS
        // preemption, not scheduling policy
        assert!(
            p50s[0] <= p50s[1].mul_f64(0.5),
            "{}: lanes-on bounded p50 ({:?}) did not beat lanes-off ({:?})",
            ds.name,
            p50s[0],
            p50s[1],
        );
    }
    let json = format!(
        "{{\n  \"experiment\": \"latency\",\n  \"workload\": \"open-loop Poisson arrivals over \
         in-memory duplex transports, mixed read/write traffic; plus the QoS lane scenario\",\n  \
         \"config\": {{\"scale_mul\": {}, \"queries\": {}, \"max_m\": {}, \"seed\": {}, \
         \"conns\": {}, \"duration_ms\": {}, \"shards\": {}}},\n  \"rows\": [{}\n  ]\n}}\n",
        cfg.scale_mul,
        cfg.queries,
        cfg.max_m,
        cfg.seed,
        conns,
        duration.as_millis(),
        SHARDS,
        rows
    );
    match std::fs::write("BENCH_latency.json", &json) {
        Ok(()) => println!("\nwrote BENCH_latency.json"),
        Err(e) => eprintln!("\ncould not write BENCH_latency.json: {e}"),
    }
}
