//! Figure 14: throughput of all six indexes on synthetic datasets,
//! sweeping one Table-5 parameter at a time (domain size, cardinality,
//! Zipf `α` for lengths, Gaussian `σ` for positions, query extent).
//!
//! Parameter grids follow Table 5 scaled 1/100 for laptop runs (the
//! defaults bolded in the paper become: domain 1.28M, n 1M, α 1.2,
//! σ 10K, extent 0.1%). Queries are data-following, as in the paper.
//!
//! Expected shape: HINT/HINT^m always lead; 1D-grid trails the other
//! competitors under skew; throughput falls with domain, cardinality and
//! extent, and rises with `α` (shorter intervals) and `σ` (more spread).

use crate::experiments::rule;
use crate::measure::{query_throughput, time};
use crate::RunConfig;
use hint_core::IntervalIndex;
use workloads::queries::{QueryGen, QueryWorkload};
use workloads::synthetic::SyntheticConfig;

fn build_all_synth(
    data: &[hint_core::Interval],
    cfg: &RunConfig,
) -> Vec<(&'static str, Box<dyn IntervalIndex>)> {
    let n = data.len();
    let mut out: Vec<(&'static str, Box<dyn IntervalIndex>)> = Vec::new();
    let (_, idx) = time(|| interval_tree::IntervalTree::build(data));
    out.push(("Interval tree", Box::new(idx)));
    let (_, idx) = time(|| period_index::PeriodIndex::build(data, 100, 4));
    out.push(("Period", Box::new(idx)));
    // synthetic positions are Gaussian-concentrated, so checkpoint active
    // sets are huge; cap the checkpoint count to keep the timeline index
    // within laptop memory (the paper's server had 384 GB)
    let (_, idx) =
        time(|| timeline_index::TimelineIndex::build_with_spacing(data, (2 * n / 500).max(64)));
    out.push(("Timeline", Box::new(idx)));
    let (_, idx) = time(|| grid1d::Grid1D::build(data, 1000));
    out.push(("1D-grid", Box::new(idx)));
    let (_, idx) = time(|| hint_core::HintCf::build(data, 24, hint_core::CfLayout::Sparse));
    out.push(("HINT", Box::new(idx)));
    let m = cfg.max_m.min(16);
    let (_, idx) = time(|| hint_core::Hint::build(data, m));
    out.push(("HINT^m", Box::new(idx)));
    out
}

fn sweep(
    title: &str,
    cfg: &RunConfig,
    configs: Vec<(String, SyntheticConfig, f64)>, // (label, data config, extent)
) {
    println!("\n-- {title} --");
    let labels: Vec<&String> = configs.iter().map(|(l, _, _)| l).collect();
    print!("{:>14}", "index");
    for l in &labels {
        print!(" {l:>10}");
    }
    println!();
    rule(14 + labels.len() * 11);
    // generate all datasets and indexes column by column, then transpose
    let mut cols: Vec<Vec<(String, f64)>> = Vec::new();
    for (_, sc, extent) in &configs {
        let data = sc.generate();
        let queries = QueryWorkload::with_extent_fraction(
            QueryGen::DataFollowing,
            &data,
            *extent,
            cfg.queries,
            cfg.seed,
        );
        let col = build_all_synth(&data, cfg)
            .into_iter()
            .map(|(name, idx)| {
                (
                    name.to_string(),
                    query_throughput(idx.as_ref(), queries.queries()).qps,
                )
            })
            .collect();
        cols.push(col);
    }
    for row in 0..cols[0].len() {
        print!("{:>14}", cols[0][row].0);
        for col in &cols {
            print!(" {:>10.0}", col[row].1);
        }
        println!();
    }
}

/// Runs all five sweeps.
pub fn run(cfg: &RunConfig) {
    println!("== Figure 14: synthetic parameter sweeps (Table 5 / 100) ==");
    let base = SyntheticConfig {
        cardinality: (1_000_000 / cfg.scale_mul as usize).max(50_000),
        ..SyntheticConfig::default()
    };

    sweep(
        "domain size",
        cfg,
        [320_000u64, 640_000, 1_280_000, 2_560_000, 5_120_000]
            .iter()
            .map(|&d| {
                (
                    format!("{}K", d / 1000),
                    SyntheticConfig { domain: d, ..base },
                    0.001,
                )
            })
            .collect(),
    );
    sweep(
        "cardinality",
        cfg,
        [100_000usize, 250_000, 500_000, 1_000_000]
            .iter()
            .map(|&n| {
                let n = (n / cfg.scale_mul as usize).max(10_000);
                (
                    format!("{}K", n / 1000),
                    SyntheticConfig {
                        cardinality: n,
                        ..base
                    },
                    0.001,
                )
            })
            .collect(),
    );
    sweep(
        "alpha (interval length)",
        cfg,
        [1.01, 1.1, 1.2, 1.4, 1.8]
            .iter()
            .map(|&a| (format!("{a}"), SyntheticConfig { alpha: a, ..base }, 0.001))
            .collect(),
    );
    sweep(
        "sigma (interval position)",
        cfg,
        [100.0, 1_000.0, 10_000.0, 50_000.0, 100_000.0]
            .iter()
            .map(|&s| {
                (
                    format!("{}", s as u64),
                    SyntheticConfig { sigma: s, ..base },
                    0.001,
                )
            })
            .collect(),
    );
    sweep(
        "query extent",
        cfg,
        [0.0001, 0.0005, 0.001, 0.005, 0.01]
            .iter()
            .map(|&e| (format!("{}%", e * 100.0), base, e))
            .collect(),
    );
}
