//! Table 6: impact of the skewness & sparsity optimization (§4.2) on the
//! comparison-free HINT — throughput and index size, original (dense
//! per-partition arrays) vs optimized (merged tables + sparse directory),
//! all four dataset clones at default parameters.
//!
//! Expected shape: the optimization improves throughput *and* shrinks the
//! index dramatically on every dataset (paper: e.g. WEBKIT 947 →
//! 39,000 q/s and 49 GB → 0.3 GB).

use crate::datasets;
use crate::experiments::{rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::{mb, query_throughput};
use crate::RunConfig;
use hint_core::{CfLayout, HintCf};

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    println!("== Table 6: comparison-free HINT, dense vs sparse storage ==");
    println!(
        "{:>8} {:>6} | {:>14} {:>14} | {:>12} {:>12}",
        "dataset", "m", "orig [q/s]", "opt [q/s]", "orig [MB]", "opt [MB]"
    );
    rule(78);
    for ds in datasets::all_real(cfg) {
        let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
        // comparison-free HINT wants the full domain resolution; the dense
        // layout caps at 2^22 partition headers for laptop memory.
        let bits = 64 - (ds.domain - 1).leading_zeros();
        let m = bits.min(21);
        let dense = HintCf::build(&ds.data, m, CfLayout::Dense);
        let sparse = HintCf::build(&ds.data, m, CfLayout::Sparse);
        let td = query_throughput(&dense, queries.queries());
        let ts = query_throughput(&sparse, queries.queries());
        assert_eq!(td.results, ts.results, "layouts must agree");
        println!(
            "{:>8} {:>6} | {:>14.0} {:>14.0} | {:>12.1} {:>12.1}",
            ds.name,
            m,
            td.qps,
            ts.qps,
            mb(dense.size_bytes()),
            mb(sparse.size_bytes())
        );
    }
}
