//! Query access modes (beyond the paper's figures): enumeration vs
//! counting vs existence testing, for all six indexes.
//!
//! Counting runs through a `CountSink` (no result vector is ever
//! allocated or written) and existence testing through an `ExistsSink`
//! (the scan stops at the first hit), so this experiment quantifies what
//! the `QuerySink` execution layer buys over enumerate-then-aggregate.
//!
//! Expected shape: count typically meets or beats enumerate (same scan,
//! no result writes — though count runs through the trait-object sink
//! path, so comparison-heavy runs pay dynamic dispatch per id where
//! enumeration is monomorphized); exists far ahead on selective
//! workloads because virtually every scan terminates after one
//! partition run.

use crate::datasets;
use crate::experiments::{build_all, rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::{count_throughput, exists_throughput, query_throughput};
use crate::RunConfig;

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    println!("== Access modes: enumerate vs count vs exists [queries/s] ==");
    for ds in datasets::all_real(cfg) {
        println!("\n[{} | n={} domain={}]", ds.name, ds.data.len(), ds.domain);
        let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
        println!(
            "{:>14} {:>12} {:>12} {:>12} {:>10}",
            "index", "enumerate", "count", "exists", "results"
        );
        rule(66);
        for (name, _, idx) in build_all(&ds, cfg) {
            let enumerate = query_throughput(idx.as_ref(), queries.queries());
            let count = count_throughput(idx.as_ref(), queries.queries());
            let exists = exists_throughput(idx.as_ref(), queries.queries());
            assert_eq!(
                enumerate.results, count.results,
                "{name}: CountSink disagrees with enumeration"
            );
            println!(
                "{name:>14} {:>12.0} {:>12.0} {:>12.0} {:>10}",
                enumerate.qps, count.qps, exists.qps, count.results
            );
        }
    }
}
