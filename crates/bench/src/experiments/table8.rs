//! Table 8: index size \[MB\] of all six indexes on the four dataset
//! clones.
//!
//! Expected shape: HINT^m smallest (or tied) on long-interval datasets;
//! comparison-free HINT pays heavy replication on TAXIS/GREEND; the
//! timeline index pays for its checkpoints.

use crate::datasets;
use crate::experiments::{build_all, rule};
use crate::measure::mb;
use crate::RunConfig;

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    println!("== Table 8: index size [MB] ==");
    let all = datasets::all_real(cfg);
    print!("{:>14}", "index");
    for ds in &all {
        print!(" {:>10}", ds.name);
    }
    println!();
    rule(14 + all.len() * 11);
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut names = Vec::new();
    for ds in &all {
        for (i, (name, _, idx)) in build_all(ds, cfg).into_iter().enumerate() {
            if names.len() < 6 {
                names.push(name);
            }
            rows[i].push(mb(idx.size_bytes()));
        }
    }
    for (name, row) in names.iter().zip(&rows) {
        print!("{name:>14}");
        for v in row {
            print!(" {v:>10.1}");
        }
        println!();
    }
}
