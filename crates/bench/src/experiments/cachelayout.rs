//! Cache-layout study (beyond the paper's figures): nested per-partition
//! `Vec` storage vs the sealed columnar (CSR) engine, across query
//! extents.
//!
//! The update-friendly HINT^m variants keep every partition in its own
//! four heap `Vec`s; `seal()` flattens each level into contiguous
//! per-category arenas so comparison-free partitions are bulk-emitted
//! (`emit_slice`) and comparison scans binary-search one flat column.
//! This experiment quantifies that layout change in isolation — same
//! algorithm, same data, same queries, different storage spine — and adds
//! the batched executor (`query_batch`, shared level walk over queries
//! sorted by first relevant partition) on top of the sealed layout.
//!
//! Expected shape: the sealed layout wins by a widening margin as the
//! extent (and with it the number of blind-emitted middle partitions)
//! grows — up to ~15x at 1% on TAXIS, where the nested walk chases
//! thousands of per-partition `Vec`s. At the smallest extent on
//! long-interval data (BOOKS) the two layouts are at parity: queries
//! touch one partition per level and the runtime is dominated by copying
//! the (huge) result set, while the columnar split makes tiny comparison
//! runs touch two arrays where the row-wise layout touches one. The
//! batched *enumerate* column pays for 64 live result buffers (cache
//! pressure the solo loop's single hot buffer avoids); the batched
//! *count* column shows the shared walk without that artifact.
//!
//! Besides the printed table, the run writes a machine-readable baseline
//! to `BENCH_cachelayout.json` in the current directory so the repo's
//! perf trajectory can be tracked across commits.

use crate::datasets;
use crate::experiments::{model_m, rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::{
    batch_count_throughput, batch_throughput, count_throughput, mb, query_throughput, time,
};
use crate::RunConfig;
use hint_core::{HintMSubs, SubsConfig};
use std::fmt::Write as _;

/// Query-extent fractions swept by the experiment (0.01% .. 1% of the
/// domain, bracketing the paper's 0.1% default).
const EXTENTS: [f64; 3] = [0.0001, DEFAULT_EXTENT, 0.01];

/// Batch size for the `query_batch` column.
const BATCH: usize = 64;

/// Runs the experiment and writes `BENCH_cachelayout.json`.
pub fn run(cfg: &RunConfig) {
    println!("== Cache layout: nested-Vec vs sealed-CSR (HINT^m subs+sort+sopt) ==");
    let mut rows = String::new();
    let mut builds = String::new();
    for ds in datasets::opt_study(cfg) {
        let m = model_m(&ds, DEFAULT_EXTENT, cfg.max_m);
        let (t_nested, nested) = time(|| HintMSubs::build(&ds.data, m, SubsConfig::full()));
        let (t_seal, sealed) = time(|| {
            let mut s = nested.clone();
            s.seal();
            s
        });
        println!(
            "\n[{} | n={} m={} | build {:.3}s, seal {:.3}s, {:.2} -> {:.2} MB]",
            ds.name,
            ds.data.len(),
            m,
            t_nested,
            t_seal,
            mb(nested.size_bytes()),
            mb(sealed.size_bytes()),
        );
        println!(
            "{:>8} {:>12} {:>12} {:>14} {:>8} {:>12} {:>12} {:>10}",
            "extent",
            "nested q/s",
            "sealed q/s",
            "sealed+batch",
            "speedup",
            "count q/s",
            "count+batch",
            "results"
        );
        rule(96);
        if !builds.is_empty() {
            builds.push(',');
        }
        write!(
            builds,
            "\n    {{\"dataset\": \"{}\", \"n\": {}, \"m\": {}, \"build_nested_s\": {:.6}, \
             \"seal_s\": {:.6}, \"nested_bytes\": {}, \"sealed_bytes\": {}}}",
            ds.name,
            ds.data.len(),
            m,
            t_nested,
            t_seal,
            nested.size_bytes(),
            sealed.size_bytes(),
        )
        .unwrap();
        for extent in EXTENTS {
            let queries = uniform_queries(&ds, extent, cfg);
            let a = query_throughput(&nested, queries.queries());
            let b = query_throughput(&sealed, queries.queries());
            let c = batch_throughput(&sealed, queries.queries(), BATCH);
            let d = count_throughput(&sealed, queries.queries());
            let e = batch_count_throughput(&sealed, queries.queries(), BATCH);
            assert_eq!(
                a.results, b.results,
                "{}: sealed result count diverged",
                ds.name
            );
            assert_eq!(
                b.results, c.results,
                "{}: batched result count diverged",
                ds.name
            );
            assert_eq!(c.results, e.results, "{}: batched count diverged", ds.name);
            println!(
                "{:>7.2}% {:>12.0} {:>12.0} {:>14.0} {:>7.2}x {:>12.0} {:>12.0} {:>10}",
                extent * 100.0,
                a.qps,
                b.qps,
                c.qps,
                b.qps / a.qps,
                d.qps,
                e.qps,
                a.results
            );
            if !rows.is_empty() {
                rows.push(',');
            }
            write!(
                rows,
                "\n    {{\"dataset\": \"{}\", \"extent\": {}, \"nested_qps\": {:.1}, \
                 \"sealed_qps\": {:.1}, \"sealed_batch_qps\": {:.1}, \
                 \"speedup_sealed\": {:.3}, \"speedup_batch\": {:.3}, \
                 \"count_qps\": {:.1}, \"count_batch_qps\": {:.1}, \"results\": {}}}",
                ds.name,
                extent,
                a.qps,
                b.qps,
                c.qps,
                b.qps / a.qps,
                c.qps / a.qps,
                d.qps,
                e.qps,
                a.results,
            )
            .unwrap();
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"cachelayout\",\n  \"workload\": \"enumerate (CollectSink)\",\n  \
         \"config\": {{\"scale_mul\": {}, \"queries\": {}, \"max_m\": {}, \"seed\": {}, \
         \"batch\": {}}},\n  \"builds\": [{}\n  ],\n  \"rows\": [{}\n  ]\n}}\n",
        cfg.scale_mul, cfg.queries, cfg.max_m, cfg.seed, BATCH, builds, rows
    );
    match std::fs::write("BENCH_cachelayout.json", &json) {
        Ok(()) => println!("\nwrote BENCH_cachelayout.json"),
        Err(e) => eprintln!("\ncould not write BENCH_cachelayout.json: {e}"),
    }
}
