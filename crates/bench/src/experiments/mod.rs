//! One generator per table/figure of the paper's evaluation (§5).
//!
//! Every `run` function prints a paper-style table to stdout. The
//! `harness` binary maps subcommands onto these functions; EXPERIMENTS.md
//! records paper-vs-measured values.

pub mod ablation;
pub mod cachelayout;
pub mod countmode;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod latency;
pub mod retune;
pub mod scenarios;
pub mod serve;
pub mod shardscale;
pub mod snapshot;
pub mod table10;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;

use crate::datasets::Dataset;
use crate::RunConfig;
use hint_core::{Betas, ModelInput};
use workloads::queries::QueryWorkload;

/// Default query extent used throughout the paper: 0.1% of the domain.
pub const DEFAULT_EXTENT: f64 = 0.001;

/// Uniform query workload over a dataset at a given extent fraction.
pub fn uniform_queries(ds: &Dataset, extent_frac: f64, cfg: &RunConfig) -> QueryWorkload {
    let extent = (ds.domain as f64 * extent_frac) as u64;
    QueryWorkload::uniform(0, ds.domain - 1, extent, cfg.queries, cfg.seed)
}

/// Per-dataset competitor parameters, following the paper's Table 7
/// tuning (1D-grid partition counts, timeline checkpoint counts, period
/// index levels/partitions).
pub struct CompetitorParams {
    /// 1D-grid partition count.
    pub grid_p: usize,
    /// Timeline index: events between checkpoints.
    pub timeline_spacing: usize,
    /// Period index coarse partitions.
    pub period_p: usize,
    /// Period index duration levels.
    pub period_levels: usize,
}

/// Looks up competitor parameters by dataset name.
pub fn competitor_params(name: &str, n: usize) -> CompetitorParams {
    let (grid_p, period_levels) = match name {
        "BOOKS" => (500, 4),
        "WEBKIT" => (300, 4),
        "TAXIS" => (4000, 7),
        "GREEND" => (30000, 8),
        _ => (1000, 4),
    };
    // paper: 6000-8000 checkpoints; spacing = 2n / target count
    let timeline_spacing = (2 * n / 7000).max(16);
    CompetitorParams {
        grid_p,
        timeline_spacing,
        period_p: 100,
        period_levels,
    }
}

/// The `m` used for HINT^m on a dataset: the §3.3 model's `m_opt`,
/// clamped to a laptop-friendly sweep range.
pub fn model_m(ds: &Dataset, extent_frac: f64, max_m: u32) -> u32 {
    let lambda_q = ds.domain as f64 * extent_frac;
    let input = ModelInput::from_data(&ds.data, lambda_q);
    hint_core::m_opt(&input, &Betas::DEFAULT, 0.03).clamp(5, max_m)
}

/// Prints a horizontal rule sized for our tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Builds all six §5.3 indexes over a dataset, returning
/// `(name, build seconds, boxed index)` triples — shared by Tables 8, 9
/// and Figure 13.
pub fn build_all(
    ds: &Dataset,
    cfg: &RunConfig,
) -> Vec<(&'static str, f64, Box<dyn hint_core::IntervalIndex>)> {
    use crate::measure::time;
    let params = competitor_params(ds.name, ds.data.len());
    let m = model_m(ds, DEFAULT_EXTENT, cfg.max_m);
    let cf_bits = (64 - (ds.domain - 1).leading_zeros()).min(24);
    let mut out: Vec<(&'static str, f64, Box<dyn hint_core::IntervalIndex>)> = Vec::new();
    let (t, idx) = time(|| interval_tree::IntervalTree::build(&ds.data));
    out.push(("Interval tree", t, Box::new(idx)));
    let (t, idx) =
        time(|| period_index::PeriodIndex::build(&ds.data, params.period_p, params.period_levels));
    out.push(("Period", t, Box::new(idx)));
    let (t, idx) = time(|| {
        timeline_index::TimelineIndex::build_with_spacing(&ds.data, params.timeline_spacing)
    });
    out.push(("Timeline", t, Box::new(idx)));
    let (t, idx) = time(|| grid1d::Grid1D::build(&ds.data, params.grid_p));
    out.push(("1D-grid", t, Box::new(idx)));
    let (t, idx) =
        time(|| hint_core::HintCf::build(&ds.data, cf_bits, hint_core::CfLayout::Sparse));
    out.push(("HINT", t, Box::new(idx)));
    let (t, idx) = time(|| hint_core::Hint::build(&ds.data, m));
    out.push(("HINT^m", t, Box::new(idx)));
    out
}
