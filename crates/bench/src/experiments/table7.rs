//! Table 7: statistics and parameter setting — the §3.3 model's `m_opt`
//! vs the experimentally best `m`, the Theorem-1 replication factor `k`
//! (model vs measured), and the average number of partitions requiring
//! comparisons per query (Lemma 4 predicts < 4).

use crate::datasets;
use crate::experiments::{rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::query_throughput;
use crate::RunConfig;
use hint_core::cost_model::{self, ModelInput};
use hint_core::{measure_betas, Hint, WorkloadStats};

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    println!("== Table 7: statistics and parameter setting ==");
    let betas = measure_betas();
    println!(
        "(measured betas: cmp = {:.2e} s, acc = {:.2e} s)",
        betas.cmp, betas.acc
    );
    println!(
        "{:>8} | {:>12} {:>12} | {:>10} {:>10} | {:>16}",
        "dataset", "m_opt model", "m_opt exps", "k model", "k exps", "avg comp. part."
    );
    rule(84);
    for ds in datasets::all_real(cfg) {
        let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
        let lambda_q = ds.domain as f64 * DEFAULT_EXTENT;
        let input = ModelInput::from_data(&ds.data, lambda_q);
        let m_model = cost_model::m_opt(&input, &betas, 0.03);

        // experimental m_opt: best throughput over the sweep
        let mut best = (0u32, 0.0f64);
        let mut best_idx: Option<Hint> = None;
        let mut m = 5;
        while m <= cfg.max_m {
            let idx = Hint::build(&ds.data, m);
            let qps = query_throughput(&idx, queries.queries()).qps;
            if qps > best.1 {
                best = (m, qps);
                best_idx = Some(idx);
            }
            m += 1;
        }
        let idx = best_idx.expect("at least one m in sweep");
        let k_model = cost_model::replication_factor(&input, best.0);
        let k_exp = idx.entries() as f64 / idx.len() as f64;

        // avg partitions compared, on a sample of the workload
        let mut ws = WorkloadStats::default();
        let mut out = Vec::new();
        for &q in queries.queries().iter().take(2000) {
            out.clear();
            ws.push(idx.query_stats(q, &mut out));
        }
        println!(
            "{:>8} | {:>12} {:>12} | {:>10.2} {:>10.2} | {:>16.3}",
            ds.name,
            m_model,
            best.0,
            k_model,
            k_exp,
            ws.avg_partitions_compared()
        );
    }
    println!("(Lemma 4: avg comp. part. expected < 4 on every dataset)");
}
