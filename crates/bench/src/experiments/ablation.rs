//! Extra ablation (beyond the paper's figures): how many endpoint
//! comparisons and compared-partitions each design ingredient removes.
//!
//! Uses the instrumented query path of the flagship index to report, per
//! `m`: average partitions compared, average comparisons, and average
//! results per query — empirically validating Lemma 4 (≈ 4 compared
//! partitions, independent of extent) and Theorem 2 (`O(n / 2^m)`
//! comparisons).

use crate::datasets;
use crate::experiments::{rule, uniform_queries};
use crate::RunConfig;
use hint_core::{Hint, WorkloadStats};

/// Runs the ablation.
pub fn run(cfg: &RunConfig) {
    println!("== Ablation: comparisons vs m and query extent (Lemma 4 / Theorem 2) ==");
    for ds in datasets::opt_study(cfg) {
        println!("\n[{} | n={} domain={}]", ds.name, ds.data.len(), ds.domain);
        println!(
            "{:>4} {:>10} {:>18} {:>16} {:>14}",
            "m", "extent", "avg comp. parts", "avg comparisons", "avg results"
        );
        rule(68);
        let mut m = 7;
        while m <= cfg.max_m {
            let idx = Hint::build(&ds.data, m);
            for extent in [0.0, 0.001, 0.01] {
                let queries = uniform_queries(&ds, extent, cfg);
                let mut ws = WorkloadStats::default();
                let mut out = Vec::new();
                for &q in queries.queries().iter().take(2000) {
                    out.clear();
                    ws.push(idx.query_stats(q, &mut out));
                }
                println!(
                    "{m:>4} {:>9.2}% {:>18.3} {:>16.1} {:>14.1}",
                    extent * 100.0,
                    ws.avg_partitions_compared(),
                    ws.avg_comparisons(),
                    ws.avg_results()
                );
            }
            m += 4;
        }
    }
}
