//! Table 9: index construction time \[s\] of all six indexes on the four
//! dataset clones.
//!
//! Expected shape: 1D-grid fastest; HINT^m the runner-up on the large
//! inputs; the timeline index slowest on the small long-interval sets
//! (sorting + checkpoint materialization).

use crate::datasets;
use crate::experiments::{build_all, rule};
use crate::RunConfig;

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    println!("== Table 9: index build time [s] ==");
    let all = datasets::all_real(cfg);
    print!("{:>14}", "index");
    for ds in &all {
        print!(" {:>10}", ds.name);
    }
    println!();
    rule(14 + all.len() * 11);
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut names = Vec::new();
    for ds in &all {
        for (i, (name, secs, _)) in build_all(ds, cfg).into_iter().enumerate() {
            if names.len() < 6 {
                names.push(name);
            }
            rows[i].push(secs);
        }
    }
    for (name, row) in names.iter().zip(&rows) {
        print!("{name:>14}");
        for v in row {
            print!(" {v:>10.3}");
        }
        println!();
    }
}
