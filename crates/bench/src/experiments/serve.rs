//! Serving-layer study (beyond the paper's figures): end-to-end latency
//! and throughput of the batched query-serving subsystem vs the batch
//! window.
//!
//! The full wire path is measured — encode → transport → connection
//! scheduler → cross-connection batch → `query_batch_merge` → demux →
//! streamed decode — over in-memory duplex transports (port-free and
//! deterministic; the protocol bytes are identical to TCP, only the
//! syscalls are absent). A fleet of client threads runs a closed loop
//! with a small pipelining window, so batches form from genuine
//! cross-connection concurrency exactly as they would under live
//! traffic.
//!
//! Four scheduler settings are swept: window 1 (every query scheduled
//! solo — the no-batching baseline), two widening static
//! `max_batch`/`max_delay` policies, and the adaptive AIMD controller.
//! Batching trades a bounded queueing delay (visible in the p99) for
//! shared level walks and fewer scheduler cycles (visible in
//! queries/sec); the table quantifies both sides, with the observed
//! mean batch size confirming the policy actually engaged. Results are
//! asserted identical across settings. The run also pins the window-64
//! regression: the static window wider than the offered in-flight count
//! collapses (it always waits out `max_delay`), and the controller must
//! not reproduce that cliff — adaptive qps is asserted against the best
//! static window.
//!
//! Writes `BENCH_serve.json` with one row per (dataset, setting).

use crate::datasets::{self, Dataset};
use crate::experiments::{model_m, rule, uniform_queries, DEFAULT_EXTENT};
use crate::RunConfig;
use hint_core::{Domain, HintMSubs, RangeQuery, Session, ShardedIndex, SubsConfig};
use serve::{duplex, Client, Request, ServeConfig, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use workloads::realistic::RealDataset;

/// Shards in the served index (matches the shardscale sweet spot).
const SHARDS: usize = 4;

/// Concurrent client connections.
const CLIENTS: usize = 8;

/// Pipelined requests in flight per connection.
const WINDOW: usize = 4;

/// The swept scheduler policies. The static windows bracket the
/// fleet's in-flight count (8 connections x pipeline 4 = 32): window-16
/// engages batching, window-64 overshoots it — the collapse the
/// adaptive controller exists to avoid.
fn settings() -> [(&'static str, ServeConfig); 4] {
    [
        ("window-1", ServeConfig::fixed(1, Duration::ZERO)),
        (
            "window-16",
            ServeConfig::fixed(16, Duration::from_micros(200)),
        ),
        (
            "window-64",
            ServeConfig::fixed(64, Duration::from_micros(500)),
        ),
        ("adaptive", ServeConfig::default()),
    ]
}

/// One client thread's measurement: per-query latencies and the sum of
/// result counts (the cross-setting determinism check).
struct ClientRun {
    latencies: Vec<Duration>,
    results: u64,
}

/// Drives `queries` through one connection with a pipelining window,
/// timestamping each request at send and at trailer receipt.
fn run_client(mut client: Client<serve::DuplexTransport>, queries: &[RangeQuery]) -> ClientRun {
    let mut latencies = Vec::with_capacity(queries.len());
    let mut results = 0u64;
    let mut sent = std::collections::VecDeque::with_capacity(WINDOW);
    let mut it = queries.iter();
    // fill the window
    for q in it.by_ref().take(WINDOW) {
        client.send(&Request::Query(*q)).expect("send");
        sent.push_back(Instant::now());
    }
    // steady state: one reply in, one request out
    for q in it {
        let reply = client.recv_reply(|_| {}).expect("recv");
        latencies.push(sent.pop_front().expect("timestamp").elapsed());
        results += reply.count;
        client.send(&Request::Query(*q)).expect("send");
        sent.push_back(Instant::now());
    }
    // drain
    while let Some(t0) = sent.pop_front() {
        let reply = client.recv_reply(|_| {}).expect("drain");
        latencies.push(t0.elapsed());
        results += reply.count;
    }
    ClientRun { latencies, results }
}

/// The `p`-th percentile (0..=100) of a sorted duration slice.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[rank]
}

/// Measures one (dataset, policy) cell: fresh server, client fleet,
/// aggregate latencies. Returns (qps, p50, p99, total results, mean
/// observed batch).
fn measure(
    index: &ShardedIndex<HintMSubs>,
    queries: &[RangeQuery],
    config: ServeConfig,
) -> (f64, Duration, Duration, u64, f64) {
    let server = Server::start(Session::new(index.clone()), config).expect("start server");
    let per_client = queries.len().div_ceil(CLIENTS);
    let t0 = Instant::now();
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(per_client)
            .map(|chunk| {
                let (client_end, server_end) = duplex();
                server.attach(server_end);
                let client = Client::new(client_end).expect("split transport");
                scope.spawn(move || run_client(client, chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = server.stats();
    server.shutdown();
    let mut latencies: Vec<Duration> = runs.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort_unstable();
    let results: u64 = runs.iter().map(|r| r.results).sum();
    (
        queries.len() as f64 / elapsed,
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
        results,
        stats.mean_batch(),
    )
}

fn workloads(cfg: &RunConfig) -> Vec<Dataset> {
    vec![datasets::real(
        RealDataset::Taxis,
        &RunConfig {
            scale_mul: cfg.scale_mul * 4,
            ..*cfg
        },
    )]
}

/// Runs the experiment and writes `BENCH_serve.json`.
pub fn run(cfg: &RunConfig) {
    println!(
        "== Batched serving: end-to-end latency/throughput vs batch window \
         ({CLIENTS} connections, pipeline {WINDOW}) =="
    );
    let mut rows = String::new();
    for ds in workloads(cfg) {
        let m = model_m(&ds, DEFAULT_EXTENT, cfg.max_m);
        let shard_m = m.saturating_sub(SHARDS.trailing_zeros()).max(1);
        let mut index =
            ShardedIndex::build_with_domain(&ds.data, 0, ds.domain - 1, SHARDS, |slice, lo, hi| {
                HintMSubs::build_with_domain(
                    slice,
                    Domain::new(lo, hi, shard_m),
                    SubsConfig::full(),
                )
            });
        hint_core::IntervalIndex::seal(&mut index);
        let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
        println!(
            "\n[{} | n={} m={} shards={} queries={}]",
            ds.name,
            ds.data.len(),
            m,
            SHARDS,
            queries.queries().len(),
        );
        println!(
            "{:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "setting", "q/s", "p50 us", "p99 us", "batch", "speedup"
        );
        rule(74);
        let mut base_qps = 0.0f64;
        let mut best_batched_qps = 0.0f64;
        let mut cliff_qps = 0.0f64;
        let mut adaptive_qps = 0.0f64;
        let mut base_results = None;
        for (label, config) in settings() {
            let (qps, p50, p99, results, mean_batch) = measure(&index, queries.queries(), config);
            match base_results {
                None => base_results = Some(results),
                Some(want) => assert_eq!(
                    results, want,
                    "{label}: served results diverged across batch windows"
                ),
            }
            if label == "window-1" {
                base_qps = qps;
            } else if label == "adaptive" {
                adaptive_qps = qps;
            } else {
                best_batched_qps = best_batched_qps.max(qps);
            }
            if label == "window-64" {
                cliff_qps = qps;
            }
            let speedup = qps / base_qps.max(1e-9);
            println!(
                "{:>12} {:>12.0} {:>12.1} {:>12.1} {:>10.1} {:>9.2}x",
                label,
                qps,
                p50.as_secs_f64() * 1e6,
                p99.as_secs_f64() * 1e6,
                mean_batch,
                speedup,
            );
            if !rows.is_empty() {
                rows.push(',');
            }
            write!(
                rows,
                "\n    {{\"dataset\": \"{}\", \"setting\": \"{}\", \"mode\": \"{}\", \
                 \"max_batch\": {}, \"max_delay_us\": {}, \"qps\": {:.1}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"mean_batch\": {:.2}, \"results\": {}, \
                 \"speedup_vs_window1\": {:.3}}}",
                ds.name,
                label,
                config.mode,
                config.max_batch,
                config.max_delay.as_micros(),
                qps,
                p50.as_secs_f64() * 1e6,
                p99.as_secs_f64() * 1e6,
                mean_batch,
                results,
                speedup,
            )
            .unwrap();
        }
        // the acceptance bar for this experiment: batching must pay —
        // the best batched window beats scheduling every query solo
        assert!(
            best_batched_qps > base_qps,
            "{}: no batched window beat window-1 ({best_batched_qps:.0} vs {base_qps:.0} q/s)",
            ds.name,
        );
        // the window-64 cliff, pinned: a mistuned static window
        // collapses because every batch waits out the full 500us delay
        // (window-64 runs at ~0.5x window-1 here), and the adaptive
        // controller must stay far clear of that collapse while never
        // paying a batching tax vs the unbatched baseline. Note this
        // closed-loop lockstep fleet (CLIENTS x WINDOW in-flight)
        // rewards windows *below* the in-flight count — execute and
        // reply-I/O overlap — which occupancy feedback cannot observe,
        // so matching the hand-tuned best static here is not the
        // controller's claim; the open-loop `latency` experiment pins
        // match-best-static under Poisson arrivals.
        assert!(
            adaptive_qps >= 1.5 * cliff_qps,
            "{}: adaptive window reproduced the window-64 collapse ({adaptive_qps:.0} vs \
             cliff {cliff_qps:.0} q/s)",
            ds.name,
        );
        // 0.75: adaptive and window-1 land within a few percent of each
        // other in this lockstep scenario, but quick-mode runs (a few
        // hundred queries) jitter either side by ~15% run to run on a
        // loaded core — the floor only has to rule out the ~2x cliff
        assert!(
            adaptive_qps >= 0.75 * base_qps,
            "{}: adaptive window paid a batching tax ({adaptive_qps:.0} vs window-1 \
             {base_qps:.0} q/s)",
            ds.name,
        );
    }
    let json = format!(
        "{{\n  \"experiment\": \"serve\",\n  \"workload\": \"end-to-end serving over in-memory \
         duplex transports, closed-loop client fleet\",\n  \"config\": {{\"scale_mul\": {}, \
         \"queries\": {}, \"max_m\": {}, \"seed\": {}, \"clients\": {}, \"window\": {}, \
         \"shards\": {}}},\n  \"rows\": [{}\n  ]\n}}\n",
        cfg.scale_mul, cfg.queries, cfg.max_m, cfg.seed, CLIENTS, WINDOW, SHARDS, rows
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("\nwrote BENCH_serve.json"),
        Err(e) => eprintln!("\ncould not write BENCH_serve.json: {e}"),
    }
}
