//! Figure 12: effect of the §4.2 skew/sparsity handling and the §4.3
//! cache-miss reduction on HINT^m (size, build time, throughput vs `m`).
//!
//! Expected shape (paper §5.2.3): the version with both optimizations is
//! superior everywhere; skew/sparsity cuts space at large `m` (many empty
//! bottom partitions), the columnar ids array cuts misses on the
//! comparison-free path.

use crate::datasets;
use crate::experiments::{rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::{mb, query_throughput, time};
use crate::RunConfig;
use hint_core::{Hint, HintMSubs, HintOptions, SubsConfig};

/// Runs the experiment and prints one block per dataset.
pub fn run(cfg: &RunConfig) {
    println!("== Figure 12: skewness & sparsity + cache-miss optimizations ==");
    for ds in datasets::opt_study(cfg) {
        let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
        println!("\n[{} | n={} domain={}]", ds.name, ds.data.len(), ds.domain);
        println!(
            "{:>4} {:>22} {:>12} {:>12} {:>16}",
            "m", "variant", "size [MB]", "build [s]", "queries/s"
        );
        rule(72);
        let mut m = 5;
        while m <= cfg.max_m {
            // baseline: subs+sort+sopt, per-partition storage
            {
                let (t, idx) = time(|| HintMSubs::build(&ds.data, m, SubsConfig::full()));
                let qps = query_throughput(&idx, queries.queries()).qps;
                println!(
                    "{m:>4} {:>22} {:>12.1} {:>12.3} {qps:>16.0}",
                    "subs+sort+sopt",
                    mb(idx.size_bytes()),
                    t
                );
            }
            for (name, opts) in [
                (
                    "skewness & sparsity",
                    HintOptions {
                        sparse: true,
                        columnar: false,
                    },
                ),
                (
                    "cache misses",
                    HintOptions {
                        sparse: false,
                        columnar: true,
                    },
                ),
                (
                    "all optimizations",
                    HintOptions {
                        sparse: true,
                        columnar: true,
                    },
                ),
            ] {
                let (t, idx) = time(|| Hint::build_with_options(&ds.data, m, opts));
                let qps = query_throughput(&idx, queries.queries()).qps;
                println!(
                    "{m:>4} {name:>22} {:>12.1} {:>12.3} {qps:>16.0}",
                    mb(idx.size_bytes()),
                    t
                );
            }
            m += 4;
        }
    }
}
