//! Multi-index serving scenarios (beyond the paper's figures): the
//! catalog-era wire verbs measured against the direct library API.
//!
//! Three scenarios run over one server hosting two named indexes built
//! from disjoint halves of TAXIS:
//!
//! * **allen** — the `Allen` wire verb (relation refined server-side at
//!   the sink) vs `AllenIndex::select` in-process, for a left-overlap /
//!   containment / equality mix;
//! * **join** — the streamed `Join` verb (outer index probed into the
//!   inner index server-side, pairs streamed back) vs the library's
//!   `index_join` over the same windows;
//! * **topk** — the `TopK` aggregation verb (bounded heap forked and
//!   merged across shards) vs the collect-then-sort shape the verb
//!   replaces: ship every overlapping id to the client, look up
//!   durations, sort, truncate.
//!
//! Every scenario asserts the served answers bit-identical to the
//! direct ones in-run before any rate is reported. Writes
//! `BENCH_scenarios.json` with one row per scenario.

use crate::datasets::{self};
use crate::experiments::{model_m, rule, uniform_queries, DEFAULT_EXTENT};
use crate::RunConfig;
use hint_core::{index_join, AllenIndex, AllenRelation, Hint, Interval, RangeQuery};
use serve::{duplex, Client, ServeConfig, Server};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::realistic::RealDataset;

/// Cap on the per-index ingest (the scenarios measure verb dispatch,
/// not bulk-load; wire ingest is one frame per interval).
const MAX_PER_INDEX: usize = 30_000;

/// Windows driven through the join scenario (joins emit O(pairs), so a
/// handful of windows already dominates the verb cost).
const JOIN_WINDOWS: usize = 24;

/// The relation mix the allen scenario sweeps.
const RELATIONS: [AllenRelation; 3] = [
    AllenRelation::Overlaps,
    AllenRelation::During,
    AllenRelation::FinishedBy,
];

/// `k` for the top-k scenario.
const TOP_K: u32 = 16;

/// Builds an empty-default server plus two named wire indexes holding
/// `outer` and `inner`, sealed. Returns the admin client and the ids.
fn bring_up(
    domain: u64,
    outer: &[Interval],
    inner: &[Interval],
) -> (Server, Client<serve::DuplexTransport>, u32, u32) {
    use hint_core::{Domain, HintMSubs, Session, ShardedIndex, SubsConfig};
    let sharded = ShardedIndex::build_with_domain(&[], 0, domain - 1, 1, |slice, lo, hi| {
        HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 4), SubsConfig::update_friendly())
    });
    let server =
        Server::start(Session::new(sharded), ServeConfig::default()).expect("start server");
    let (client_end, server_end) = duplex();
    server.attach(server_end);
    let mut client = Client::new(client_end).expect("split transport");
    let outer_id = client.create_index("outer", 0, domain - 1).expect("create");
    let inner_id = client.create_index("inner", 0, domain - 1).expect("create");
    for s in outer {
        client.insert_on(Some(outer_id), *s).expect("ingest outer");
    }
    for s in inner {
        client.insert_on(Some(inner_id), *s).expect("ingest inner");
    }
    client.seal_on(Some(outer_id)).expect("seal outer");
    client.seal_on(Some(inner_id)).expect("seal inner");
    (server, client, outer_id, inner_id)
}

/// Runs the experiment and writes `BENCH_scenarios.json`.
pub fn run(cfg: &RunConfig) {
    println!("== Multi-index serving scenarios: catalog verbs vs the direct library ==");
    let ds = datasets::real(RealDataset::Taxis, cfg);
    let m = model_m(&ds, DEFAULT_EXTENT, cfg.max_m);
    let half = (ds.data.len() / 2).min(MAX_PER_INDEX);
    let outer_data: Vec<Interval> = ds.data[..half].to_vec();
    let inner_data: Vec<Interval> = ds.data[half..half * 2].to_vec();
    let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
    let qs = queries.queries();
    // Allen selections need windows wide enough to *contain* intervals
    // (During/FinishedBy are empty against stab-sized windows); 5% of
    // the domain keeps every relation in the mix non-vacuous
    let wide = uniform_queries(&ds, 0.05, cfg);
    let wide_qs = wide.queries();
    println!(
        "\n[{} | {} per index, m={}, {} queries]",
        ds.name,
        half,
        m,
        qs.len()
    );

    let (server, mut client, outer_id, inner_id) = bring_up(ds.domain, &outer_data, &inner_data);
    let direct_allen = AllenIndex::build(&outer_data, m);
    let direct_inner = Hint::build(&inner_data, m);
    let durations: HashMap<u64, u64> = outer_data.iter().map(|s| (s.id, s.end - s.st)).collect();

    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12}",
        "scenario", "served/s", "direct/s", "ratio", "results"
    );
    rule(62);
    let mut rows = String::new();
    let mut emit = |name: &str, served_qps: f64, direct_qps: f64, results: u64, note: &str| {
        let ratio = served_qps / direct_qps.max(1e-9);
        println!("{name:>8} {served_qps:>14.0} {direct_qps:>14.0} {ratio:>9.3}x {results:>12}");
        if !rows.is_empty() {
            rows.push(',');
        }
        write!(
            rows,
            "\n    {{\"scenario\": \"{name}\", \"served_per_sec\": {served_qps:.1}, \
             \"direct_per_sec\": {direct_qps:.1}, \"served_over_direct\": {ratio:.4}, \
             \"results\": {results}, \"baseline\": \"{note}\"}}"
        )
        .unwrap();
    };

    // --- allen: wire verb vs AllenIndex::select ----------------------
    {
        let mut served: Vec<Vec<u64>> = Vec::new();
        let t0 = Instant::now();
        for rel in RELATIONS {
            for q in wide_qs {
                let mut ids = client.allen_on(Some(outer_id), rel, *q).expect("allen");
                ids.sort_unstable();
                served.push(ids);
            }
        }
        let served_dt = t0.elapsed().as_secs_f64().max(1e-9);
        let mut total = 0u64;
        let t0 = Instant::now();
        let mut i = 0usize;
        for rel in RELATIONS {
            for q in wide_qs {
                let mut want = Vec::new();
                direct_allen.select(rel, *q, &mut want);
                want.sort_unstable();
                assert_eq!(served[i], want, "allen {rel:?} diverged on {q:?}");
                total += want.len() as u64;
                i += 1;
            }
        }
        let direct_dt = t0.elapsed().as_secs_f64().max(1e-9);
        let n = (RELATIONS.len() * wide_qs.len()) as f64;
        emit(
            "allen",
            n / served_dt,
            n / direct_dt,
            total,
            "AllenIndex::select in-process",
        );
    }

    // --- join: streamed wire join vs library index_join --------------
    {
        let windows: Vec<RangeQuery> = wide_qs.iter().take(JOIN_WINDOWS).copied().collect();
        let mut served: Vec<Vec<(u64, u64)>> = Vec::new();
        let t0 = Instant::now();
        for q in &windows {
            let mut pairs = client.join_on(Some(outer_id), inner_id, *q).expect("join");
            pairs.sort_unstable();
            served.push(pairs);
        }
        let served_dt = t0.elapsed().as_secs_f64().max(1e-9);
        let mut total = 0u64;
        let t0 = Instant::now();
        for (i, q) in windows.iter().enumerate() {
            let clipped: Vec<Interval> = outer_data
                .iter()
                .filter(|o| o.st <= q.end && o.end >= q.st)
                .map(|o| Interval::new(o.id, o.st.max(q.st), o.end.min(q.end)))
                .collect();
            let mut want = Vec::new();
            index_join(&direct_inner, &clipped, |o, n| want.push((o, n)));
            want.sort_unstable();
            assert_eq!(served[i], want, "join diverged on {q:?}");
            total += want.len() as u64;
        }
        let direct_dt = t0.elapsed().as_secs_f64().max(1e-9);
        let n = windows.len() as f64;
        emit(
            "join",
            n / served_dt,
            n / direct_dt,
            total,
            "index_join in-process",
        );
    }

    // --- topk: aggregation verb vs collect-then-sort -----------------
    {
        let mut served: Vec<Vec<u64>> = Vec::new();
        let t0 = Instant::now();
        for q in qs {
            served.push(client.top_k_on(Some(outer_id), TOP_K, *q).expect("topk"));
        }
        let served_dt = t0.elapsed().as_secs_f64().max(1e-9);
        let mut total = 0u64;
        let t0 = Instant::now();
        for (i, q) in qs.iter().enumerate() {
            // the shape the verb replaces: ship every id, then sort
            let ids = client.query_on(Some(outer_id), *q).expect("collect");
            let mut by_len: Vec<(u64, u64)> =
                ids.into_iter().map(|id| (durations[&id], id)).collect();
            by_len.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let want: Vec<u64> = by_len
                .into_iter()
                .take(TOP_K as usize)
                .map(|(_, id)| id)
                .collect();
            assert_eq!(served[i], want, "top-k diverged on {q:?}");
            total += want.len() as u64;
        }
        let baseline_dt = t0.elapsed().as_secs_f64().max(1e-9);
        let n = qs.len() as f64;
        emit(
            "topk",
            n / served_dt,
            n / baseline_dt,
            total,
            "served collect-then-sort",
        );
    }

    drop(client);
    server.shutdown();

    let json = format!(
        "{{\n  \"experiment\": \"scenarios\",\n  \"workload\": \"two named wire indexes over \
         disjoint TAXIS halves; Allen / streamed-join / top-k verbs vs the direct library \
         API, asserted identical in-run\",\n  \"config\": {{\"scale_mul\": {}, \"queries\": {}, \
         \"max_m\": {}, \"seed\": {}, \"per_index\": {}, \"join_windows\": {}, \"top_k\": {}}},\n  \
         \"rows\": [{}\n  ]\n}}\n",
        cfg.scale_mul, cfg.queries, cfg.max_m, cfg.seed, half, JOIN_WINDOWS, TOP_K, rows
    );
    match std::fs::write("BENCH_scenarios.json", &json) {
        Ok(()) => println!("\nwrote BENCH_scenarios.json"),
        Err(e) => eprintln!("\ncould not write BENCH_scenarios.json: {e}"),
    }
}
