//! Figure 11: effect of the §4.1 subdivisions + sorting + storage
//! optimizations on HINT^m (index size, build time, query throughput as a
//! function of `m`; BOOKS and TAXIS clones).
//!
//! Expected shape (paper §5.2.2): `subs+sort+sopt` dominates throughput
//! at every `m`; `subs+sopt` yields the small index, `sort` helps at
//! small `m` where boundary partitions are large.

use crate::datasets;
use crate::experiments::{rule, uniform_queries, DEFAULT_EXTENT};
use crate::measure::{mb, query_throughput, time};
use crate::RunConfig;
use hint_core::{HintMBase, HintMSubs, SubsConfig};

struct Variant {
    name: &'static str,
    cfg: Option<SubsConfig>, // None = base HINT^m
}

const VARIANTS: [Variant; 4] = [
    Variant {
        name: "base",
        cfg: None,
    },
    Variant {
        name: "subs+sort",
        cfg: Some(SubsConfig {
            sort: true,
            sopt: false,
        }),
    },
    Variant {
        name: "subs+sopt",
        cfg: Some(SubsConfig {
            sort: false,
            sopt: true,
        }),
    },
    Variant {
        name: "subs+sort+sopt",
        cfg: Some(SubsConfig {
            sort: true,
            sopt: true,
        }),
    },
];

/// Runs the experiment and prints one block per dataset.
pub fn run(cfg: &RunConfig) {
    println!("== Figure 11: HINT^m subdivisions & space decomposition ==");
    for ds in datasets::opt_study(cfg) {
        let queries = uniform_queries(&ds, DEFAULT_EXTENT, cfg);
        println!("\n[{} | n={} domain={}]", ds.name, ds.data.len(), ds.domain);
        println!(
            "{:>4} {:>16} {:>12} {:>12} {:>16}",
            "m", "variant", "size [MB]", "build [s]", "queries/s"
        );
        rule(66);
        let mut m = 5;
        while m <= cfg.max_m {
            for v in &VARIANTS {
                let (size, build, qps) = match v.cfg {
                    None => {
                        let (t, idx) = time(|| HintMBase::build(&ds.data, m));
                        (
                            idx.size_bytes(),
                            t,
                            query_throughput(&idx, queries.queries()).qps,
                        )
                    }
                    Some(sc) => {
                        let (t, idx) = time(|| HintMSubs::build(&ds.data, m, sc));
                        (
                            idx.size_bytes(),
                            t,
                            query_throughput(&idx, queries.queries()).qps,
                        )
                    }
                };
                println!(
                    "{m:>4} {:>16} {:>12.1} {:>12.3} {:>16.0}",
                    v.name,
                    mb(size),
                    build,
                    qps
                );
            }
            m += 4;
        }
    }
}
