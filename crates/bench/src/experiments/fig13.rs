//! Figure 13: query throughput of all six indexes vs query extent
//! (stabbing, 0.01%, 0.05%, 0.1%, 0.5%, 1% of the domain) on the four
//! dataset clones.
//!
//! Expected shape: HINT and HINT^m lead by roughly an order of magnitude
//! across the board; 1D-grid closes in only on GREEND (near-point
//! intervals); throughput of every index decays with extent.

use crate::datasets;
use crate::experiments::{build_all, rule, uniform_queries};
use crate::measure::query_throughput;
use crate::RunConfig;

/// The paper's extent grid (fraction of the domain; 0 = stabbing).
pub const EXTENTS: [(f64, &str); 6] = [
    (0.0, "stab"),
    (0.0001, "0.01%"),
    (0.0005, "0.05%"),
    (0.001, "0.1%"),
    (0.005, "0.5%"),
    (0.01, "1%"),
];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    println!("== Figure 13: throughput [queries/s] vs query extent ==");
    for ds in datasets::all_real(cfg) {
        println!("\n[{} | n={} domain={}]", ds.name, ds.data.len(), ds.domain);
        let indexes = build_all(&ds, cfg);
        print!("{:>14}", "index");
        for (_, label) in EXTENTS {
            print!(" {label:>10}");
        }
        println!();
        rule(14 + EXTENTS.len() * 11);
        for (name, _, idx) in &indexes {
            print!("{name:>14}");
            for (frac, _) in EXTENTS {
                let queries = uniform_queries(&ds, frac, cfg);
                let t = query_throughput(idx.as_ref(), queries.queries());
                print!(" {:>10.0}", t.qps);
            }
            println!();
        }
    }
}
