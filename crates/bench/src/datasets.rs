//! Dataset registry for the experiments: realistic Table-4 clones at the
//! harness run scale, plus the Table-5 synthetic generator defaults.

use crate::RunConfig;
use hint_core::Interval;
use workloads::realistic::{RealDataset, RealisticConfig};

/// A generated dataset plus the bookkeeping the experiments need.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Paper name (BOOKS, WEBKIT, ...).
    pub name: &'static str,
    /// The intervals.
    pub data: Vec<Interval>,
    /// Domain length used by the generator.
    pub domain: u64,
    /// Scale divisor relative to the paper's dataset.
    pub scale: u64,
}

/// Generates the clone of one real dataset under the run configuration.
pub fn real(ds: RealDataset, cfg: &RunConfig) -> Dataset {
    let scale = ds.default_scale() * cfg.scale_mul;
    let rc = RealisticConfig::new(ds)
        .with_scale(scale)
        .with_seed(cfg.seed);
    Dataset {
        name: ds.name(),
        data: rc.generate(),
        domain: rc.domain(),
        scale,
    }
}

/// Generates all four real-dataset clones.
pub fn all_real(cfg: &RunConfig) -> Vec<Dataset> {
    RealDataset::ALL.iter().map(|&ds| real(ds, cfg)).collect()
}

/// The two datasets the paper uses for the optimization studies
/// (Figures 10-12: BOOKS for long intervals, TAXIS for short ones).
pub fn opt_study(cfg: &RunConfig) -> Vec<Dataset> {
    vec![real(RealDataset::Books, cfg), real(RealDataset::Taxis, cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_generates_all_clones() {
        let cfg = RunConfig {
            scale_mul: 64,
            ..RunConfig::quick()
        };
        let all = all_real(&cfg);
        assert_eq!(all.len(), 4);
        for d in &all {
            assert!(!d.data.is_empty(), "{}", d.name);
        }
        assert_eq!(all[0].name, "BOOKS");
    }
}
