//! Timing utilities: build-time and query-throughput measurement in the
//! paper's units (seconds to build, queries/second to search).

use hint_core::{IntervalId, IntervalIndex, RangeQuery};
use std::time::Instant;

/// Result of a throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Queries per second.
    pub qps: f64,
    /// Total results reported (sanity check between indexes).
    pub results: u64,
}

/// Runs the full query batch against `index` and reports throughput.
/// The result buffer is reused across queries, as in the paper's setup
/// (throughput measurement over 10K random queries).
pub fn query_throughput<I: IntervalIndex + ?Sized>(
    index: &I,
    queries: &[RangeQuery],
) -> Throughput {
    let mut out: Vec<IntervalId> = Vec::with_capacity(1024);
    let mut results = 0u64;
    let t0 = Instant::now();
    for &q in queries {
        out.clear();
        index.query(q, &mut out);
        results += out.len() as u64;
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        qps: queries.len() as f64 / secs,
        results,
    }
}

/// Count-only throughput: every query runs through
/// [`IntervalIndex::count`] (a `CountSink`), so no result vector is ever
/// written — the access mode the paper's counting/selectivity figures
/// assume.
pub fn count_throughput<I: IntervalIndex + ?Sized>(
    index: &I,
    queries: &[RangeQuery],
) -> Throughput {
    let mut results = 0u64;
    let t0 = Instant::now();
    for &q in queries {
        results += index.count(q) as u64;
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        qps: queries.len() as f64 / secs,
        results,
    }
}

/// Existence-test throughput: every query runs through
/// [`IntervalIndex::exists`] (an `ExistsSink`), terminating each scan at
/// its first hit. `results` counts queries with a non-empty answer.
pub fn exists_throughput<I: IntervalIndex + ?Sized>(
    index: &I,
    queries: &[RangeQuery],
) -> Throughput {
    let mut results = 0u64;
    let t0 = Instant::now();
    for &q in queries {
        results += u64::from(index.exists(q));
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        qps: queries.len() as f64 / secs,
        results,
    }
}

/// Batched-query throughput: queries run through
/// [`IntervalIndex::query_batch`] in chunks of `batch`, one collecting
/// sink per query (sinks are reused across chunks). Indexes with sealed
/// or merged storage answer each chunk with one shared level walk.
pub fn batch_throughput<I: IntervalIndex + ?Sized>(
    index: &I,
    queries: &[hint_core::RangeQuery],
    batch: usize,
) -> Throughput {
    use hint_core::QuerySink;
    let batch = batch.max(1);
    let mut bufs: Vec<Vec<IntervalId>> = (0..batch).map(|_| Vec::with_capacity(256)).collect();
    let mut results = 0u64;
    let t0 = Instant::now();
    for chunk in queries.chunks(batch) {
        let bufs = &mut bufs[..chunk.len()];
        for b in bufs.iter_mut() {
            b.clear();
        }
        let mut sinks: Vec<&mut dyn QuerySink> =
            bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
        index.query_batch(chunk, &mut sinks);
        results += bufs.iter().map(|b| b.len() as u64).sum::<u64>();
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        qps: queries.len() as f64 / secs,
        results,
    }
}

/// Batched counting throughput: like [`batch_throughput`] but with one
/// [`CountSink`](hint_core::CountSink) per query, so no result vector is
/// ever written — the pure cost of the shared level walk.
pub fn batch_count_throughput<I: IntervalIndex + ?Sized>(
    index: &I,
    queries: &[hint_core::RangeQuery],
    batch: usize,
) -> Throughput {
    use hint_core::{CountSink, QuerySink};
    let batch = batch.max(1);
    let mut counts: Vec<CountSink> = vec![CountSink::new(); batch];
    let mut results = 0u64;
    let t0 = Instant::now();
    for chunk in queries.chunks(batch) {
        let counts = &mut counts[..chunk.len()];
        counts.fill(CountSink::new());
        let mut sinks: Vec<&mut dyn QuerySink> =
            counts.iter_mut().map(|c| c as &mut dyn QuerySink).collect();
        index.query_batch(chunk, &mut sinks);
        results += counts.iter().map(|c| c.count() as u64).sum::<u64>();
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        qps: queries.len() as f64 / secs,
        results,
    }
}

/// The shared batched-enumeration timing loop: drives `queries` through
/// `run(chunk, bufs)` in windows of `batch` collecting-`Vec` sinks
/// (reused across windows), totalling results. Every batched
/// enumeration measurement — scoped executor, worker pool, a served
/// session — is this loop with a different `run`.
pub fn batched_throughput_with(
    queries: &[RangeQuery],
    batch: usize,
    mut run: impl FnMut(&[RangeQuery], &mut [Vec<IntervalId>]),
) -> Throughput {
    let batch = batch.max(1);
    let mut bufs: Vec<Vec<IntervalId>> = (0..batch).map(|_| Vec::with_capacity(256)).collect();
    let mut results = 0u64;
    let t0 = Instant::now();
    for chunk in queries.chunks(batch) {
        let bufs = &mut bufs[..chunk.len()];
        for b in bufs.iter_mut() {
            b.clear();
        }
        run(chunk, bufs);
        results += bufs.iter().map(|b| b.len() as u64).sum::<u64>();
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        qps: queries.len() as f64 / secs,
        results,
    }
}

/// Batched-query throughput through the sharded executor's **typed
/// merge path** (`ShardedIndex::query_batch_merge`): queries run in
/// chunks of `batch`, one collecting `Vec` fork per (query, shard) pair,
/// merged back saturation-aware in shard order.
pub fn merge_batch_throughput<I: IntervalIndex + Sync>(
    index: &hint_core::ShardedIndex<I>,
    queries: &[RangeQuery],
    batch: usize,
) -> Throughput {
    batched_throughput_with(queries, batch, |chunk, bufs| {
        index.query_batch_merge(chunk, bufs)
    })
}

/// Batched-query throughput through the typed merge path with
/// **zero-copy [`HandleSink`](hint_core::HandleSink) forks**: the read
/// path as the wire server drives it. Comparison-free runs cross the
/// fork/merge boundary as arena-slice handles (O(1) per run), the merge
/// concatenates run lists in shard order (O(runs), not O(ids)), and
/// nothing is materialized — the consumer encodes frames straight from
/// the arena slices (`serve`'s `WireSink`). Use
/// [`assert_handle_merge_matches_solo`] to pin the stream's content to
/// the solo path's, id for id.
pub fn merge_handle_throughput<I: IntervalIndex + Sync>(
    index: &hint_core::ShardedIndex<I>,
    queries: &[RangeQuery],
    batch: usize,
) -> Throughput {
    use hint_core::HandleSink;
    let batch = batch.max(1);
    let mut sinks: Vec<HandleSink> = vec![HandleSink::new(); batch];
    let mut results = 0u64;
    let t0 = Instant::now();
    for chunk in queries.chunks(batch) {
        let sinks = &mut sinks[..chunk.len()];
        for s in sinks.iter_mut() {
            s.clear();
        }
        index.query_batch_merge(chunk, sinks);
        results += sinks.iter().map(|s| s.len() as u64).sum::<u64>();
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        qps: queries.len() as f64 / secs,
        results,
    }
}

/// Untimed differential for the zero-copy merge path: every query's
/// [`HandleSink`](hint_core::HandleSink) stream, materialized, must be
/// the exact id sequence the solo `query` path produces. Panics on the
/// first divergence.
pub fn assert_handle_merge_matches_solo<I: IntervalIndex + Sync>(
    index: &hint_core::ShardedIndex<I>,
    queries: &[RangeQuery],
    batch: usize,
) {
    use hint_core::HandleSink;
    let mut solo: Vec<IntervalId> = Vec::new();
    for chunk in queries.chunks(batch.max(1)) {
        let mut sinks: Vec<HandleSink> = vec![HandleSink::new(); chunk.len()];
        index.query_batch_merge(chunk, &mut sinks);
        for (q, sink) in chunk.iter().zip(sinks) {
            solo.clear();
            index.query(*q, &mut solo);
            assert_eq!(
                sink.into_vec(),
                solo,
                "zero-copy handle merge diverged from solo at {q:?}"
            );
        }
    }
}

/// Count-only throughput through the sharded executor's typed merge
/// path: one `CountSink` fork per (query, shard) pair, so no result
/// vector is ever written on either side of the merge boundary.
pub fn merge_count_throughput<I: IntervalIndex + Sync>(
    index: &hint_core::ShardedIndex<I>,
    queries: &[RangeQuery],
    batch: usize,
) -> Throughput {
    use hint_core::CountSink;
    let batch = batch.max(1);
    let mut counts: Vec<CountSink> = vec![CountSink::new(); batch];
    let mut results = 0u64;
    let t0 = Instant::now();
    for chunk in queries.chunks(batch) {
        let counts = &mut counts[..chunk.len()];
        counts.fill(CountSink::new());
        index.query_batch_merge(chunk, counts);
        results += counts.iter().map(|c| c.count() as u64).sum::<u64>();
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        qps: queries.len() as f64 / secs,
        results,
    }
}

/// Batched-query throughput through a **scoped fan-out with a forced
/// worker count** (`ShardedIndex::query_batch_merge_workers`): the PR 3
/// executor as it runs on multi-core hardware — one thread *spawned per
/// batch* per active shard — measured at `workers` regardless of the
/// machine's parallelism, so the per-batch spawn cost it pays is visible
/// next to the persistent pool's dispatch on any host.
pub fn scoped_batch_throughput<I: IntervalIndex + Sync>(
    index: &hint_core::ShardedIndex<I>,
    queries: &[RangeQuery],
    batch: usize,
    workers: usize,
) -> Throughput {
    batched_throughput_with(queries, batch, |chunk, bufs| {
        index.query_batch_merge_workers(chunk, bufs, workers)
    })
}

/// Batched-query throughput through the persistent shard-worker pool
/// (`ShardPool::query_batch_merge`): same fork/merge semantics as the
/// scoped path, but dispatched over channels to the long-lived,
/// shard-owning workers — zero per-batch thread spawns.
pub fn pool_batch_throughput<I: IntervalIndex + Send + 'static>(
    pool: &hint_core::ShardPool<I>,
    queries: &[RangeQuery],
    batch: usize,
) -> Throughput {
    batched_throughput_with(queries, batch, |chunk, bufs| {
        pool.query_batch_merge(chunk, bufs)
    })
}

/// Times a closure (e.g. an index build), returning (seconds, value).
pub fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed().as_secs_f64(), v)
}

/// Formats a byte count as MB with two decimals (Table 8 units).
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hint_core::{Hint, Interval};

    #[test]
    fn throughput_counts_results() {
        let data: Vec<Interval> = (0..100)
            .map(|i| Interval::new(i, i * 10, i * 10 + 5))
            .collect();
        let idx = Hint::build(&data, 8);
        let queries = vec![RangeQuery::new(0, 995); 10];
        let t = query_throughput(&idx, &queries);
        assert_eq!(t.results, 1000);
        assert!(t.qps > 0.0);
    }

    #[test]
    fn time_measures_nonnegative() {
        let (secs, v) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
