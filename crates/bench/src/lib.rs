//! Benchmark harness for the HINT reproduction.
//!
//! The [`experiments`] module contains one generator per table and figure
//! of the paper's evaluation (§5); the `harness` binary exposes them as
//! subcommands and prints paper-style rows. [`measure`] holds the shared
//! timing utilities and [`datasets`] the dataset registry.
//!
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod measure;

/// Runtime options shared by all experiments (set from harness CLI flags).
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Extra divisor applied on top of each dataset's default scale
    /// (>1 = smaller/faster, e.g. for smoke tests).
    pub scale_mul: u64,
    /// Number of queries per throughput measurement.
    pub queries: usize,
    /// Largest `m` in the `m`-sweeps (Figures 10-12).
    pub max_m: u32,
    /// RNG seed for workloads.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            scale_mul: 1,
            queries: 10_000,
            max_m: 17,
            seed: 42,
        }
    }
}

impl RunConfig {
    /// A fast configuration for smoke tests / CI.
    pub fn quick() -> Self {
        Self {
            scale_mul: 8,
            queries: 1_000,
            max_m: 13,
            seed: 42,
        }
    }
}
