//! Experiment harness: regenerates every table and figure of the HINT
//! paper's evaluation (§5) on the statistical dataset clones.
//!
//! ```text
//! cargo run -p bench --release --bin harness -- <experiment> [flags]
//!
//! experiments:
//!   fig10 fig11 fig12 fig13 fig14 table6 table7 table8 table9 table10
//!   ablation        extra: comparison counts vs m (Lemma 4 / Theorem 2)
//!   countmode       extra: enumerate vs count vs exists throughput
//!   cachelayout     extra: nested-Vec vs sealed-CSR storage + query_batch
//!   shardscale      extra: sharded parallel executor throughput vs K
//!   serve           extra: batched serving latency/throughput vs batch window
//!   latency         extra: open-loop Poisson load vs the adaptive window, lanes, admission
//!   retune          extra: persistent worker pool vs scoped fan-out + adaptive per-shard m
//!   snapshot        extra: durable snapshot save bandwidth + restore vs rebuild
//!   scenarios       extra: multi-index catalog verbs (Allen/join/top-k) vs the direct library
//!   all             run everything (paper order)
//!
//! flags:
//!   --quick         small datasets + 1K queries (smoke test)
//!   --scale N       extra dataset down-scale divisor (default 1)
//!   --queries N     queries per throughput measurement (default 10000)
//!   --max-m N       largest m in the m-sweeps (default 17)
//!   --seed N        workload RNG seed (default 42)
//! ```

use bench::{experiments, RunConfig};
use std::env;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: harness <fig10|fig11|fig12|fig13|fig14|table6|table7|table8|table9|table10|ablation|countmode|cachelayout|shardscale|serve|latency|retune|snapshot|scenarios|all> \
         [--quick] [--scale N] [--queries N] [--max-m N] [--seed N]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut cfg = RunConfig::default();
    let mut experiment = String::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                let q = RunConfig::quick();
                cfg.scale_mul = cfg.scale_mul.max(q.scale_mul);
                cfg.queries = cfg.queries.min(q.queries);
                cfg.max_m = cfg.max_m.min(q.max_m);
            }
            "--scale" => {
                cfg.scale_mul = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--queries" => {
                cfg.queries = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-m" => {
                cfg.max_m = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            name if experiment.is_empty() && !name.starts_with('-') => {
                experiment = name.to_string();
            }
            _ => usage(),
        }
    }
    if experiment.is_empty() {
        usage();
    }
    println!(
        "(config: scale x{}, {} queries, max m {}, seed {})\n",
        cfg.scale_mul, cfg.queries, cfg.max_m, cfg.seed
    );
    let run_one = |name: &str| match name {
        "fig10" => experiments::fig10::run(&cfg),
        "fig11" => experiments::fig11::run(&cfg),
        "fig12" => experiments::fig12::run(&cfg),
        "fig13" => experiments::fig13::run(&cfg),
        "fig14" => experiments::fig14::run(&cfg),
        "table6" => experiments::table6::run(&cfg),
        "table7" => experiments::table7::run(&cfg),
        "table8" => experiments::table8::run(&cfg),
        "table9" => experiments::table9::run(&cfg),
        "table10" => experiments::table10::run(&cfg),
        "ablation" => experiments::ablation::run(&cfg),
        "countmode" => experiments::countmode::run(&cfg),
        "cachelayout" => experiments::cachelayout::run(&cfg),
        "shardscale" => experiments::shardscale::run(&cfg),
        "serve" => experiments::serve::run(&cfg),
        "latency" => experiments::latency::run(&cfg),
        "retune" => experiments::retune::run(&cfg),
        "snapshot" => experiments::snapshot::run(&cfg),
        "scenarios" => experiments::scenarios::run(&cfg),
        _ => usage(),
    };
    if experiment == "all" {
        for name in [
            "fig10",
            "fig11",
            "table6",
            "fig12",
            "table7",
            "table8",
            "table9",
            "fig13",
            "fig14",
            "table10",
            "ablation",
            "countmode",
            "cachelayout",
            "shardscale",
            "serve",
            "latency",
            "retune",
            "snapshot",
            "scenarios",
        ] {
            run_one(name);
            println!();
        }
    } else {
        run_one(&experiment);
    }
}
