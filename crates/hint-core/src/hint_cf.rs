//! The comparison-free HINT of §3.1.
//!
//! Appropriate for discrete, not-too-large domains: with `m` chosen so that
//! every raw value maps to its own bucket ([`Domain::is_lossless`]), range
//! queries are answered **without a single endpoint comparison** — each
//! level contributes the originals of all relevant partitions plus the
//! replicas of the first relevant partition (Algorithm 2).
//!
//! Two storage layouts are provided, matching the paper's Table 6:
//!
//! * [`CfLayout::Dense`]: one `Vec` per partition (the "original" rows),
//!   simple but wasteful under sparsity — empty partitions still cost
//!   pointer-sized headers and pollute the cache during level scans.
//! * [`CfLayout::Sparse`]: per level, all originals live in one merged id
//!   table `T^O_l` with a sorted directory of non-empty partitions (§4.2),
//!   and likewise for replicas. Relevant partitions are then read as one
//!   contiguous id run.
//!
//! If the domain is lossy (`2^m` smaller than the raw span), the index
//! degrades to the paper's *approximate search on discretized data*: query
//! results are a superset computed at bucket granularity. [`HintCf::is_exact`]
//! reports which regime the index is in; the exact general-purpose index is
//! [`crate::Hint`].

use crate::assign::for_each_assignment;
use crate::domain::Domain;
use crate::interval::{Interval, IntervalId, RangeQuery, TOMBSTONE};
use crate::scan::emit_ids;
use crate::sink::QuerySink;

/// Storage layout selector for [`HintCf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfLayout {
    /// Dense per-partition vectors ("original" in Table 6).
    Dense,
    /// Merged per-level tables with a sparse directory ("optimized").
    Sparse,
}

/// Upper bound on `m` for the dense layout: `2^{m+1}` partition headers
/// must stay affordable.
const DENSE_MAX_M: u32 = 26;

#[derive(Debug, Clone, Default)]
struct DenseLevel {
    originals: Vec<Vec<IntervalId>>,
    replicas: Vec<Vec<IntervalId>>,
}

/// One subdivision group of a level in the sparse layout: a sorted
/// directory of `(partition offset, begin)` into a merged id table.
#[derive(Debug, Clone, Default)]
struct SparseGroup {
    /// Sorted by partition offset; `begin` indexes into `ids`.
    dir: Vec<(u64, u32)>,
    ids: Vec<IntervalId>,
}

impl SparseGroup {
    fn from_pairs(mut pairs: Vec<(u64, IntervalId)>) -> Self {
        pairs.sort_unstable_by_key(|&(off, _)| off);
        let mut dir = Vec::new();
        let mut ids = Vec::with_capacity(pairs.len());
        for (off, id) in pairs {
            if dir.last().map(|&(o, _)| o) != Some(off) {
                dir.push((off, ids.len() as u32));
            }
            ids.push(id);
        }
        Self { dir, ids }
    }

    /// End of the id run of directory entry `i`.
    #[inline]
    fn run_end(&self, i: usize) -> usize {
        self.dir
            .get(i + 1)
            .map_or(self.ids.len(), |&(_, b)| b as usize)
    }

    /// Index of the first directory entry with offset >= `off`.
    #[inline]
    fn lower_bound(&self, off: u64) -> usize {
        self.dir.partition_point(|&(o, _)| o < off)
    }

    /// Reports ids of all partitions with offsets in `[f, l]`.
    fn report_range<S: QuerySink + ?Sized>(
        &self,
        f: u64,
        l: u64,
        skip_tombstones: bool,
        sink: &mut S,
    ) {
        let first = self.lower_bound(f);
        if first == self.dir.len() {
            return;
        }
        let mut last = first;
        while last < self.dir.len() && self.dir[last].0 <= l {
            last += 1;
        }
        if last == first {
            return;
        }
        let begin = self.dir[first].1 as usize;
        let end = self.run_end(last - 1);
        emit_ids(&self.ids[begin..end], skip_tombstones, sink);
    }

    /// Reports ids of the single partition at `off`, if non-empty.
    fn report_one<S: QuerySink + ?Sized>(&self, off: u64, skip_tombstones: bool, sink: &mut S) {
        let i = self.lower_bound(off);
        if i < self.dir.len() && self.dir[i].0 == off {
            let begin = self.dir[i].1 as usize;
            let end = self.run_end(i);
            emit_ids(&self.ids[begin..end], skip_tombstones, sink);
        }
    }

    /// Inserts an id into partition `off`, splicing the merged table.
    /// `O(level size)` — the sparse layout is read-optimized (§4.4).
    fn insert(&mut self, off: u64, id: IntervalId) {
        let i = self.lower_bound(off);
        if i < self.dir.len() && self.dir[i].0 == off {
            let pos = self.run_end(i);
            self.ids.insert(pos, id);
            for e in &mut self.dir[i + 1..] {
                e.1 += 1;
            }
        } else {
            let pos = if i < self.dir.len() {
                self.dir[i].1 as usize
            } else {
                self.ids.len()
            };
            self.ids.insert(pos, id);
            self.dir.insert(i, (off, pos as u32));
            for e in &mut self.dir[i + 1..] {
                e.1 += 1;
            }
        }
    }

    /// Tombstones the first occurrence of `id` in partition `off`.
    fn tombstone(&mut self, off: u64, id: IntervalId) -> bool {
        let i = self.lower_bound(off);
        if i < self.dir.len() && self.dir[i].0 == off {
            let begin = self.dir[i].1 as usize;
            let end = self.run_end(i);
            for slot in &mut self.ids[begin..end] {
                if *slot == id {
                    *slot = TOMBSTONE;
                    return true;
                }
            }
        }
        false
    }

    fn size_bytes(&self) -> usize {
        self.dir.len() * std::mem::size_of::<(u64, u32)>()
            + self.ids.len() * std::mem::size_of::<IntervalId>()
    }
}

#[derive(Debug, Clone, Default)]
struct SparseLevel {
    originals: SparseGroup,
    replicas: SparseGroup,
}

#[derive(Debug, Clone)]
enum CfStorage {
    Dense(Vec<DenseLevel>),
    Sparse(Vec<SparseLevel>),
}

/// The comparison-free HINT index (§3.1).
#[derive(Debug, Clone)]
pub struct HintCf {
    domain: Domain,
    storage: CfStorage,
    live: usize,
    tombstones: usize,
}

impl HintCf {
    /// Builds the index over `data` with the given layout. `m` is the
    /// number of bottom-level bits; pass the domain's full bit width for
    /// exact (comparison-free *and* false-positive-free) behaviour.
    ///
    /// # Panics
    /// Panics if `data` is empty, or if `layout` is dense and the clamped
    /// `m` exceeds 26 (2^27 partition headers — use the sparse layout).
    pub fn build(data: &[Interval], m: u32, layout: CfLayout) -> Self {
        let domain = Domain::from_data(data, m);
        Self::build_with_domain(data, domain, layout)
    }

    /// Builds with `m` set to the full raw span (lossless ⇒ exact).
    pub fn build_exact(data: &[Interval], layout: CfLayout) -> Self {
        Self::build(data, 63, layout)
    }

    /// Builds the index with an explicit domain (used when the caller wants
    /// to pre-reserve space for values outside the current dataset).
    pub fn build_with_domain(data: &[Interval], domain: Domain, layout: CfLayout) -> Self {
        let m = domain.m();
        let storage = match layout {
            CfLayout::Dense => {
                assert!(
                    m <= DENSE_MAX_M,
                    "dense layout limited to m <= {DENSE_MAX_M} (got {m}); use CfLayout::Sparse"
                );
                let mut levels: Vec<DenseLevel> = (0..=m)
                    .map(|l| DenseLevel {
                        originals: vec![Vec::new(); 1 << l],
                        replicas: vec![Vec::new(); 1 << l],
                    })
                    .collect();
                for s in data {
                    let (a, b) = domain.map_interval(s);
                    for_each_assignment(m, a, b, |asg| {
                        let lvl = &mut levels[asg.level as usize];
                        let group = if asg.kind.is_original() {
                            &mut lvl.originals
                        } else {
                            &mut lvl.replicas
                        };
                        group[asg.offset as usize].push(s.id);
                    });
                }
                CfStorage::Dense(levels)
            }
            CfLayout::Sparse => {
                let mut o_pairs: Vec<Vec<(u64, IntervalId)>> = vec![Vec::new(); m as usize + 1];
                let mut r_pairs: Vec<Vec<(u64, IntervalId)>> = vec![Vec::new(); m as usize + 1];
                for s in data {
                    let (a, b) = domain.map_interval(s);
                    for_each_assignment(m, a, b, |asg| {
                        let pairs = if asg.kind.is_original() {
                            &mut o_pairs[asg.level as usize]
                        } else {
                            &mut r_pairs[asg.level as usize]
                        };
                        pairs.push((asg.offset, s.id));
                    });
                }
                let levels = o_pairs
                    .into_iter()
                    .zip(r_pairs)
                    .map(|(o, r)| SparseLevel {
                        originals: SparseGroup::from_pairs(o),
                        replicas: SparseGroup::from_pairs(r),
                    })
                    .collect();
                CfStorage::Sparse(levels)
            }
        };
        Self {
            domain,
            storage,
            live: data.len(),
            tombstones: 0,
        }
    }

    /// The domain the index was built over.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// True when query results are exact (lossless domain mapping). When
    /// false, [`Self::query`] returns a bucket-granularity superset.
    pub fn is_exact(&self) -> bool {
        self.domain.is_lossless()
    }

    /// Number of live (non-deleted) intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Evaluates a range query (Algorithm 2), pushing result ids into
    /// `out`. No endpoint comparisons are performed.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Evaluates a range query (Algorithm 2) into an arbitrary sink; the
    /// level walk stops once the sink is saturated. No endpoint
    /// comparisons are performed.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        if !self.domain.intersects(&q) {
            return;
        }
        let (qst, qend) = self.domain.map_query(&q);
        let m = self.domain.m();
        let skip = self.tombstones > 0;
        match &self.storage {
            CfStorage::Dense(levels) => {
                for l in (0..=m).rev() {
                    if sink.is_saturated() {
                        return;
                    }
                    let f = self.domain.prefix(l, qst);
                    let last = self.domain.prefix(l, qend);
                    let lvl = &levels[l as usize];
                    emit_ids(&lvl.replicas[f as usize], skip, sink);
                    for off in f..=last {
                        if sink.is_saturated() {
                            return;
                        }
                        emit_ids(&lvl.originals[off as usize], skip, sink);
                    }
                }
            }
            CfStorage::Sparse(levels) => {
                for l in (0..=m).rev() {
                    if sink.is_saturated() {
                        return;
                    }
                    let f = self.domain.prefix(l, qst);
                    let last = self.domain.prefix(l, qend);
                    let lvl = &levels[l as usize];
                    lvl.replicas.report_one(f, skip, sink);
                    lvl.originals.report_range(f, last, skip, sink);
                }
            }
        }
    }

    /// Convenience: stabbing query at point `t`.
    pub fn stab(&self, t: crate::interval::Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    /// Inserts a new interval (Algorithm 1). The interval's endpoints must
    /// lie inside the index domain (the hierarchical decomposition is fixed
    /// at build time).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the domain.
    pub fn insert(&mut self, s: Interval) {
        assert!(
            s.st >= self.domain.min() && s.end <= self.domain.max(),
            "interval [{}, {}] outside index domain [{}, {}]",
            s.st,
            s.end,
            self.domain.min(),
            self.domain.max()
        );
        let (a, b) = self.domain.map_interval(&s);
        let m = self.domain.m();
        match &mut self.storage {
            CfStorage::Dense(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let lvl = &mut levels[asg.level as usize];
                    let group = if asg.kind.is_original() {
                        &mut lvl.originals
                    } else {
                        &mut lvl.replicas
                    };
                    group[asg.offset as usize].push(s.id);
                });
            }
            CfStorage::Sparse(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let lvl = &mut levels[asg.level as usize];
                    let group = if asg.kind.is_original() {
                        &mut lvl.originals
                    } else {
                        &mut lvl.replicas
                    };
                    group.insert(asg.offset, s.id);
                });
            }
        }
        self.live += 1;
    }

    /// Logically deletes an interval: its id is replaced by a tombstone in
    /// every partition it was assigned to (§3.4). The caller must pass the
    /// same endpoints the interval was inserted with.
    ///
    /// Returns true if at least one copy was found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let (a, b) = self.domain.map_interval(s);
        let m = self.domain.m();
        let mut found = false;
        match &mut self.storage {
            CfStorage::Dense(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let lvl = &mut levels[asg.level as usize];
                    let group = if asg.kind.is_original() {
                        &mut lvl.originals
                    } else {
                        &mut lvl.replicas
                    };
                    for slot in &mut group[asg.offset as usize] {
                        if *slot == s.id {
                            *slot = TOMBSTONE;
                            found = true;
                            break;
                        }
                    }
                });
            }
            CfStorage::Sparse(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let lvl = &mut levels[asg.level as usize];
                    let group = if asg.kind.is_original() {
                        &mut lvl.originals
                    } else {
                        &mut lvl.replicas
                    };
                    if group.tombstone(asg.offset, s.id) {
                        found = true;
                    }
                });
            }
        }
        if found {
            self.live -= 1;
            self.tombstones += 1;
        }
        found
    }

    /// Approximate heap footprint of the index in bytes.
    pub fn size_bytes(&self) -> usize {
        match &self.storage {
            CfStorage::Dense(levels) => levels
                .iter()
                .map(|lvl| {
                    let vecs = lvl.originals.len() + lvl.replicas.len();
                    let ids: usize = lvl
                        .originals
                        .iter()
                        .chain(lvl.replicas.iter())
                        .map(|v| v.len())
                        .sum();
                    vecs * std::mem::size_of::<Vec<IntervalId>>()
                        + ids * std::mem::size_of::<IntervalId>()
                })
                .sum(),
            CfStorage::Sparse(levels) => levels
                .iter()
                .map(|lvl| lvl.originals.size_bytes() + lvl.replicas.size_bytes())
                .sum(),
        }
    }

    /// Total number of stored entries (interval copies across all
    /// partitions); `entries / len` is the replication factor `k` (§5.2.4).
    pub fn entries(&self) -> usize {
        match &self.storage {
            CfStorage::Dense(levels) => levels
                .iter()
                .map(|lvl| {
                    lvl.originals
                        .iter()
                        .chain(lvl.replicas.iter())
                        .map(|v| v.len())
                        .sum::<usize>()
                })
                .sum(),
            CfStorage::Sparse(levels) => levels
                .iter()
                .map(|lvl| lvl.originals.ids.len() + lvl.replicas.ids.len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn figure5_data() -> Vec<Interval> {
        vec![
            Interval::new(1, 5, 9),
            Interval::new(2, 0, 15),
            Interval::new(3, 3, 3),
            Interval::new(4, 8, 12),
            Interval::new(5, 14, 15),
        ]
    }

    #[test]
    fn matches_oracle_on_figure5_domain() {
        for layout in [CfLayout::Dense, CfLayout::Sparse] {
            let data = figure5_data();
            let idx = HintCf::build_exact(&data, layout);
            assert!(idx.is_exact());
            let oracle = ScanOracle::new(&data);
            for st in 0..16u64 {
                for end in st..16 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{layout:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn no_duplicates_ever() {
        let data = figure5_data();
        let idx = HintCf::build_exact(&data, CfLayout::Sparse);
        for st in 0..16u64 {
            for end in st..16 {
                let mut got = Vec::new();
                idx.query(RangeQuery::new(st, end), &mut got);
                let n = got.len();
                got.sort_unstable();
                got.dedup();
                assert_eq!(n, got.len(), "duplicates for [{st},{end}]");
            }
        }
    }

    #[test]
    fn insert_then_query() {
        for layout in [CfLayout::Dense, CfLayout::Sparse] {
            let mut data = figure5_data();
            let mut idx = HintCf::build_exact(&data, layout);
            idx.insert(Interval::new(10, 2, 6));
            data.push(Interval::new(10, 2, 6));
            let oracle = ScanOracle::new(&data);
            for st in 0..16u64 {
                for end in st..16 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{layout:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn delete_removes_from_all_partitions() {
        for layout in [CfLayout::Dense, CfLayout::Sparse] {
            let data = figure5_data();
            let mut idx = HintCf::build_exact(&data, layout);
            let victim = Interval::new(2, 0, 15); // spans many partitions
            assert!(idx.delete(&victim));
            assert_eq!(idx.len(), 4);
            let mut rest = data.clone();
            rest.retain(|s| s.id != 2);
            let oracle = ScanOracle::new(&rest);
            for st in 0..16u64 {
                for end in st..16 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{layout:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn lossy_domain_yields_superset() {
        let data = figure5_data();
        // m=2: buckets of width 4
        let idx = HintCf::build(&data, 2, CfLayout::Sparse);
        assert!(!idx.is_exact());
        let oracle = ScanOracle::new(&data);
        for st in 0..16u64 {
            for end in st..16 {
                let q = RangeQuery::new(st, end);
                let mut got = Vec::new();
                idx.query(q, &mut got);
                let got = sorted(got);
                for id in oracle.query_sorted(q) {
                    assert!(got.contains(&id), "missing {id} for {q:?}");
                }
            }
        }
    }

    #[test]
    fn queries_outside_domain_are_empty() {
        let data = vec![Interval::new(1, 100, 200)];
        let idx = HintCf::build_exact(&data, CfLayout::Sparse);
        let mut out = Vec::new();
        idx.query(RangeQuery::new(0, 99), &mut out);
        assert!(out.is_empty());
        idx.query(RangeQuery::new(201, 999), &mut out);
        assert!(out.is_empty());
        idx.query(RangeQuery::new(0, 100), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn sparse_and_dense_report_identical_sets() {
        let data = figure5_data();
        let d = HintCf::build_exact(&data, CfLayout::Dense);
        let s = HintCf::build_exact(&data, CfLayout::Sparse);
        assert_eq!(d.entries(), s.entries());
        for st in 0..16u64 {
            for end in st..16 {
                let q = RangeQuery::new(st, end);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                d.query(q, &mut a);
                s.query(q, &mut b);
                assert_eq!(sorted(a), sorted(b), "{q:?}");
            }
        }
    }

    #[test]
    fn sparse_is_smaller_under_sparsity() {
        // a handful of short intervals over a wide domain
        let data: Vec<Interval> = (0..50)
            .map(|i| Interval::new(i, i * 1000, i * 1000 + 3))
            .collect();
        let d = HintCf::build(&data, 16, CfLayout::Dense);
        let s = HintCf::build(&data, 16, CfLayout::Sparse);
        assert!(
            s.size_bytes() < d.size_bytes() / 10,
            "sparse {} vs dense {}",
            s.size_bytes(),
            d.size_bytes()
        );
    }
}
