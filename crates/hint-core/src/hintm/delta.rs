//! The hybrid update setting of §4.4: a fully optimized, read-only-ish
//! [`Hint`] main index holding older data, plus an update-friendly
//! [`HintMSubs`] (`subs+sopt` configuration) *delta* index digesting the
//! latest insertions. Deletions are tombstoned in whichever index holds the
//! interval. Queries probe both indexes; a batch [`HybridHint::merge`]
//! periodically folds the delta into a rebuilt main index.

use crate::domain::Domain;
use crate::hintm::opt::{Hint, HintOptions};
use crate::hintm::subs::{HintMSubs, SubsConfig};
use crate::interval::{Interval, IntervalId, RangeQuery, Time};
use crate::sink::QuerySink;

/// Hybrid HINT^m for mixed query/update workloads (§4.4).
#[derive(Debug, Clone)]
pub struct HybridHint {
    domain: Domain,
    main: Hint,
    /// Raw records of the main index (needed for rebuilds; deletions mark
    /// them dead lazily via `main_deleted`).
    main_data: Vec<Interval>,
    main_deleted: usize,
    delta: Option<HintMSubs>,
    delta_data: Vec<Interval>,
    delta_deleted: usize,
    /// Delta size (live inserts) that triggers an automatic merge.
    merge_threshold: usize,
}

/// Default number of buffered inserts before an automatic merge.
pub const DEFAULT_MERGE_THRESHOLD: usize = 1 << 20;

impl HybridHint {
    /// Builds the hybrid index: main part from `data`, empty delta.
    ///
    /// The domain must be declared up front (updates may exceed the current
    /// data range): pass the raw `[min, max]` values the application will
    /// ever use.
    pub fn new(data: &[Interval], min: Time, max: Time, m: u32) -> Self {
        let domain = Domain::new(min, max, m);
        let main = Hint::build_with_domain(data, domain, HintOptions::default());
        Self {
            domain,
            main,
            main_data: data.to_vec(),
            main_deleted: 0,
            delta: None,
            delta_data: Vec::new(),
            delta_deleted: 0,
            merge_threshold: DEFAULT_MERGE_THRESHOLD,
        }
    }

    /// Sets the automatic merge threshold (number of buffered inserts).
    pub fn with_merge_threshold(mut self, threshold: usize) -> Self {
        self.merge_threshold = threshold.max(1);
        self
    }

    /// The shared domain of both component indexes.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of live intervals across main + delta.
    pub fn len(&self) -> usize {
        self.main.len() + self.delta.as_ref().map_or(0, |d| d.len())
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of buffered (live) delta inserts.
    pub fn delta_len(&self) -> usize {
        self.delta.as_ref().map_or(0, |d| d.len())
    }

    /// Evaluates a range query against both component indexes.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Evaluates a range query into an arbitrary sink; the delta index is
    /// skipped entirely when the main scan already saturated the sink.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.main.query_sink(q, sink);
        if let Some(delta) = &self.delta {
            if !sink.is_saturated() {
                delta.query_sink(q, sink);
            }
        }
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    /// Inserts a new interval into the delta index; triggers a merge when
    /// the delta exceeds the configured threshold.
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the declared domain.
    pub fn insert(&mut self, s: Interval) {
        let delta = self.delta.get_or_insert_with(|| {
            HintMSubs::build_with_domain(&[], self.domain, SubsConfig::update_friendly())
        });
        delta.insert(s);
        self.delta_data.push(s);
        if delta.len() >= self.merge_threshold {
            self.merge();
        }
    }

    /// Logically deletes an interval, tombstoning it in whichever
    /// component index holds it. Returns true if found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        if let Some(delta) = &mut self.delta {
            if delta.delete(s) {
                self.delta_deleted += 1;
                return true;
            }
        }
        if self.main.delete(s) {
            self.main_deleted += 1;
            return true;
        }
        false
    }

    /// Batch-merges the delta into a rebuilt, fully optimized main index
    /// and clears all tombstones.
    pub fn merge(&mut self) {
        if self.delta.is_none() && self.main_deleted == 0 {
            return;
        }
        // Collect live records: tombstoned ids are discovered by re-probing
        // the component indexes is unnecessary — we track deletions by
        // filtering against the live count per id.
        let mut live = Vec::with_capacity(self.main_data.len() + self.delta_data.len());
        if self.main_deleted == 0 && self.delta_deleted == 0 {
            live.extend_from_slice(&self.main_data);
            live.extend_from_slice(&self.delta_data);
        } else {
            // A record is live iff a stab query at its start still returns
            // its id. Deleted ids were tombstoned in the indexes.
            let mut probe = Vec::new();
            for &s in self.main_data.iter().chain(&self.delta_data) {
                probe.clear();
                self.query(RangeQuery::stab(s.st), &mut probe);
                if probe.contains(&s.id) {
                    live.push(s);
                }
            }
        }
        self.main = Hint::build_with_domain(&live, self.domain, HintOptions::default());
        self.main_data = live;
        self.main_deleted = 0;
        self.delta = None;
        self.delta_data.clear();
        self.delta_deleted = 0;
    }

    /// Approximate heap footprint in bytes (main + delta + rebuild buffer).
    pub fn size_bytes(&self) -> usize {
        self.main.size_bytes()
            + self.delta.as_ref().map_or(0, |d| d.size_bytes())
            + (self.main_data.len() + self.delta_data.len()) * std::mem::size_of::<Interval>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    #[test]
    fn mixed_workload_matches_oracle() {
        let data = lcg_data(200, 4096, 300, 1);
        let mut idx = HybridHint::new(&data, 0, 4095, 10);
        let mut oracle = ScanOracle::new(&data);

        for i in 0..100u64 {
            let st = (i * 37) % 4000;
            let s = Interval::new(10_000 + i, st, st + (i % 64));
            idx.insert(s);
            oracle.insert(s);
        }
        // delete a mix of old (main) and new (delta) records
        for s in data.iter().filter(|s| s.id % 5 == 0) {
            assert!(idx.delete(s));
            assert!(oracle.delete(s.id));
        }
        for i in (0..100u64).filter(|i| i % 3 == 0) {
            let st = (i * 37) % 4000;
            let s = Interval::new(10_000 + i, st, st + (i % 64));
            assert!(idx.delete(&s));
            assert!(oracle.delete(s.id));
        }
        assert_eq!(idx.len(), oracle.len());
        for st in (0..4096u64).step_by(61) {
            let q = RangeQuery::new(st, (st + 120).min(4095));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn merge_preserves_results_and_clears_delta() {
        let data = lcg_data(150, 2048, 200, 3);
        let mut idx = HybridHint::new(&data, 0, 2047, 9);
        let mut oracle = ScanOracle::new(&data);
        for i in 0..50u64 {
            let s = Interval::new(999_000 + i, i * 7, i * 7 + 10);
            idx.insert(s);
            oracle.insert(s);
        }
        for s in data.iter().take(30) {
            idx.delete(s);
            oracle.delete(s.id);
        }
        idx.merge();
        assert_eq!(idx.delta_len(), 0);
        assert_eq!(idx.len(), oracle.len());
        for st in (0..2048u64).step_by(37) {
            let q = RangeQuery::new(st, (st + 64).min(2047));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn automatic_merge_at_threshold() {
        let data = lcg_data(50, 1024, 50, 5);
        let mut idx = HybridHint::new(&data, 0, 1023, 8).with_merge_threshold(16);
        for i in 0..40u64 {
            idx.insert(Interval::new(500 + i, i * 20, i * 20 + 5));
        }
        // merges fired at every 16 inserts; delta holds the remainder
        assert!(idx.delta_len() < 16);
        assert_eq!(idx.len(), 90);
    }

    #[test]
    fn double_delete_returns_false() {
        let data = lcg_data(20, 256, 30, 7);
        let mut idx = HybridHint::new(&data, 0, 255, 8);
        let victim = data[3];
        assert!(idx.delete(&victim));
        assert!(!idx.delete(&victim));
    }
}
