//! The base HINT^m of §3.2: each partition is divided into originals and
//! replicas, stored as full `(id, st, end)` triplets in dense per-partition
//! vectors. No subdivisions, no sorting, no storage/sparsity/cache
//! optimizations — this is the "base" line of Figure 11 and the vehicle for
//! the Figure 10 comparison of query-evaluation strategies.

use crate::assign::for_each_assignment;
use crate::domain::Domain;
use crate::hintm::CompFlags;
use crate::interval::{Interval, IntervalId, RangeQuery, Time, TOMBSTONE};
use crate::scan;
use crate::sink::QuerySink;

/// Query evaluation strategy for [`HintMBase`] (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eval {
    /// Uses only Lemma 1: comparisons are performed at the first and last
    /// relevant partition of **every** level.
    TopDown,
    /// Algorithm 3: additionally applies Lemma 2, clearing the
    /// first/last comparison flags while ascending the hierarchy.
    BottomUp,
}

#[derive(Debug, Clone, Default)]
struct Part {
    originals: Vec<Interval>,
    replicas: Vec<Interval>,
}

#[derive(Debug, Clone, Default)]
struct Level {
    parts: Vec<Part>,
}

/// Base HINT^m index (§3.2).
#[derive(Debug, Clone)]
pub struct HintMBase {
    domain: Domain,
    levels: Vec<Level>,
    live: usize,
    tombstones: usize,
}

impl HintMBase {
    /// Builds the index with `m + 1` levels over `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty or the clamped `m` exceeds 26 (dense
    /// per-partition storage).
    pub fn build(data: &[Interval], m: u32) -> Self {
        let domain = Domain::from_data(data, m);
        Self::build_with_domain(data, domain)
    }

    /// Builds the index over an explicit domain.
    pub fn build_with_domain(data: &[Interval], domain: Domain) -> Self {
        let m = domain.m();
        assert!(m <= 26, "dense base layout limited to m <= 26 (got {m})");
        let mut levels: Vec<Level> = (0..=m)
            .map(|l| Level {
                parts: vec![Part::default(); 1usize << l],
            })
            .collect();
        for s in data {
            let (a, b) = domain.map_interval(s);
            for_each_assignment(m, a, b, |asg| {
                let part = &mut levels[asg.level as usize].parts[asg.offset as usize];
                if asg.kind.is_original() {
                    part.originals.push(*s);
                } else {
                    part.replicas.push(*s);
                }
            });
        }
        Self {
            domain,
            levels,
            live: data.len(),
            tombstones: 0,
        }
    }

    /// The index domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Evaluates `q` with the chosen strategy, pushing result ids into `out`.
    pub fn query_with(&self, q: RangeQuery, eval: Eval, out: &mut Vec<IntervalId>) {
        self.query_with_sink(q, eval, out)
    }

    /// Evaluates `q` with the chosen strategy, emitting result ids into
    /// `sink`; the level walk stops once the sink is saturated.
    pub fn query_with_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, eval: Eval, sink: &mut S) {
        if !self.domain.intersects(&q) {
            return;
        }
        let (qst, qend) = self.domain.map_query(&q);
        let m = self.domain.m();
        let skip = self.tombstones > 0;
        let mut flags = CompFlags::new();
        // Both strategies visit the same partitions and produce the same
        // result set; TopDown simply never clears the comparison flags.
        for l in (0..=m).rev() {
            if sink.is_saturated() {
                return;
            }
            let f = self.domain.prefix(l, qst);
            let last = self.domain.prefix(l, qend);
            let level = &self.levels[l as usize];
            if f == last {
                let part = &level.parts[f as usize];
                report_single(part, &q, flags, skip, sink);
            } else {
                report_first(&level.parts[f as usize], &q, flags, skip, sink);
                for off in f + 1..last {
                    if sink.is_saturated() {
                        return;
                    }
                    // in-between partitions: all originals qualify,
                    // replicas are skipped (they are originals of an
                    // earlier partition or replicas of the first)
                    scan::emit_all(&level.parts[off as usize].originals, skip, |s| s.id, sink);
                }
                report_last(&level.parts[last as usize], &q, flags, skip, sink);
            }
            if eval == Eval::BottomUp {
                flags.update(f, last);
            }
        }
    }

    /// Evaluates `q` with the default (bottom-up, Algorithm 3) strategy.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_with(q, Eval::BottomUp, out)
    }

    /// Evaluates `q` (bottom-up) into an arbitrary sink.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.query_with_sink(q, Eval::BottomUp, sink)
    }

    /// Inserts an interval (Algorithm 1, §3.4).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the fixed index domain.
    pub fn insert(&mut self, s: Interval) {
        assert!(
            s.st >= self.domain.min() && s.end <= self.domain.max(),
            "interval outside index domain"
        );
        let (a, b) = self.domain.map_interval(&s);
        let m = self.domain.m();
        let levels = &mut self.levels;
        for_each_assignment(m, a, b, |asg| {
            let part = &mut levels[asg.level as usize].parts[asg.offset as usize];
            if asg.kind.is_original() {
                part.originals.push(s);
            } else {
                part.replicas.push(s);
            }
        });
        self.live += 1;
    }

    /// Logically deletes an interval via tombstones (§3.4). Returns true if
    /// at least one copy was found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let (a, b) = self.domain.map_interval(s);
        let m = self.domain.m();
        let mut found = false;
        let levels = &mut self.levels;
        for_each_assignment(m, a, b, |asg| {
            let part = &mut levels[asg.level as usize].parts[asg.offset as usize];
            let group = if asg.kind.is_original() {
                &mut part.originals
            } else {
                &mut part.replicas
            };
            for slot in group.iter_mut() {
                if slot.id == s.id && slot.st == s.st && slot.end == s.end {
                    slot.id = TOMBSTONE;
                    found = true;
                    break;
                }
            }
        });
        if found {
            self.live -= 1;
            self.tombstones += 1;
        }
        found
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        let mut total = 0;
        for level in &self.levels {
            total += level.parts.len() * std::mem::size_of::<Part>();
            for part in &level.parts {
                total +=
                    (part.originals.len() + part.replicas.len()) * std::mem::size_of::<Interval>();
            }
        }
        total
    }

    /// Total stored entries (for the replication factor `k`).
    pub fn entries(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| &l.parts)
            .map(|p| p.originals.len() + p.replicas.len())
            .sum()
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }
}

/// Case `f == l`: the query overlaps a single partition at this level.
/// Comparison regimes follow Lemmas 1 and 2, shared with the other
/// variants through [`crate::scan`] (runs are unsorted in the base index,
/// so every filter is a linear scan).
#[inline]
fn report_single<S: QuerySink + ?Sized>(
    part: &Part,
    q: &RangeQuery,
    flags: CompFlags,
    skip: bool,
    sink: &mut S,
) {
    match (flags.first, flags.last) {
        (true, true) => {
            // originals need the full overlap test, replicas only
            // `q.st <= s.end` (Lemma 1: they start before the partition
            // and hence before q).
            scan::emit_overlap(
                &part.originals,
                q.st,
                q.end,
                false,
                skip,
                |s| s.st,
                |s| s.end,
                |s| s.id,
                sink,
            );
            scan::emit_end_suffix(&part.replicas, q.st, false, skip, |s| s.end, |s| s.id, sink);
        }
        (false, true) => {
            // `s.end >= q.st` is guaranteed (Lemma 2); originals still
            // need `s.st <= q.end`, replicas start before q and qualify.
            scan::emit_st_prefix(
                &part.originals,
                q.end,
                false,
                skip,
                |s| s.st,
                |s| s.id,
                sink,
            );
            scan::emit_all(&part.replicas, skip, |s| s.id, sink);
        }
        (true, false) => {
            // `s.st <= q.end` guaranteed; test only `q.st <= s.end`.
            scan::emit_end_suffix(
                &part.originals,
                q.st,
                false,
                skip,
                |s| s.end,
                |s| s.id,
                sink,
            );
            scan::emit_end_suffix(&part.replicas, q.st, false, skip, |s| s.end, |s| s.id, sink);
        }
        (false, false) => {
            scan::emit_all(&part.originals, skip, |s| s.id, sink);
            scan::emit_all(&part.replicas, skip, |s| s.id, sink);
        }
    }
}

/// First relevant partition when `f < l`: `s.st <= q.end` holds for all
/// stored intervals (they start in or before block `f`, strictly before
/// block `l` where `q.end` lies), so only `q.st <= s.end` may be needed.
#[inline]
fn report_first<S: QuerySink + ?Sized>(
    part: &Part,
    q: &RangeQuery,
    flags: CompFlags,
    skip: bool,
    sink: &mut S,
) {
    if flags.first {
        scan::emit_end_suffix(
            &part.originals,
            q.st,
            false,
            skip,
            |s| s.end,
            |s| s.id,
            sink,
        );
        scan::emit_end_suffix(&part.replicas, q.st, false, skip, |s| s.end, |s| s.id, sink);
    } else {
        scan::emit_all(&part.originals, skip, |s| s.id, sink);
        scan::emit_all(&part.replicas, skip, |s| s.id, sink);
    }
}

/// Last relevant partition when `l > f`: only originals are examined
/// and only `s.st <= q.end` may be needed (Lemma 1).
#[inline]
fn report_last<S: QuerySink + ?Sized>(
    part: &Part,
    q: &RangeQuery,
    flags: CompFlags,
    skip: bool,
    sink: &mut S,
) {
    if flags.last {
        scan::emit_st_prefix(
            &part.originals,
            q.end,
            false,
            skip,
            |s| s.st,
            |s| s.id,
            sink,
        );
    } else {
        scan::emit_all(&part.originals, skip, |s| s.id, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    /// Deterministic pseudo-random dataset without external crates.
    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    #[test]
    fn both_evals_match_oracle_lossless() {
        let data = lcg_data(300, 256, 40, 7);
        let idx = HintMBase::build(&data, 8);
        let oracle = ScanOracle::new(&data);
        for st in (0..256u64).step_by(3) {
            for len in [0u64, 1, 5, 17, 100, 255] {
                let end = (st + len).min(255);
                let q = RangeQuery::new(st, end);
                for eval in [Eval::TopDown, Eval::BottomUp] {
                    let mut got = Vec::new();
                    idx.query_with(q, eval, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{eval:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn exact_even_when_domain_mapping_is_lossy() {
        // raw domain far larger than 2^m buckets: comparisons on raw
        // endpoints must keep results exact.
        let data = lcg_data(500, 1_000_000, 120_000, 42);
        for m in [4, 6, 10] {
            let idx = HintMBase::build(&data, m);
            let oracle = ScanOracle::new(&data);
            let mut x = 99u64;
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(97);
                let st = (x >> 13) % 1_000_000;
                let end = (st + (x >> 7) % 50_000).min(999_999);
                let q = RangeQuery::new(st, end);
                for eval in [Eval::TopDown, Eval::BottomUp] {
                    let mut got = Vec::new();
                    idx.query_with(q, eval, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "m={m} {eval:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn stabbing_queries() {
        let data = lcg_data(200, 1024, 64, 3);
        let idx = HintMBase::build(&data, 6);
        let oracle = ScanOracle::new(&data);
        for t in (0..1024).step_by(11) {
            let mut got = Vec::new();
            idx.stab(t, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(RangeQuery::stab(t)));
        }
    }

    #[test]
    fn no_duplicates() {
        let data = lcg_data(400, 512, 200, 5);
        let idx = HintMBase::build(&data, 9);
        for st in (0..512u64).step_by(7) {
            let q = RangeQuery::new(st, (st + 100).min(511));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }

    #[test]
    fn updates_match_oracle() {
        let mut data = lcg_data(100, 256, 30, 11);
        let mut idx = HintMBase::build_with_domain(&data, crate::domain::Domain::new(0, 255, 8));
        let mut oracle = ScanOracle::new(&data);

        // insert
        for i in 0..50u64 {
            let s = Interval::new(1000 + i, (i * 5) % 250, ((i * 5) % 250) + 5);
            idx.insert(s);
            oracle.insert(s);
            data.push(s);
        }
        // delete every 3rd original interval
        for s in data.iter().filter(|s| s.id % 3 == 0) {
            assert_eq!(idx.delete(s), oracle.delete(s.id), "{s:?}");
        }
        for st in (0..256u64).step_by(5) {
            let q = RangeQuery::new(st, (st + 20).min(255));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn replication_factor_reasonable() {
        let data = lcg_data(1000, 65536, 1000, 13);
        let idx = HintMBase::build(&data, 10);
        let k = idx.entries() as f64 / idx.len() as f64;
        // each interval lands in >= 1 and on average only a few partitions
        assert!((1.0..8.0).contains(&k), "k = {k}");
    }
}
