//! The base HINT^m of §3.2: each partition is divided into originals and
//! replicas, stored as full `(id, st, end)` triplets in dense per-partition
//! vectors. No subdivisions, no sorting, no storage/sparsity/cache
//! optimizations — this is the "base" line of Figure 11 and the vehicle for
//! the Figure 10 comparison of query-evaluation strategies.

use crate::assign::for_each_assignment;
use crate::domain::Domain;
use crate::hintm::sealed::{SealedBuilder, SealedStore};
use crate::hintm::{CompFlags, PRESIZE_MAX_M};
use crate::interval::{Interval, IntervalId, RangeQuery, Time, TOMBSTONE};
use crate::scan;
use crate::sink::QuerySink;

/// Query evaluation strategy for [`HintMBase`] (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eval {
    /// Uses only Lemma 1: comparisons are performed at the first and last
    /// relevant partition of **every** level.
    TopDown,
    /// Algorithm 3: additionally applies Lemma 2, clearing the
    /// first/last comparison flags while ascending the hierarchy.
    BottomUp,
}

#[derive(Debug, Clone, Default)]
struct Part {
    originals: Vec<Interval>,
    replicas: Vec<Interval>,
}

#[derive(Debug, Clone, Default)]
struct Level {
    parts: Vec<Part>,
}

/// Base HINT^m index (§3.2).
///
/// [`HintMBase::seal`] freezes the contents into the sealed columnar
/// (CSR) engine shared with the other variants: originals and replicas
/// are classified into the four §4.1 subdivision categories (the
/// classification only needs the partition offset and the mapped end
/// point) and flattened into contiguous per-category arenas. Queries over
/// sealed storage always use the optimized bottom-up subdivision walk —
/// the [`Eval`] strategy only governs the unsealed overlay — and results
/// are identical either way.
#[derive(Debug, Clone)]
pub struct HintMBase {
    domain: Domain,
    /// Unsealed per-partition storage; after a `seal()` this holds only
    /// the overlay of post-seal updates.
    levels: Vec<Level>,
    /// Frozen CSR arenas, present once `seal()` has been called.
    sealed: Option<SealedStore>,
    /// Raw entry count currently in `levels` (assignments, not
    /// intervals); 0 means queries can skip the overlay walk entirely.
    overlay_entries: usize,
    live: usize,
    tombstones: usize,
}

impl HintMBase {
    /// Builds the index with `m + 1` levels over `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty or the clamped `m` exceeds 26 (dense
    /// per-partition storage).
    pub fn build(data: &[Interval], m: u32) -> Self {
        let domain = Domain::from_data(data, m);
        Self::build_with_domain(data, domain)
    }

    /// Builds the index over an explicit domain.
    pub fn build_with_domain(data: &[Interval], domain: Domain) -> Self {
        let m = domain.m();
        assert!(m <= 26, "dense base layout limited to m <= 26 (got {m})");
        let mut levels: Vec<Level> = (0..=m)
            .map(|l| Level {
                parts: vec![Part::default(); 1usize << l],
            })
            .collect();
        // pre-size: count assignments per partition, reserve exactly, so
        // the placement pass below never reallocates
        if !data.is_empty() && m <= PRESIZE_MAX_M {
            let mut counts: Vec<Vec<u32>> = (0..=m).map(|l| vec![0u32; 2usize << l]).collect();
            for s in data {
                let (a, b) = domain.map_interval(s);
                for_each_assignment(m, a, b, |asg| {
                    let slot = asg.offset as usize * 2 + usize::from(!asg.kind.is_original());
                    counts[asg.level as usize][slot] += 1;
                });
            }
            for (lc, level) in counts.iter().zip(levels.iter_mut()) {
                for (off, part) in level.parts.iter_mut().enumerate() {
                    part.originals.reserve_exact(lc[off * 2] as usize);
                    part.replicas.reserve_exact(lc[off * 2 + 1] as usize);
                }
            }
        }
        let mut entries = 0usize;
        for s in data {
            let (a, b) = domain.map_interval(s);
            for_each_assignment(m, a, b, |asg| {
                entries += 1;
                let part = &mut levels[asg.level as usize].parts[asg.offset as usize];
                if asg.kind.is_original() {
                    part.originals.push(*s);
                } else {
                    part.replicas.push(*s);
                }
            });
        }
        for part in levels.iter_mut().flat_map(|l| l.parts.iter_mut()) {
            part.originals.shrink_to_fit();
            part.replicas.shrink_to_fit();
        }
        Self {
            domain,
            levels,
            sealed: None,
            overlay_entries: entries,
            live: data.len(),
            tombstones: 0,
        }
    }

    /// Freezes the index into the sealed columnar (CSR) engine: existing
    /// sealed arenas (if any) and the per-partition storage are merged
    /// into fresh contiguous arenas (dropping tombstones), and the
    /// per-partition storage becomes an empty overlay for later updates.
    /// Originals/replicas are classified into the four subdivision
    /// categories from the mapped end point, so the sealed walk can skip
    /// comparisons per Lemmas 5/6.
    pub fn seal(&mut self) {
        if self.sealed.is_some() && self.overlay_entries == 0 && self.tombstones == 0 {
            // idempotent fast path: nothing has changed since the last
            // seal, the arenas are already canonical
            return;
        }
        let m = self.domain.m();
        let mut b = SealedBuilder::new(m);
        if let Some(sealed) = &self.sealed {
            sealed.drain_into(&mut b);
        }
        for (l, level) in self.levels.iter().enumerate() {
            let l = l as u32;
            for (off, part) in level.parts.iter().enumerate() {
                let off = off as u64;
                for e in &part.originals {
                    if self.domain.prefix(l, self.domain.map(e.end)) == off {
                        b.push_oin(l, off, e.id, e.st, e.end);
                    } else {
                        b.push_oaft(l, off, e.id, e.st);
                    }
                }
                for e in &part.replicas {
                    if self.domain.prefix(l, self.domain.map(e.end)) == off {
                        b.push_rin(l, off, e.id, e.end);
                    } else {
                        b.push_raft(l, off, e.id);
                    }
                }
            }
        }
        self.sealed = Some(b.finish());
        self.levels = (0..=m)
            .map(|l| Level {
                parts: vec![Part::default(); 1usize << l],
            })
            .collect();
        self.overlay_entries = 0;
        self.tombstones = 0;
    }

    /// True once [`Self::seal`] has been called.
    pub fn is_sealed(&self) -> bool {
        self.sealed.is_some()
    }

    /// The index domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Evaluates `q` with the chosen strategy, pushing result ids into `out`.
    pub fn query_with(&self, q: RangeQuery, eval: Eval, out: &mut Vec<IntervalId>) {
        self.query_with_sink(q, eval, out)
    }

    /// Evaluates `q` with the chosen strategy, emitting result ids into
    /// `sink`; the level walk stops once the sink is saturated. On a
    /// sealed index the CSR arenas are walked first (always bottom-up
    /// with subdivision lemmas — `eval` only governs the overlay walk)
    /// and the unsealed overlay second.
    pub fn query_with_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, eval: Eval, sink: &mut S) {
        if !self.domain.intersects(&q) {
            return;
        }
        if let Some(sealed) = &self.sealed {
            sealed.query_sink(&self.domain, q, self.tombstones > 0, sink);
            if self.overlay_entries == 0 || sink.is_saturated() {
                return;
            }
        }
        let (qst, qend) = self.domain.map_query(&q);
        let m = self.domain.m();
        let skip = self.tombstones > 0;
        let mut flags = CompFlags::new();
        // Both strategies visit the same partitions and produce the same
        // result set; TopDown simply never clears the comparison flags.
        for l in (0..=m).rev() {
            if sink.is_saturated() {
                return;
            }
            let f = self.domain.prefix(l, qst);
            let last = self.domain.prefix(l, qend);
            let level = &self.levels[l as usize];
            if f == last {
                let part = &level.parts[f as usize];
                report_single(part, &q, flags, skip, sink);
            } else {
                report_first(&level.parts[f as usize], &q, flags, skip, sink);
                for off in f + 1..last {
                    if sink.is_saturated() {
                        return;
                    }
                    // in-between partitions: all originals qualify,
                    // replicas are skipped (they are originals of an
                    // earlier partition or replicas of the first)
                    scan::emit_all(&level.parts[off as usize].originals, skip, |s| s.id, sink);
                }
                report_last(&level.parts[last as usize], &q, flags, skip, sink);
            }
            if eval == Eval::BottomUp {
                flags.update(f, last);
            }
        }
    }

    /// Evaluates `q` with the default (bottom-up, Algorithm 3) strategy.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_with(q, Eval::BottomUp, out)
    }

    /// Evaluates `q` (bottom-up) into an arbitrary sink.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.query_with_sink(q, Eval::BottomUp, sink)
    }

    /// Evaluates a batch of queries, one sink per query. On a fully
    /// sealed index (no overlay) the batch shares one arena walk per
    /// level; otherwise it falls back to independent
    /// [`Self::query_sink`] calls. Either way each sink receives exactly
    /// what a solo `query_sink` would emit.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        match &self.sealed {
            Some(sealed) if self.overlay_entries == 0 => {
                sealed.query_batch(&self.domain, queries, self.tombstones > 0, sinks, false)
            }
            _ => {
                for (q, sink) in queries.iter().zip(sinks.iter_mut()) {
                    self.query_sink(*q, &mut **sink);
                }
            }
        }
    }

    /// Inserts an interval (Algorithm 1, §3.4).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the fixed index domain.
    pub fn insert(&mut self, s: Interval) {
        assert!(
            s.st >= self.domain.min() && s.end <= self.domain.max(),
            "interval outside index domain"
        );
        let (a, b) = self.domain.map_interval(&s);
        let m = self.domain.m();
        let levels = &mut self.levels;
        let mut added = 0usize;
        for_each_assignment(m, a, b, |asg| {
            added += 1;
            let part = &mut levels[asg.level as usize].parts[asg.offset as usize];
            if asg.kind.is_original() {
                part.originals.push(s);
            } else {
                part.replicas.push(s);
            }
        });
        self.overlay_entries += added;
        self.live += 1;
    }

    /// Logically deletes an interval via tombstones (§3.4). Returns true if
    /// at least one copy was found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let (a, b) = self.domain.map_interval(s);
        let m = self.domain.m();
        let mut found = false;
        let levels = &mut self.levels;
        let sealed = &mut self.sealed;
        for_each_assignment(m, a, b, |asg| {
            let part = &mut levels[asg.level as usize].parts[asg.offset as usize];
            let group = if asg.kind.is_original() {
                &mut part.originals
            } else {
                &mut part.replicas
            };
            let mut hit = false;
            for slot in group.iter_mut() {
                if slot.id == s.id && slot.st == s.st && slot.end == s.end {
                    slot.id = TOMBSTONE;
                    hit = true;
                    break;
                }
            }
            let hit = hit
                || sealed.as_mut().is_some_and(|sl| {
                    sl.tombstone(asg.level, asg.offset, asg.kind, s.id, s.st, s.end)
                });
            found |= hit;
        });
        if found {
            self.live -= 1;
            self.tombstones += 1;
        }
        found
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        let mut total = self.sealed.as_ref().map_or(0, |s| s.size_bytes());
        for level in &self.levels {
            total += level.parts.len() * std::mem::size_of::<Part>();
            for part in &level.parts {
                total +=
                    (part.originals.len() + part.replicas.len()) * std::mem::size_of::<Interval>();
            }
        }
        total
    }

    /// Total stored entries (for the replication factor `k`).
    pub fn entries(&self) -> usize {
        self.sealed.as_ref().map_or(0, |s| s.entries())
            + self
                .levels
                .iter()
                .flat_map(|l| &l.parts)
                .map(|p| p.originals.len() + p.replicas.len())
                .sum::<usize>()
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }
}

/// Case `f == l`: the query overlaps a single partition at this level.
/// Comparison regimes follow Lemmas 1 and 2, shared with the other
/// variants through [`crate::scan`] (runs are unsorted in the base index,
/// so every filter is a linear scan).
#[inline]
fn report_single<S: QuerySink + ?Sized>(
    part: &Part,
    q: &RangeQuery,
    flags: CompFlags,
    skip: bool,
    sink: &mut S,
) {
    match (flags.first, flags.last) {
        (true, true) => {
            // originals need the full overlap test, replicas only
            // `q.st <= s.end` (Lemma 1: they start before the partition
            // and hence before q).
            scan::emit_overlap(
                &part.originals,
                q.st,
                q.end,
                false,
                skip,
                |s| s.st,
                |s| s.end,
                |s| s.id,
                sink,
            );
            scan::emit_end_suffix(&part.replicas, q.st, false, skip, |s| s.end, |s| s.id, sink);
        }
        (false, true) => {
            // `s.end >= q.st` is guaranteed (Lemma 2); originals still
            // need `s.st <= q.end`, replicas start before q and qualify.
            scan::emit_st_prefix(
                &part.originals,
                q.end,
                false,
                skip,
                |s| s.st,
                |s| s.id,
                sink,
            );
            scan::emit_all(&part.replicas, skip, |s| s.id, sink);
        }
        (true, false) => {
            // `s.st <= q.end` guaranteed; test only `q.st <= s.end`.
            scan::emit_end_suffix(
                &part.originals,
                q.st,
                false,
                skip,
                |s| s.end,
                |s| s.id,
                sink,
            );
            scan::emit_end_suffix(&part.replicas, q.st, false, skip, |s| s.end, |s| s.id, sink);
        }
        (false, false) => {
            scan::emit_all(&part.originals, skip, |s| s.id, sink);
            scan::emit_all(&part.replicas, skip, |s| s.id, sink);
        }
    }
}

/// First relevant partition when `f < l`: `s.st <= q.end` holds for all
/// stored intervals (they start in or before block `f`, strictly before
/// block `l` where `q.end` lies), so only `q.st <= s.end` may be needed.
#[inline]
fn report_first<S: QuerySink + ?Sized>(
    part: &Part,
    q: &RangeQuery,
    flags: CompFlags,
    skip: bool,
    sink: &mut S,
) {
    if flags.first {
        scan::emit_end_suffix(
            &part.originals,
            q.st,
            false,
            skip,
            |s| s.end,
            |s| s.id,
            sink,
        );
        scan::emit_end_suffix(&part.replicas, q.st, false, skip, |s| s.end, |s| s.id, sink);
    } else {
        scan::emit_all(&part.originals, skip, |s| s.id, sink);
        scan::emit_all(&part.replicas, skip, |s| s.id, sink);
    }
}

/// Last relevant partition when `l > f`: only originals are examined
/// and only `s.st <= q.end` may be needed (Lemma 1).
#[inline]
fn report_last<S: QuerySink + ?Sized>(
    part: &Part,
    q: &RangeQuery,
    flags: CompFlags,
    skip: bool,
    sink: &mut S,
) {
    if flags.last {
        scan::emit_st_prefix(
            &part.originals,
            q.end,
            false,
            skip,
            |s| s.st,
            |s| s.id,
            sink,
        );
    } else {
        scan::emit_all(&part.originals, skip, |s| s.id, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    /// Deterministic pseudo-random dataset without external crates.
    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    #[test]
    fn both_evals_match_oracle_lossless() {
        let data = lcg_data(300, 256, 40, 7);
        let idx = HintMBase::build(&data, 8);
        let oracle = ScanOracle::new(&data);
        for st in (0..256u64).step_by(3) {
            for len in [0u64, 1, 5, 17, 100, 255] {
                let end = (st + len).min(255);
                let q = RangeQuery::new(st, end);
                for eval in [Eval::TopDown, Eval::BottomUp] {
                    let mut got = Vec::new();
                    idx.query_with(q, eval, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{eval:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn exact_even_when_domain_mapping_is_lossy() {
        // raw domain far larger than 2^m buckets: comparisons on raw
        // endpoints must keep results exact.
        let data = lcg_data(500, 1_000_000, 120_000, 42);
        for m in [4, 6, 10] {
            let idx = HintMBase::build(&data, m);
            let oracle = ScanOracle::new(&data);
            let mut x = 99u64;
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(97);
                let st = (x >> 13) % 1_000_000;
                let end = (st + (x >> 7) % 50_000).min(999_999);
                let q = RangeQuery::new(st, end);
                for eval in [Eval::TopDown, Eval::BottomUp] {
                    let mut got = Vec::new();
                    idx.query_with(q, eval, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "m={m} {eval:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn stabbing_queries() {
        let data = lcg_data(200, 1024, 64, 3);
        let idx = HintMBase::build(&data, 6);
        let oracle = ScanOracle::new(&data);
        for t in (0..1024).step_by(11) {
            let mut got = Vec::new();
            idx.stab(t, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(RangeQuery::stab(t)));
        }
    }

    #[test]
    fn no_duplicates() {
        let data = lcg_data(400, 512, 200, 5);
        let idx = HintMBase::build(&data, 9);
        for st in (0..512u64).step_by(7) {
            let q = RangeQuery::new(st, (st + 100).min(511));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }

    #[test]
    fn updates_match_oracle() {
        let mut data = lcg_data(100, 256, 30, 11);
        let mut idx = HintMBase::build_with_domain(&data, crate::domain::Domain::new(0, 255, 8));
        let mut oracle = ScanOracle::new(&data);

        // insert
        for i in 0..50u64 {
            let s = Interval::new(1000 + i, (i * 5) % 250, ((i * 5) % 250) + 5);
            idx.insert(s);
            oracle.insert(s);
            data.push(s);
        }
        // delete every 3rd original interval
        for s in data.iter().filter(|s| s.id % 3 == 0) {
            assert_eq!(idx.delete(s), oracle.delete(s.id), "{s:?}");
        }
        for st in (0..256u64).step_by(5) {
            let q = RangeQuery::new(st, (st + 20).min(255));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(q), "{q:?}");
        }
    }

    #[test]
    fn sealed_matches_oracle_for_both_evals() {
        let data = lcg_data(500, 1_000_000, 120_000, 42);
        let mut idx = HintMBase::build(&data, 10);
        let oracle = ScanOracle::new(&data);
        idx.seal();
        assert!(idx.is_sealed());
        let mut x = 99u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(97);
            let st = (x >> 13) % 1_000_000;
            let end = (st + (x >> 7) % 50_000).min(999_999);
            let q = RangeQuery::new(st, end);
            for eval in [Eval::TopDown, Eval::BottomUp] {
                let mut got = Vec::new();
                idx.query_with(q, eval, &mut got);
                assert_eq!(sorted(got), oracle.query_sorted(q), "{eval:?} {q:?}");
            }
        }
    }

    #[test]
    fn reseal_cycles_with_updates_match_oracle() {
        let data = lcg_data(120, 256, 30, 11);
        let mut idx = HintMBase::build_with_domain(&data, crate::domain::Domain::new(0, 255, 8));
        let mut oracle = ScanOracle::new(&data);
        idx.seal();
        for i in 0..40u64 {
            let s = Interval::new(1000 + i, (i * 5) % 250, ((i * 5) % 250) + 5);
            idx.insert(s);
            oracle.insert(s);
        }
        for s in data.iter().filter(|s| s.id % 3 == 0) {
            assert_eq!(idx.delete(s), oracle.delete(s.id), "{s:?}");
        }
        let check = |idx: &HintMBase, oracle: &ScanOracle, tag: &str| {
            for st in (0..256u64).step_by(5) {
                let q = RangeQuery::new(st, (st + 20).min(255));
                let mut got = Vec::new();
                idx.query(q, &mut got);
                assert_eq!(sorted(got), oracle.query_sorted(q), "{tag} {q:?}");
            }
        };
        check(&idx, &oracle, "sealed+overlay");
        idx.seal();
        check(&idx, &oracle, "resealed");
    }

    #[test]
    fn query_batch_bit_identical_to_solo() {
        let data = lcg_data(300, 1024, 64, 3);
        let mut idx = HintMBase::build(&data, 8);
        for pass in 0..2 {
            let queries: Vec<RangeQuery> = (0..40u64)
                .map(|i| {
                    let st = (i * 97) % 1024;
                    RangeQuery::new(st, (st + 100).min(1023))
                })
                .collect();
            let solo: Vec<Vec<IntervalId>> = queries
                .iter()
                .map(|&q| {
                    let mut v = Vec::new();
                    idx.query_sink(q, &mut v);
                    v
                })
                .collect();
            let mut bufs: Vec<Vec<IntervalId>> = vec![Vec::new(); queries.len()];
            let mut sinks: Vec<&mut dyn QuerySink> =
                bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
            idx.query_batch(&queries, &mut sinks);
            assert_eq!(solo, bufs, "pass {pass}");
            idx.seal();
        }
    }

    #[test]
    fn replication_factor_reasonable() {
        let data = lcg_data(1000, 65536, 1000, 13);
        let idx = HintMBase::build(&data, 10);
        let k = idx.entries() as f64 / idx.len() as f64;
        // each interval lands in >= 1 and on average only a few partitions
        assert!((1.0..8.0).contains(&k), "k = {k}");
    }
}
