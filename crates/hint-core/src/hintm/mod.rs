//! HINT^m: the generalized HINT for intervals in arbitrary domains (§3.2),
//! plus the §4 optimizations, organized as the paper's ablation lattice:
//!
//! * [`base::HintMBase`] — originals/replicas divisions only, full
//!   `(id, st, end)` triplets per partition; supports both the *top-down*
//!   (Lemma 1 only) and *bottom-up* (Algorithm 3, Lemmas 1+2) evaluation,
//!   reproducing Figure 10.
//! * [`subs::HintMSubs`] — §4.1 subdivisions (`Oin/Oaft/Rin/Raft`) with
//!   optional sorting (§4.1.1) and the storage optimization (§4.1.2,
//!   Table 3), reproducing Figure 11. This configuration (`subs+sopt`) is
//!   also the paper's *update-friendly* HINT^m (§3.4, Table 10).
//! * [`opt::Hint`] — the flagship index: subdivisions + sorting + storage
//!   optimization, plus §4.2 skew/sparsity handling (merged per-level
//!   tables, sparse directories, inter-level links) and §4.3 cache-miss
//!   reduction (columnar id/endpoint decomposition), reproducing Figure 12
//!   and used in all cross-index comparisons (Figures 13–14, Tables 8–10).
//! * [`delta::HybridHint`] — §4.4: a read-optimized [`opt::Hint`] main
//!   index plus an update-friendly [`subs::HintMSubs`] delta, merged in
//!   batches.
//!
//! The crate-internal `sealed` module holds the sealed columnar (CSR)
//! storage engine behind the `seal()` freeze step of the base and
//! subdivision variants: per-level, per-category arenas with a partition
//! offset table, bulk slice emission for comparison-free runs, and a
//! shared-walk batch executor (`query_batch`).
//!
//! # Exactness of comparison skipping under a lossy domain mapping
//!
//! All variants partition by *mapped* endpoints (monotone bucketing, see
//! [`crate::domain::Domain`]) but store and compare *raw* endpoints. The
//! paper's comparison-free reporting paths remain exact because each relies
//! on a **strict** bucket inequality, and `bucket(x) < bucket(y) ⇒ x < y`:
//!
//! * *middle partitions* (`f < i < l`): originals start in bucket-block
//!   `i > f ⇒ s.st > q.st`, and `i < l ⇒ s.st < q.end`; with `s.end ≥ s.st`
//!   both overlap conditions follow.
//! * *first partition, `f < l`*: every original/`aft`-replica ends at or
//!   after the block end which is `≥ bucket(q.st)`... and for the `aft`
//!   subdivisions strictly after, giving `s.end > q.st`; the `in`
//!   subdivisions are the ones compared.
//! * *Lemma 2 flags*: when the first relevant partition at level `l+1` has
//!   an even offset, Algorithm 1 guarantees that any interval stored at
//!   level `l` (first partition) ends **strictly** after that block —
//!   an interval ending exactly at the block end would have been assigned
//!   to level `l+1` instead (its `b`-branch bit is 0). Hence
//!   `bucket(s.end) > bucket(q.st)` and the raw comparison can be skipped
//!   exactly. The symmetric argument covers `comp_last`.

pub mod base;
pub mod delta;
pub mod opt;
pub(crate) mod sealed;
pub mod snapshot;
pub mod subs;

/// Largest `m` for which the dense per-partition builders run an exact
/// assignment-counting pass and pre-size every partition `Vec` before
/// placement (a few `u32` counters per partition; above this the
/// transient counter tables would rival the data itself).
pub(crate) const PRESIZE_MAX_M: u32 = 18;

/// The two flag bits of Algorithm 3 (Lemma 2): whether endpoint comparisons
/// are still required in the first / last relevant partition at the current
/// level. Cleared bottom-up as partition boundaries align with the query.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompFlags {
    pub first: bool,
    pub last: bool,
}

impl CompFlags {
    /// Flags for the bottom level: comparisons needed on both ends.
    #[inline]
    pub fn new() -> Self {
        Self {
            first: true,
            last: true,
        }
    }

    /// Lemma-2 update after processing a level whose first/last relevant
    /// partition offsets are `f` and `l`: an even `f` means the first
    /// partition above starts at the same domain value (clear `first`); an
    /// odd `l` means the last partition above ends at the same value
    /// (clear `last`).
    #[inline]
    pub fn update(&mut self, f: u64, l: u64) {
        if f & 1 == 0 {
            self.first = false;
        }
        if l & 1 == 1 {
            self.last = false;
        }
    }
}
