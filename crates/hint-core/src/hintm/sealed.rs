//! Sealed columnar (CSR) storage for the HINT^m family.
//!
//! The update-friendly variants ([`super::base::HintMBase`],
//! [`super::subs::HintMSubs`]) store every partition as its own set of
//! heap `Vec`s — thousands of tiny allocations whose scans chase a pointer
//! per partition. A `seal()` freeze step flattens each level into four
//! contiguous per-category arenas in CSR form: for every subdivision
//! category (`Oin`, `Oaft`, `Rin`, `Raft`) one flat `ids` column (plus the
//! endpoint columns Table 3 says the category can ever compare), indexed
//! by a per-level partition-offset table `starts` with `starts[i] ..
//! starts[i + 1]` delimiting partition `i`'s run.
//!
//! The sealed query walk exploits two consequences of the layout:
//!
//! * **bulk emit** — every "no-comparison" reporting regime (middle
//!   partitions, cleared Lemma-2 flags, the whole `Raft` category) hands
//!   one contiguous, tombstone-free `ids` slice to
//!   [`QuerySink::emit_slice`]; in particular *all* middle partitions of a
//!   level form a single slice per category, so the widest part of a query
//!   costs one `memcpy` instead of a per-element loop over per-partition
//!   `Vec`s;
//! * **comparison scans over flat columns** — runs are sorted at seal
//!   time (`Oin`/`Oaft` by start, `Rin` by end), so every comparison
//!   regime is a binary search into one flat endpoint column followed by a
//!   bulk emit of the qualifying prefix/suffix.
//!
//! Updates after sealing go to a small unsealed *overlay* (the variant's
//! original per-partition storage) that the next `seal()` merges into new
//! arenas, dropping tombstones; queries walk the sealed arenas first and
//! the overlay second, so mixed workloads stay exact between seals.
//!
//! [`SealedStore::query_batch`] additionally amortizes the level walk over
//! many queries: queries are sorted by their first relevant partition and
//! each level's arenas are traversed once for the whole batch, keeping the
//! offset table and data columns hot in cache.

use crate::assign::SubKind;
use crate::domain::Domain;
use crate::hintm::CompFlags;
use crate::interval::{Interval, IntervalId, RangeQuery, Time, TOMBSTONE};
use crate::scan;
use crate::sink::{ArenaRun, QuerySink};
use std::sync::Arc;

/// Queries per tile of the batched level walk: small enough that a
/// tile's destination sinks stay cache-hot on result-heavy extents,
/// large enough to amortize the level traversal across sorted
/// neighbours (stabbing throughput is flat from 8 to 64 queries per
/// walk, so the bound only bites where it helps).
const BATCH_TILE: usize = 8;

/// Emission-volume budget per tile, in ids (~32 KB): the next tile's
/// width is sized so its expected touched-id volume (fed back from the
/// previous tile's walk) stays within this, so result-heavy queries run
/// with few (down to one) live destination buffers and their emission
/// stream stays cache-resident — the regime where an unbounded tile
/// cycles cold sink tails per level and loses to the solo walk's single
/// hot output buffer.
const TILE_VOLUME: usize = 4_096;

/// One subdivision category at one level, flattened into CSR form.
///
/// `starts` has `2^level + 1` entries; partition `i`'s run is
/// `starts[i] .. starts[i + 1]` in the data columns. Only the endpoint
/// columns the category can ever compare are populated (Table 3):
/// `Oin: st + end`, `Oaft: st`, `Rin: end`, `Raft: neither`.
///
/// The `ids` column is shared (`Arc`) so comparison-free runs can cross
/// the fork/merge boundary as zero-copy [`ArenaRun`] handles: a reseal
/// builds new columns while outstanding handles keep the superseded one
/// alive, and a tombstone against a sealed store copies-on-write
/// ([`Arc::make_mut`]) so issued handles retain the snapshot they were
/// cut from.
#[derive(Debug, Clone, Default)]
struct CsrCat {
    starts: Vec<u32>,
    ids: Arc<Vec<IntervalId>>,
    st: Vec<Time>,
    end: Vec<Time>,
}

impl CsrCat {
    /// Data range of partition `off`.
    #[inline]
    fn run(&self, off: u64) -> (usize, usize) {
        (
            self.starts[off as usize] as usize,
            self.starts[off as usize + 1] as usize,
        )
    }

    /// Data range spanned by partitions `first ..= last` — contiguous by
    /// construction, the bulk-emit fast path.
    #[inline]
    fn span(&self, first: u64, last: u64) -> (usize, usize) {
        (
            self.starts[first as usize] as usize,
            self.starts[last as usize + 1] as usize,
        )
    }

    /// Blind-reports a data range (no comparisons; one `emit_slice` per
    /// saturation-poll chunk when tombstone-free). Sinks that opt in via
    /// [`QuerySink::wants_arenas`] receive tombstone-free runs of at
    /// least [`ARENA_HANDLE_MIN`](crate::sink::ARENA_HANDLE_MIN) ids as
    /// zero-copy [`ArenaRun`] handles instead — shorter runs are cheaper
    /// to copy than to track, so the handle (and its arena refcount
    /// round-trip) is never even constructed for them. In a
    /// monomorphized batch walk the `wants_arenas` branch const-folds to
    /// whichever side the sink type uses.
    #[inline]
    fn blind<S: QuerySink + ?Sized>(&self, lo: usize, hi: usize, skip: bool, sink: &mut S) {
        if !skip && hi - lo >= crate::sink::ARENA_HANDLE_MIN && sink.wants_arenas() {
            sink.emit_arena(&ArenaRun::new(Arc::clone(&self.ids), lo, hi));
            return;
        }
        scan::emit_ids(&self.ids[lo..hi], skip, sink);
    }

    /// Reports the run prefix with `st <= bound` (run sorted by start).
    #[inline]
    fn st_prefix<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        bound: Time,
        skip: bool,
        sink: &mut S,
    ) {
        let ub = self.st[lo..hi].partition_point(|&x| x <= bound);
        scan::emit_ids(&self.ids[lo..lo + ub], skip, sink);
    }

    /// Reports the run suffix with `end >= bound` (run sorted by end).
    #[inline]
    fn end_suffix<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        bound: Time,
        skip: bool,
        sink: &mut S,
    ) {
        let lb = self.end[lo..hi].partition_point(|&x| x < bound);
        scan::emit_ids(&self.ids[lo + lb..hi], skip, sink);
    }

    /// Linear `end >= bound` filter over a run that is sorted by start
    /// (the Lemma-5 first-partition case for `Oin`).
    #[inline]
    fn end_filter<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        bound: Time,
        skip: bool,
        sink: &mut S,
    ) {
        scan::emit_filtered_ids(
            &self.ids[lo..hi],
            &self.end[lo..hi],
            skip,
            |e| e >= bound,
            sink,
        );
    }

    /// Full overlap test (single-partition Lemma-6 case): binary-search
    /// the `st <= qend` prefix, then filter it by `end >= qst`.
    #[inline]
    fn overlap<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        qst: Time,
        qend: Time,
        skip: bool,
        sink: &mut S,
    ) {
        let ub = self.st[lo..hi].partition_point(|&x| x <= qend);
        scan::emit_filtered_ids(
            &self.ids[lo..lo + ub],
            &self.end[lo..lo + ub],
            skip,
            |e| e >= qst,
            sink,
        );
    }

    /// Tombstones the entry with `id` inside partition `off`, narrowing
    /// the scan to the equal-key run via the sorted key column (`KeyCol`).
    fn tombstone(&mut self, off: u64, id: IntervalId, key: Time, col: KeyCol) -> bool {
        let (lo, hi) = self.run(off);
        let (lo, hi) = match col {
            KeyCol::St => {
                let c = &self.st[lo..hi];
                (
                    lo + c.partition_point(|&x| x < key),
                    lo + c.partition_point(|&x| x <= key),
                )
            }
            KeyCol::End => {
                let c = &self.end[lo..hi];
                (
                    lo + c.partition_point(|&x| x < key),
                    lo + c.partition_point(|&x| x <= key),
                )
            }
            KeyCol::None => (lo, hi),
        };
        // copy-on-write: outstanding ArenaRun handles keep reading the
        // tombstone-free snapshot they were issued from
        for slot in &mut Arc::make_mut(&mut self.ids)[lo..hi] {
            if *slot == id {
                *slot = TOMBSTONE;
                return true;
            }
        }
        false
    }

    fn size_bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<u32>()
            + (self.ids.len() + self.st.len() + self.end.len()) * 8
    }
}

/// Which sorted key column to use when narrowing a tombstone scan.
enum KeyCol {
    St,
    End,
    None,
}

/// Borrowed view of one category's raw CSR columns — what the snapshot
/// writer serializes. Only the columns the category populates are
/// non-empty (Table 3).
pub(crate) struct CatColumns<'a> {
    /// Partition-offset table (`2^level + 1` entries).
    pub starts: &'a [u32],
    /// Interval ids, one per stored entry.
    pub ids: &'a [IntervalId],
    /// Start column (`Oin`, `Oaft`); empty otherwise.
    pub st: &'a [Time],
    /// End column (`Oin`, `Rin`); empty otherwise.
    pub end: &'a [Time],
}

/// Owned raw CSR columns of one category — what the snapshot reader
/// hands back for validation and import.
#[derive(Debug, Default)]
pub(crate) struct CatColumnsOwned {
    /// Partition-offset table (`2^level + 1` entries).
    pub starts: Vec<u32>,
    /// Interval ids, one per stored entry.
    pub ids: Vec<IntervalId>,
    /// Start column (`Oin`, `Oaft`); empty otherwise.
    pub st: Vec<Time>,
    /// End column (`Oin`, `Rin`); empty otherwise.
    pub end: Vec<Time>,
}

fn into_cat(c: CatColumnsOwned) -> CsrCat {
    CsrCat {
        starts: c.starts,
        ids: Arc::new(c.ids),
        st: c.st,
        end: c.end,
    }
}

/// Checks one imported category's shape: offset-table length and
/// monotonicity, final offset matching the column lengths, and the
/// Table-3 column-presence rule.
fn validate_cat(
    level: u32,
    name: &str,
    c: &CatColumnsOwned,
    parts: usize,
    has_st: bool,
    has_end: bool,
) -> Result<(), String> {
    if c.starts.len() != parts + 1 {
        return Err(format!(
            "level {level} {name}: offset table has {} entries, expected {}",
            c.starts.len(),
            parts + 1
        ));
    }
    if c.starts[0] != 0 {
        return Err(format!(
            "level {level} {name}: offset table does not start at 0"
        ));
    }
    if c.starts.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("level {level} {name}: offset table not monotone"));
    }
    let n = *c.starts.last().unwrap() as usize;
    if c.ids.len() != n {
        return Err(format!(
            "level {level} {name}: {} ids, offset table says {n}",
            c.ids.len()
        ));
    }
    let want_st = if has_st { n } else { 0 };
    if c.st.len() != want_st {
        return Err(format!(
            "level {level} {name}: st column has {} entries, expected {want_st}",
            c.st.len()
        ));
    }
    let want_end = if has_end { n } else { 0 };
    if c.end.len() != want_end {
        return Err(format!(
            "level {level} {name}: end column has {} entries, expected {want_end}",
            c.end.len()
        ));
    }
    if c.ids.contains(&TOMBSTONE) {
        return Err(format!(
            "level {level} {name}: tombstone id in a sealed snapshot"
        ));
    }
    Ok(())
}

/// Checks the within-run sort invariant the sealed walk's binary
/// searches rely on: `key` non-decreasing inside every partition run.
fn check_run_order(level: u32, name: &str, starts: &[u32], key: &[Time]) -> Result<(), String> {
    if key.is_empty() {
        return Ok(());
    }
    for (off, w) in starts.windows(2).enumerate() {
        let run = &key[w[0] as usize..w[1] as usize];
        if run.windows(2).any(|p| p[0] > p[1]) {
            return Err(format!(
                "level {level} {name}: partition {off} comparison-key run not sorted"
            ));
        }
    }
    Ok(())
}

#[derive(Debug, Clone)]
struct SealedLevel {
    oin: CsrCat,
    oaft: CsrCat,
    rin: CsrCat,
    raft: CsrCat,
}

/// The frozen CSR arenas of one index: `m + 1` levels, four categories
/// each. Built by [`SealedBuilder`], immutable except for tombstoning.
#[derive(Debug, Clone)]
pub(crate) struct SealedStore {
    m: u32,
    levels: Vec<SealedLevel>,
}

/// Per-level collection buffers for a seal: entries keyed by partition
/// offset, sorted and flattened by [`SealedBuilder::finish`].
#[derive(Default)]
struct LevelBuf {
    oin: Vec<(u64, Interval)>,
    oaft: Vec<(u64, IntervalId, Time)>,
    rin: Vec<(u64, IntervalId, Time)>,
    raft: Vec<(u64, IntervalId)>,
}

/// Accumulates entries (from old sealed arenas and/or the unsealed
/// overlay) and freezes them into a [`SealedStore`]. Tombstoned entries
/// are dropped on push, so every seal is also a compaction.
pub(crate) struct SealedBuilder {
    m: u32,
    levels: Vec<LevelBuf>,
}

impl SealedBuilder {
    pub fn new(m: u32) -> Self {
        Self {
            m,
            levels: (0..=m).map(|_| LevelBuf::default()).collect(),
        }
    }

    #[inline]
    pub fn push_oin(&mut self, level: u32, off: u64, id: IntervalId, st: Time, end: Time) {
        if id != TOMBSTONE {
            self.levels[level as usize]
                .oin
                .push((off, Interval { id, st, end }));
        }
    }

    #[inline]
    pub fn push_oaft(&mut self, level: u32, off: u64, id: IntervalId, st: Time) {
        if id != TOMBSTONE {
            self.levels[level as usize].oaft.push((off, id, st));
        }
    }

    #[inline]
    pub fn push_rin(&mut self, level: u32, off: u64, id: IntervalId, end: Time) {
        if id != TOMBSTONE {
            self.levels[level as usize].rin.push((off, id, end));
        }
    }

    #[inline]
    pub fn push_raft(&mut self, level: u32, off: u64, id: IntervalId) {
        if id != TOMBSTONE {
            self.levels[level as usize].raft.push((off, id));
        }
    }

    /// Sorts every level's buffers by `(partition, comparison key)` and
    /// materializes the CSR arenas.
    pub fn finish(self) -> SealedStore {
        let m = self.m;
        let levels = self
            .levels
            .into_iter()
            .enumerate()
            .map(|(l, mut b)| {
                let parts = 1usize << l;
                b.oin.sort_unstable_by_key(|&(off, s)| (off, s.st));
                b.oaft.sort_unstable_by_key(|&(off, _, st)| (off, st));
                b.rin.sort_unstable_by_key(|&(off, _, end)| (off, end));
                b.raft.sort_unstable_by_key(|&(off, _)| off);
                SealedLevel {
                    oin: CsrCat {
                        starts: build_starts(parts, b.oin.iter().map(|e| e.0)),
                        ids: Arc::new(b.oin.iter().map(|e| e.1.id).collect()),
                        st: b.oin.iter().map(|e| e.1.st).collect(),
                        end: b.oin.iter().map(|e| e.1.end).collect(),
                    },
                    oaft: CsrCat {
                        starts: build_starts(parts, b.oaft.iter().map(|e| e.0)),
                        ids: Arc::new(b.oaft.iter().map(|e| e.1).collect()),
                        st: b.oaft.iter().map(|e| e.2).collect(),
                        end: Vec::new(),
                    },
                    rin: CsrCat {
                        starts: build_starts(parts, b.rin.iter().map(|e| e.0)),
                        ids: Arc::new(b.rin.iter().map(|e| e.1).collect()),
                        st: Vec::new(),
                        end: b.rin.iter().map(|e| e.2).collect(),
                    },
                    raft: CsrCat {
                        starts: build_starts(parts, b.raft.iter().map(|e| e.0)),
                        ids: Arc::new(b.raft.iter().map(|e| e.1).collect()),
                        st: Vec::new(),
                        end: Vec::new(),
                    },
                }
            })
            .collect();
        SealedStore { m, levels }
    }
}

/// Builds the partition-offset table of one category from its (sorted or
/// unsorted) entry offsets: a counting pass plus a prefix sum.
fn build_starts(parts: usize, offsets: impl Iterator<Item = u64>) -> Vec<u32> {
    let mut starts = vec![0u32; parts + 1];
    for off in offsets {
        starts[off as usize + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    starts
}

impl SealedStore {
    /// Hierarchy depth of the sealed arenas.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Borrowed raw columns of category `kind` at `level` — the
    /// snapshot export path reads the arenas through this, byte for
    /// byte, with no re-sort or re-assignment.
    pub fn category_columns(&self, level: u32, kind: SubKind) -> CatColumns<'_> {
        let lev = &self.levels[level as usize];
        let cat = match kind {
            SubKind::OriginalIn => &lev.oin,
            SubKind::OriginalAft => &lev.oaft,
            SubKind::ReplicaIn => &lev.rin,
            SubKind::ReplicaAft => &lev.raft,
        };
        CatColumns {
            starts: &cat.starts,
            ids: &cat.ids,
            st: &cat.st,
            end: &cat.end,
        }
    }

    /// Rebuilds a store from raw columns (the snapshot restore path),
    /// validating every structural invariant the sealed walk relies on:
    /// offset-table shape and monotonicity, final offsets matching the
    /// column lengths, per-category column presence (Table 3), sorted
    /// comparison keys within every partition run, and no tombstones.
    /// Each level's categories arrive in `[oin, oaft, rin, raft]`
    /// order. Returns a description of the first violation instead of
    /// panicking — corrupted snapshot bytes must never crash a restore.
    pub fn from_columns(m: u32, levels: Vec<[CatColumnsOwned; 4]>) -> Result<SealedStore, String> {
        if m > 26 {
            // the build path asserts the same bound; a decoded m beyond
            // it is corruption, not a shape this store can represent
            return Err(format!("m = {m} exceeds the supported depth (26)"));
        }
        if levels.len() != (m + 1) as usize {
            return Err(format!(
                "expected {} levels for m = {m}, got {}",
                m + 1,
                levels.len()
            ));
        }
        let levels = levels
            .into_iter()
            .enumerate()
            .map(|(l, [oin, oaft, rin, raft])| {
                let parts = 1usize << l;
                let l = l as u32;
                validate_cat(l, "oin", &oin, parts, true, true)?;
                validate_cat(l, "oaft", &oaft, parts, true, false)?;
                validate_cat(l, "rin", &rin, parts, false, true)?;
                validate_cat(l, "raft", &raft, parts, false, false)?;
                check_run_order(l, "oin", &oin.starts, &oin.st)?;
                check_run_order(l, "oaft", &oaft.starts, &oaft.st)?;
                check_run_order(l, "rin", &rin.starts, &rin.end)?;
                Ok(SealedLevel {
                    oin: into_cat(oin),
                    oaft: into_cat(oaft),
                    rin: into_cat(rin),
                    raft: into_cat(raft),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SealedStore { m, levels })
    }

    /// Total stored entries across all arenas.
    pub fn entries(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.oin.ids.len() + l.oaft.ids.len() + l.rin.ids.len() + l.raft.ids.len())
            .sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.oin.size_bytes() + l.oaft.size_bytes() + l.rin.size_bytes() + l.raft.size_bytes()
            })
            .sum()
    }

    /// Re-pushes every live entry into `b` (the reseal path: old arenas +
    /// overlay are merged into fresh arenas, dropping tombstones).
    pub fn drain_into(&self, b: &mut SealedBuilder) {
        for (l, lev) in self.levels.iter().enumerate() {
            let l = l as u32;
            for (off, w) in lev.oin.starts.windows(2).enumerate() {
                for k in w[0] as usize..w[1] as usize {
                    b.push_oin(l, off as u64, lev.oin.ids[k], lev.oin.st[k], lev.oin.end[k]);
                }
            }
            for (off, w) in lev.oaft.starts.windows(2).enumerate() {
                for k in w[0] as usize..w[1] as usize {
                    b.push_oaft(l, off as u64, lev.oaft.ids[k], lev.oaft.st[k]);
                }
            }
            for (off, w) in lev.rin.starts.windows(2).enumerate() {
                for k in w[0] as usize..w[1] as usize {
                    b.push_rin(l, off as u64, lev.rin.ids[k], lev.rin.end[k]);
                }
            }
            for (off, w) in lev.raft.starts.windows(2).enumerate() {
                for k in w[0] as usize..w[1] as usize {
                    b.push_raft(l, off as u64, lev.raft.ids[k]);
                }
            }
        }
    }

    /// Reconstructs every live interval stored in the arenas, appending
    /// `(id, st)` pairs for originals whose end lives elsewhere into
    /// `await_end` and `(id, end)` pairs from ends-inside replicas into
    /// `end_of`; fully-known intervals go straight to `out`.
    ///
    /// Works because Algorithm 1 gives every interval exactly one
    /// `Original*` assignment (carrying its start) and exactly one
    /// *ends-inside* assignment (carrying its end): an `Oin` original
    /// carries both; an `Oaft` original's end is carried by its unique
    /// `Rin` replica. `Raft` entries carry nothing and are skipped.
    pub fn collect_live(
        &self,
        out: &mut Vec<Interval>,
        await_end: &mut Vec<(IntervalId, Time)>,
        end_of: &mut Vec<(IntervalId, Time)>,
    ) {
        for lev in &self.levels {
            for (k, &id) in lev.oin.ids.iter().enumerate() {
                if id != TOMBSTONE {
                    out.push(Interval {
                        id,
                        st: lev.oin.st[k],
                        end: lev.oin.end[k],
                    });
                }
            }
            for (k, &id) in lev.oaft.ids.iter().enumerate() {
                if id != TOMBSTONE {
                    await_end.push((id, lev.oaft.st[k]));
                }
            }
            for (k, &id) in lev.rin.ids.iter().enumerate() {
                if id != TOMBSTONE {
                    end_of.push((id, lev.rin.end[k]));
                }
            }
        }
    }

    /// Tombstones one assignment of interval `(id, st, end)`. The sorted
    /// key column implied by the category narrows the scan to the
    /// equal-key run (the same assignment rule insertion uses).
    pub fn tombstone(
        &mut self,
        level: u32,
        off: u64,
        kind: SubKind,
        id: IntervalId,
        st: Time,
        end: Time,
    ) -> bool {
        let lev = &mut self.levels[level as usize];
        match kind {
            SubKind::OriginalIn => lev.oin.tombstone(off, id, st, KeyCol::St),
            SubKind::OriginalAft => lev.oaft.tombstone(off, id, st, KeyCol::St),
            SubKind::ReplicaIn => lev.rin.tombstone(off, id, end, KeyCol::End),
            SubKind::ReplicaAft => lev.raft.tombstone(off, id, 0, KeyCol::None),
        }
    }

    /// Evaluates one query over the sealed arenas (Algorithm 3 with the
    /// §4.1 subdivision lemmas). The caller has already checked that `q`
    /// intersects the domain; `skip` enables tombstone filtering.
    pub fn query_sink<S: QuerySink + ?Sized>(
        &self,
        domain: &Domain,
        q: RangeQuery,
        skip: bool,
        sink: &mut S,
    ) {
        debug_assert_eq!(domain.m(), self.m);
        let (qst, qend) = domain.map_query(&q);
        let mut flags = CompFlags::new();
        for l in (0..=self.m).rev() {
            if sink.is_saturated() {
                return;
            }
            let f = domain.prefix(l, qst);
            let last = domain.prefix(l, qend);
            let _ = self.walk_level(l, f, last, &q, flags, skip, sink);
            flags.update(f, last);
        }
    }

    /// Evaluates a batch of queries with one shared walk per level:
    /// queries are ordered by their first relevant partition, so each
    /// level's offset table and arenas are traversed once, left to right,
    /// for the whole batch. Per-sink output is bit-identical to running
    /// [`SealedStore::query_sink`] once per query — each query's sink
    /// receives exactly its own per-level emissions, so the visiting
    /// order within a level is a cache-locality concern only.
    ///
    /// Generic over the sink type: the sharded executor instantiates
    /// this per concrete sink, eliminating the per-emission vtable hop
    /// the `dyn` spelling pays. `presorted` says the caller already
    /// ordered the batch by query start (the batch-clustering planning
    /// pass), so the per-batch locality sort is skipped.
    pub fn query_batch<S: QuerySink + ?Sized>(
        &self,
        domain: &Domain,
        queries: &[RangeQuery],
        skip: bool,
        sinks: &mut [&mut S],
        presorted: bool,
    ) {
        assert_eq!(
            queries.len(),
            sinks.len(),
            "query_batch: one sink per query"
        );
        let mapped: Vec<(u64, u64)> = queries.iter().map(|q| domain.map_query(q)).collect();
        let mut order: Vec<usize> = (0..queries.len())
            .filter(|&i| domain.intersects(&queries[i]))
            .collect();
        if !presorted {
            order.sort_unstable_by_key(|&i| mapped[i]);
        }
        // The Lemma-2 flags are a closed form of the mapped endpoints: at
        // level `l`, `first` survives iff every level below had an odd
        // first-partition offset — i.e. the low `m - l` bits of the mapped
        // start are all ones — and dually `last` survives iff the low
        // `m - l` bits of the mapped end are all zeros. Computing the
        // alignment once per query replaces the per-(level, query) flag
        // updates and lets the batch skip empty levels outright.
        let align: Vec<(u32, u32)> = mapped
            .iter()
            .map(|&(qst, qend)| (qst.trailing_ones(), qend.trailing_zeros()))
            .collect();
        // Tile the sorted batch: each tile of queries runs the whole
        // level walk before the next tile starts. The level-major order
        // inside a tile keeps the arena-locality win of batching (sorted
        // neighbours touch adjacent partitions), while the tile width
        // caps how many destination sinks are live at once — on
        // result-heavy workloads an unbounded batch cycles through every
        // sink's tail per level and thrashes the cache that solo keeps a
        // single hot output buffer in. The width adapts by feedback: the
        // walk reports how many arena ids each tile touched, and the
        // next tile is sized so its expected emission volume stays
        // within the cache budget (result-heavy queries degrade to one
        // live destination, exactly the solo walk's behaviour). Per-sink
        // emission order is unchanged (every query still walks levels
        // bottom-up), so results stay bit-identical to the solo walk.
        let mut tile_len = BATCH_TILE;
        let mut t0 = 0;
        while t0 < order.len() {
            let t1 = (t0 + tile_len).min(order.len());
            let tile = &order[t0..t1];
            let mut volume = 0usize;
            for l in (0..=self.m).rev() {
                // hoist the empty-level test out of the per-query loop:
                // on short-interval data most top levels hold nothing,
                // and the whole tile can skip them in one branch
                let lev = &self.levels[l as usize];
                if lev.oin.ids.is_empty()
                    && lev.oaft.ids.is_empty()
                    && lev.rin.ids.is_empty()
                    && lev.raft.ids.is_empty()
                {
                    continue;
                }
                let need = self.m - l;
                for &i in tile {
                    if sinks[i].is_saturated() {
                        continue;
                    }
                    let (qst, qend) = mapped[i];
                    let flags = CompFlags {
                        first: align[i].0 >= need,
                        last: align[i].1 >= need,
                    };
                    let f = domain.prefix(l, qst);
                    let last = domain.prefix(l, qend);
                    volume += self.walk_level(l, f, last, &queries[i], flags, skip, &mut *sinks[i]);
                }
            }
            let per_query = volume / (t1 - t0);
            tile_len = (TILE_VOLUME / per_query.max(1)).clamp(1, BATCH_TILE);
            t0 = t1;
        }
    }

    /// One level of the walk: Lemmas 5/6 comparison regimes, gated by the
    /// Lemma-2 flags, over the CSR runs. All middle partitions of a
    /// category form one contiguous blind slice.
    ///
    /// Returns the number of arena ids the level touched for this query
    /// (the sum of the run lengths handed to the emitters, before any
    /// endpoint filtering) — the cache-relevant volume the batched walk
    /// feeds back into its tile sizing.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn walk_level<S: QuerySink + ?Sized>(
        &self,
        l: u32,
        f: u64,
        last: u64,
        q: &RangeQuery,
        flags: CompFlags,
        skip: bool,
        sink: &mut S,
    ) -> usize {
        let lev = &self.levels[l as usize];
        if lev.oin.ids.is_empty()
            && lev.oaft.ids.is_empty()
            && lev.rin.ids.is_empty()
            && lev.raft.ids.is_empty()
        {
            return 0;
        }
        let mut vol = 0;
        if f == last {
            // single relevant partition (Lemma 6)
            let (lo, hi) = lev.oin.run(f);
            if lo < hi {
                vol += hi - lo;
                match (flags.first, flags.last) {
                    (true, true) => lev.oin.overlap(lo, hi, q.st, q.end, skip, sink),
                    (false, true) => lev.oin.st_prefix(lo, hi, q.end, skip, sink),
                    (true, false) => lev.oin.end_filter(lo, hi, q.st, skip, sink),
                    (false, false) => lev.oin.blind(lo, hi, skip, sink),
                }
            }
            let (lo, hi) = lev.oaft.run(f);
            if lo < hi {
                vol += hi - lo;
                if flags.last {
                    lev.oaft.st_prefix(lo, hi, q.end, skip, sink);
                } else {
                    lev.oaft.blind(lo, hi, skip, sink);
                }
            }
            let (lo, hi) = lev.rin.run(f);
            if lo < hi {
                vol += hi - lo;
                if flags.first {
                    lev.rin.end_suffix(lo, hi, q.st, skip, sink);
                } else {
                    lev.rin.blind(lo, hi, skip, sink);
                }
            }
            let (lo, hi) = lev.raft.run(f);
            vol += hi.saturating_sub(lo);
            lev.raft.blind(lo, hi, skip, sink);
        } else {
            // first relevant partition (Lemma 5): only the `in`
            // subdivisions may need the `end >= q.st` test
            let (lo, hi) = lev.oin.run(f);
            if lo < hi {
                vol += hi - lo;
                if flags.first {
                    lev.oin.end_filter(lo, hi, q.st, skip, sink);
                } else {
                    lev.oin.blind(lo, hi, skip, sink);
                }
            }
            let (lo, hi) = lev.rin.run(f);
            if lo < hi {
                vol += hi - lo;
                if flags.first {
                    lev.rin.end_suffix(lo, hi, q.st, skip, sink);
                } else {
                    lev.rin.blind(lo, hi, skip, sink);
                }
            }
            let (lo, hi) = lev.oaft.run(f);
            vol += hi.saturating_sub(lo);
            lev.oaft.blind(lo, hi, skip, sink);
            let (lo, hi) = lev.raft.run(f);
            vol += hi.saturating_sub(lo);
            lev.raft.blind(lo, hi, skip, sink);
            // all middle partitions at once: one contiguous slice per
            // category (originals only; their replicas were counted at
            // the first partition)
            if last > f + 1 {
                let (lo, hi) = lev.oin.span(f + 1, last - 1);
                vol += hi.saturating_sub(lo);
                lev.oin.blind(lo, hi, skip, sink);
                let (lo, hi) = lev.oaft.span(f + 1, last - 1);
                vol += hi.saturating_sub(lo);
                lev.oaft.blind(lo, hi, skip, sink);
            }
            // last relevant partition: originals only, `st <= q.end`
            let (lo, hi) = lev.oin.run(last);
            if lo < hi {
                vol += hi - lo;
                if flags.last {
                    lev.oin.st_prefix(lo, hi, q.end, skip, sink);
                } else {
                    lev.oin.blind(lo, hi, skip, sink);
                }
            }
            let (lo, hi) = lev.oaft.run(last);
            if lo < hi {
                vol += hi - lo;
                if flags.last {
                    lev.oaft.st_prefix(lo, hi, q.end, skip, sink);
                } else {
                    lev.oaft.blind(lo, hi, skip, sink);
                }
            }
        }
        vol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_table_prefix_sums() {
        let s = build_starts(4, [0, 0, 2, 3, 3].into_iter());
        assert_eq!(s, vec![0, 2, 2, 3, 5]);
    }

    #[test]
    fn builder_drops_tombstones_and_sorts_runs() {
        let mut b = SealedBuilder::new(2);
        b.push_oin(2, 1, 7, 30, 40);
        b.push_oin(2, 1, 8, 10, 15);
        b.push_oin(2, 1, TOMBSTONE, 0, 0);
        b.push_raft(1, 0, 3);
        let s = b.finish();
        assert_eq!(s.entries(), 3);
        let lev = &s.levels[2];
        let (lo, hi) = lev.oin.run(1);
        assert_eq!(&lev.oin.ids[lo..hi], &[8, 7]); // sorted by st
        assert_eq!(&lev.oin.st[lo..hi], &[10, 30]);
    }

    #[test]
    fn tombstone_narrows_by_key() {
        let mut b = SealedBuilder::new(1);
        for (id, st) in [(1u64, 5u64), (2, 5), (3, 9)] {
            b.push_oin(1, 0, id, st, st + 1);
        }
        let mut s = b.finish();
        assert!(s.tombstone(1, 0, SubKind::OriginalIn, 2, 5, 6));
        assert!(!s.tombstone(1, 0, SubKind::OriginalIn, 2, 5, 6));
        // id 3 has key 9; looking for it under the wrong key fails
        assert!(!s.tombstone(1, 0, SubKind::OriginalIn, 3, 5, 6));
        assert!(s.tombstone(1, 0, SubKind::OriginalIn, 3, 9, 10));
    }
}
