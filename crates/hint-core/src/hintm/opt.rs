//! The fully optimized HINT^m — the paper's flagship configuration.
//!
//! On top of the §4.1 subdivisions + sorting + storage optimization, this
//! index adds:
//!
//! * **§4.2 skew & sparsity handling** ([`HintOptions::sparse`]): all
//!   partitions of one subdivision kind at one level are merged into a
//!   single table `T^{kind}_l`, ordered by partition offset, with a sorted
//!   *sparse directory* of non-empty partitions. Relevant partitions are
//!   then one contiguous run — empty partitions cost nothing and cause no
//!   cache misses.
//! * **§4.3 cache-miss reduction** ([`HintOptions::columnar`]): each merged
//!   table is decomposed into a dedicated *ids column* plus separate
//!   endpoint columns. Comparison-free runs touch only the ids column.
//!
//! Both options default to **on**; Figure 12's ablation builds the index
//! with one of them off. With `sparse` off the directory is dense (one slot
//! per possible partition), with `columnar` off the merged tables store
//! row-wise entries.
//!
//! The flagship index is read-optimized: point inserts splice the merged
//! tables (`O(level)`); use [`crate::HybridHint`] for mixed workloads
//! (§4.4).

use crate::assign::{for_each_assignment, SubKind};
use crate::domain::Domain;
use crate::hintm::CompFlags;
use crate::interval::{Interval, IntervalId, RangeQuery, Time, TOMBSTONE};
use crate::scan::{
    bsearch_cost, emit_all, emit_end_suffix, emit_filtered_ids, emit_ids, emit_overlap,
};
use crate::sink::QuerySink;
use crate::stats::QueryStats;

/// Storage options of the optimized index (Figure 12 ablation axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HintOptions {
    /// §4.2: sparse directory of non-empty partitions (vs a dense slot per
    /// possible partition offset).
    pub sparse: bool,
    /// §4.3: columnar id/endpoint decomposition (vs row-wise entries).
    pub columnar: bool,
}

impl Default for HintOptions {
    fn default() -> Self {
        Self {
            sparse: true,
            columnar: true,
        }
    }
}

/// Directory over a merged per-level table: maps partition offsets to runs
/// of the data arrays.
#[derive(Debug, Clone)]
enum Dir {
    /// One slot per possible partition: `begins.len() == 2^level + 1`.
    Dense { begins: Vec<u32> },
    /// Sorted non-empty offsets; `begins.len() == offs.len() + 1`.
    /// `up` holds the §4.2 inter-level links: `up[i]` is the directory
    /// index, at the level above, of the first non-empty partition with
    /// offset `>= offs[i] / 2` (`NO_LINK` when absent). Links are *hints*:
    /// lookups self-correct, so stale links after point inserts only cost
    /// a few extra steps.
    Sparse {
        offs: Vec<u64>,
        begins: Vec<u32>,
        up: Vec<u32>,
    },
}

/// Sentinel for a missing/unknown inter-level link.
const NO_LINK: usize = usize::MAX;

impl Dir {
    /// Directory-entry index range `[i0, i1)` covering partition offsets in
    /// `[f, l]`. `hint` is an inter-level link guess for `i0` (§4.2): the
    /// lookup walks backwards/forwards from it instead of binary searching.
    #[inline]
    fn entry_range(&self, f: u64, l: u64, hint: usize) -> (usize, usize) {
        match self {
            Dir::Dense { begins } => {
                let n = begins.len() - 1;
                ((f as usize).min(n), ((l + 1) as usize).min(n))
            }
            Dir::Sparse { offs, .. } => {
                let i0 = if hint == NO_LINK {
                    offs.partition_point(|&o| o < f)
                } else {
                    // self-correcting hinted scan: lands exactly on the
                    // first entry with offset >= f for any starting hint
                    let mut i = hint.min(offs.len());
                    while i > 0 && offs[i - 1] >= f {
                        i -= 1;
                    }
                    while i < offs.len() && offs[i] < f {
                        i += 1;
                    }
                    i
                };
                let i1 = i0 + offs[i0..].partition_point(|&o| o <= l);
                (i0, i1)
            }
        }
    }

    /// The §4.2 link stored at entry `i`: a starting hint for the lookup
    /// at the level above.
    #[inline]
    fn up_of(&self, i: usize) -> usize {
        match self {
            Dir::Dense { .. } => NO_LINK,
            Dir::Sparse { up, .. } => {
                if i < up.len() && up[i] != u32::MAX {
                    up[i] as usize
                } else {
                    NO_LINK
                }
            }
        }
    }

    /// Partition offset of directory entry `i`.
    #[inline]
    fn offset_of(&self, i: usize) -> u64 {
        match self {
            Dir::Dense { .. } => i as u64,
            Dir::Sparse { offs, .. } => offs[i],
        }
    }

    /// Data range `[lo, hi)` spanned by directory entries `[i0, i1)`.
    #[inline]
    fn data_range(&self, i0: usize, i1: usize) -> (usize, usize) {
        let begins = match self {
            Dir::Dense { begins } => begins,
            Dir::Sparse { begins, .. } => begins,
        };
        (begins[i0] as usize, begins[i1] as usize)
    }

    /// Inserts `count` slots at data position `pos` inside the run of
    /// partition `off`, creating the directory entry if missing. Returns
    /// the data index where the new entry should be placed; all later
    /// begins are shifted.
    fn splice(&mut self, off: u64) -> SpliceRun {
        match self {
            Dir::Dense { begins } => {
                let i = off as usize;
                SpliceRun {
                    entry: i,
                    lo: begins[i] as usize,
                    hi: begins[i + 1] as usize,
                }
            }
            Dir::Sparse { offs, begins, up } => {
                let i = offs.partition_point(|&o| o < off);
                if i == offs.len() || offs[i] != off {
                    let at = begins[i];
                    offs.insert(i, off);
                    begins.insert(i, at);
                    // new entry gets no link; neighbours' links stay valid
                    // as hints (lookups self-correct)
                    up.insert(i, u32::MAX);
                }
                SpliceRun {
                    entry: i,
                    lo: begins[i] as usize,
                    hi: begins[i + 1] as usize,
                }
            }
        }
    }

    /// Shifts every `begins` entry after directory entry `entry` by one
    /// (after a data insertion inside that entry's run).
    fn shift_after(&mut self, entry: usize) {
        let begins = match self {
            Dir::Dense { begins } => begins,
            Dir::Sparse { begins, .. } => begins,
        };
        for b in &mut begins[entry + 1..] {
            *b += 1;
        }
    }

    /// Rebuilds the §4.2 links of this directory so each entry points at
    /// the first entry of `above` (the directory one level up) with offset
    /// `>= offset / 2`.
    fn link_to(&mut self, above: &Dir) {
        if let Dir::Sparse { offs, up, .. } = self {
            up.clear();
            if let Dir::Sparse {
                offs: above_offs, ..
            } = above
            {
                up.extend(offs.iter().map(|&o| {
                    let target = above_offs.partition_point(|&a| a < (o >> 1));
                    if target < above_offs.len() {
                        target as u32
                    } else {
                        u32::MAX
                    }
                }));
            } else {
                up.resize(offs.len(), u32::MAX);
            }
        }
    }

    /// Looks up the run of partition `off`, if non-empty/present.
    #[inline]
    fn run_of(&self, off: u64) -> Option<(usize, usize)> {
        match self {
            Dir::Dense { begins } => {
                let i = off as usize;
                if i + 1 >= begins.len() {
                    return None;
                }
                let (lo, hi) = (begins[i] as usize, begins[i + 1] as usize);
                (lo < hi).then_some((lo, hi))
            }
            Dir::Sparse { offs, begins, .. } => {
                let i = offs.partition_point(|&o| o < off);
                if i < offs.len() && offs[i] == off {
                    Some((begins[i] as usize, begins[i + 1] as usize))
                } else {
                    None
                }
            }
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            Dir::Dense { begins } => begins.len() * 4,
            Dir::Sparse { offs, begins, up } => offs.len() * 8 + begins.len() * 4 + up.len() * 4,
        }
    }
}

/// Result of a directory splice: directory entry index plus its data run.
struct SpliceRun {
    entry: usize,
    lo: usize,
    #[allow(dead_code)]
    hi: usize,
}

/// Merged `Oin` table: full triplets, sorted by `(partition, st)`.
#[derive(Debug, Clone)]
enum OinData {
    Rows(Vec<Interval>),
    Cols {
        ids: Vec<IntervalId>,
        st: Vec<Time>,
        end: Vec<Time>,
    },
}

/// Merged `Oaft` table: `(id, st)`, sorted by `(partition, st)`.
#[derive(Debug, Clone)]
enum OaftData {
    Rows(Vec<(IntervalId, Time)>),
    Cols { ids: Vec<IntervalId>, st: Vec<Time> },
}

/// Merged `Rin` table: `(id, end)`, sorted by `(partition, end)`.
#[derive(Debug, Clone)]
enum RinData {
    Rows(Vec<(IntervalId, Time)>),
    Cols {
        ids: Vec<IntervalId>,
        end: Vec<Time>,
    },
}

impl OinData {
    /// Blind-reports ids in data range `[lo, hi)` (the §4.3 fast path:
    /// only the ids column is touched).
    #[inline]
    fn blind<S: QuerySink + ?Sized>(&self, lo: usize, hi: usize, skip: bool, sink: &mut S) {
        match self {
            OinData::Rows(rows) => emit_all(&rows[lo..hi], skip, |r| r.id, sink),
            OinData::Cols { ids, .. } => emit_ids(&ids[lo..hi], skip, sink),
        }
    }

    /// Reports the run prefix with `st <= bound` (run sorted by `st`).
    /// Returns the number of comparisons (binary-search probes).
    #[inline]
    fn st_prefix<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        bound: Time,
        skip: bool,
        sink: &mut S,
    ) -> usize {
        match self {
            OinData::Rows(rows) => {
                let run = &rows[lo..hi];
                let ub = run.partition_point(|r| r.st <= bound);
                emit_all(&run[..ub], skip, |r| r.id, sink);
                bsearch_cost(run.len())
            }
            OinData::Cols { ids, st, .. } => {
                let run = &st[lo..hi];
                let ub = run.partition_point(|&x| x <= bound);
                emit_ids(&ids[lo..lo + ub], skip, sink);
                bsearch_cost(run.len())
            }
        }
    }

    /// Linear scan of the run reporting entries with `end >= bound`
    /// (the run is sorted by `st`, so no binary search applies).
    #[inline]
    fn end_ge_scan<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        bound: Time,
        skip: bool,
        sink: &mut S,
    ) -> usize {
        match self {
            OinData::Rows(rows) => {
                emit_end_suffix(&rows[lo..hi], bound, false, skip, |r| r.end, |r| r.id, sink);
            }
            OinData::Cols { ids, end, .. } => {
                emit_filtered_ids(&ids[lo..hi], &end[lo..hi], skip, |e| e >= bound, sink);
            }
        }
        hi - lo
    }

    /// Both tests (single-partition case with both flags set): binary
    /// search the `st <= q.end` prefix, then filter by `end >= q.st`.
    #[inline]
    fn both<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        qst: Time,
        qend: Time,
        skip: bool,
        sink: &mut S,
    ) -> usize {
        match self {
            OinData::Rows(rows) => {
                let run = &rows[lo..hi];
                emit_overlap(
                    run,
                    qst,
                    qend,
                    true,
                    skip,
                    |r| r.st,
                    |r| r.end,
                    |r| r.id,
                    sink,
                )
            }
            OinData::Cols { ids, st, end } => {
                let run = &st[lo..hi];
                let ub = run.partition_point(|&x| x <= qend);
                emit_filtered_ids(
                    &ids[lo..lo + ub],
                    &end[lo..lo + ub],
                    skip,
                    |e| e >= qst,
                    sink,
                );
                bsearch_cost(run.len()) + ub
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            OinData::Rows(r) => r.len(),
            OinData::Cols { ids, .. } => ids.len(),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            OinData::Rows(r) => r.len() * std::mem::size_of::<Interval>(),
            OinData::Cols { ids, st, end } => (ids.len() + st.len() + end.len()) * 8,
        }
    }

    fn tombstone_in(&mut self, lo: usize, hi: usize, id: IntervalId) -> bool {
        match self {
            OinData::Rows(rows) => {
                for r in &mut rows[lo..hi] {
                    if r.id == id {
                        r.id = TOMBSTONE;
                        return true;
                    }
                }
                false
            }
            OinData::Cols { ids, .. } => {
                for slot in &mut ids[lo..hi] {
                    if *slot == id {
                        *slot = TOMBSTONE;
                        return true;
                    }
                }
                false
            }
        }
    }

    fn insert_at(&mut self, lo: usize, hi: usize, s: Interval) {
        match self {
            OinData::Rows(rows) => {
                let pos = lo + rows[lo..hi].partition_point(|r| r.st <= s.st);
                rows.insert(pos, s);
            }
            OinData::Cols { ids, st, end } => {
                let pos = lo + st[lo..hi].partition_point(|&x| x <= s.st);
                ids.insert(pos, s.id);
                st.insert(pos, s.st);
                end.insert(pos, s.end);
            }
        }
    }
}

impl OaftData {
    #[inline]
    fn blind<S: QuerySink + ?Sized>(&self, lo: usize, hi: usize, skip: bool, sink: &mut S) {
        match self {
            OaftData::Rows(rows) => emit_all(&rows[lo..hi], skip, |e| e.0, sink),
            OaftData::Cols { ids, .. } => emit_ids(&ids[lo..hi], skip, sink),
        }
    }

    #[inline]
    fn st_prefix<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        bound: Time,
        skip: bool,
        sink: &mut S,
    ) -> usize {
        match self {
            OaftData::Rows(rows) => {
                let run = &rows[lo..hi];
                let ub = run.partition_point(|&(_, st)| st <= bound);
                emit_all(&run[..ub], skip, |e| e.0, sink);
                bsearch_cost(run.len())
            }
            OaftData::Cols { ids, st } => {
                let run = &st[lo..hi];
                let ub = run.partition_point(|&x| x <= bound);
                emit_ids(&ids[lo..lo + ub], skip, sink);
                bsearch_cost(run.len())
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            OaftData::Rows(r) => r.len(),
            OaftData::Cols { ids, .. } => ids.len(),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            OaftData::Rows(r) => r.len() * 16,
            OaftData::Cols { ids, st } => (ids.len() + st.len()) * 8,
        }
    }

    fn tombstone_in(&mut self, lo: usize, hi: usize, id: IntervalId) -> bool {
        match self {
            OaftData::Rows(rows) => {
                for r in &mut rows[lo..hi] {
                    if r.0 == id {
                        r.0 = TOMBSTONE;
                        return true;
                    }
                }
                false
            }
            OaftData::Cols { ids, .. } => {
                for slot in &mut ids[lo..hi] {
                    if *slot == id {
                        *slot = TOMBSTONE;
                        return true;
                    }
                }
                false
            }
        }
    }

    fn insert_at(&mut self, lo: usize, hi: usize, s: Interval) {
        match self {
            OaftData::Rows(rows) => {
                let pos = lo + rows[lo..hi].partition_point(|&(_, st)| st <= s.st);
                rows.insert(pos, (s.id, s.st));
            }
            OaftData::Cols { ids, st } => {
                let pos = lo + st[lo..hi].partition_point(|&x| x <= s.st);
                ids.insert(pos, s.id);
                st.insert(pos, s.st);
            }
        }
    }
}

impl RinData {
    #[inline]
    fn blind<S: QuerySink + ?Sized>(&self, lo: usize, hi: usize, skip: bool, sink: &mut S) {
        match self {
            RinData::Rows(rows) => emit_all(&rows[lo..hi], skip, |e| e.0, sink),
            RinData::Cols { ids, .. } => emit_ids(&ids[lo..hi], skip, sink),
        }
    }

    /// Reports the run suffix with `end >= bound` (run sorted by `end`).
    #[inline]
    fn end_suffix<S: QuerySink + ?Sized>(
        &self,
        lo: usize,
        hi: usize,
        bound: Time,
        skip: bool,
        sink: &mut S,
    ) -> usize {
        match self {
            RinData::Rows(rows) => {
                let run = &rows[lo..hi];
                let lb = run.partition_point(|&(_, end)| end < bound);
                emit_all(&run[lb..], skip, |e| e.0, sink);
                bsearch_cost(run.len())
            }
            RinData::Cols { ids, end } => {
                let run = &end[lo..hi];
                let lb = run.partition_point(|&x| x < bound);
                emit_ids(&ids[lo + lb..hi], skip, sink);
                bsearch_cost(run.len())
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            RinData::Rows(r) => r.len(),
            RinData::Cols { ids, .. } => ids.len(),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            RinData::Rows(r) => r.len() * 16,
            RinData::Cols { ids, end } => (ids.len() + end.len()) * 8,
        }
    }

    fn tombstone_in(&mut self, lo: usize, hi: usize, id: IntervalId) -> bool {
        match self {
            RinData::Rows(rows) => {
                for r in &mut rows[lo..hi] {
                    if r.0 == id {
                        r.0 = TOMBSTONE;
                        return true;
                    }
                }
                false
            }
            RinData::Cols { ids, .. } => {
                for slot in &mut ids[lo..hi] {
                    if *slot == id {
                        *slot = TOMBSTONE;
                        return true;
                    }
                }
                false
            }
        }
    }

    fn insert_at(&mut self, lo: usize, hi: usize, s: Interval) {
        match self {
            RinData::Rows(rows) => {
                let pos = lo + rows[lo..hi].partition_point(|&(_, end)| end <= s.end);
                rows.insert(pos, (s.id, s.end));
            }
            RinData::Cols { ids, end } => {
                let pos = lo + end[lo..hi].partition_point(|&x| x <= s.end);
                ids.insert(pos, s.id);
                end.insert(pos, s.end);
            }
        }
    }
}

/// One subdivision-kind group at one level: directory + merged table.
#[derive(Debug, Clone)]
struct Group<D> {
    dir: Dir,
    data: D,
}

#[derive(Debug, Clone)]
struct Level {
    oin: Group<OinData>,
    oaft: Group<OaftData>,
    rin: Group<RinData>,
    raft: Group<Vec<IntervalId>>,
}

/// The fully optimized HINT^m index (§4).
#[derive(Debug, Clone)]
pub struct Hint {
    domain: Domain,
    opts: HintOptions,
    levels: Vec<Level>,
    live: usize,
    tombstones: usize,
}

/// Per-level build buffers (assignment output before dir construction).
#[derive(Default)]
struct BuildLevel {
    oin: Vec<(u64, Interval)>,
    oaft: Vec<(u64, IntervalId, Time)>,
    rin: Vec<(u64, IntervalId, Time)>,
    raft: Vec<(u64, IntervalId)>,
}

impl Hint {
    /// Builds the index with all optimizations (sparse + columnar).
    pub fn build(data: &[Interval], m: u32) -> Self {
        Self::build_with_options(data, m, HintOptions::default())
    }

    /// Builds with explicit §4.2/§4.3 options (Figure 12 ablation).
    pub fn build_with_options(data: &[Interval], m: u32, opts: HintOptions) -> Self {
        let domain = Domain::from_data(data, m);
        Self::build_with_domain(data, domain, opts)
    }

    /// Builds over an explicit domain.
    pub fn build_with_domain(data: &[Interval], domain: Domain, opts: HintOptions) -> Self {
        let m = domain.m();
        if !opts.sparse {
            assert!(m <= 26, "dense directories limited to m <= 26 (got {m})");
        }
        let mut buf = presized_build_buffers(data, &domain);
        for s in data {
            let (a, b) = domain.map_interval(s);
            for_each_assignment(m, a, b, |asg| {
                let lvl = &mut buf[asg.level as usize];
                match asg.kind {
                    SubKind::OriginalIn => lvl.oin.push((asg.offset, *s)),
                    SubKind::OriginalAft => lvl.oaft.push((asg.offset, s.id, s.st)),
                    SubKind::ReplicaIn => lvl.rin.push((asg.offset, s.id, s.end)),
                    SubKind::ReplicaAft => lvl.raft.push((asg.offset, s.id)),
                }
            });
        }
        let levels: Vec<Level> = buf
            .into_iter()
            .enumerate()
            .map(|(l, b)| build_level(l, b, opts))
            .collect();
        let levels = link_levels(levels);
        Self {
            domain,
            opts,
            levels,
            live: data.len(),
            tombstones: 0,
        }
    }

    /// Parallel bulk construction (§6 future work: "effective
    /// parallelization techniques, taking advantage of the fact that HINT
    /// partitions are independent").
    ///
    /// The assignment pass fans out over `threads` data chunks (each thread
    /// fills private per-level buffers), then every level's merged tables
    /// are sorted and columnarized concurrently — levels are fully
    /// independent. Produces an index identical to [`Hint::build_with_options`].
    pub fn build_parallel(data: &[Interval], m: u32, opts: HintOptions, threads: usize) -> Self {
        let domain = Domain::from_data(data, m);
        Self::build_parallel_with_domain(data, domain, opts, threads)
    }

    /// Parallel build over an explicit domain (see [`Hint::build_parallel`]).
    pub fn build_parallel_with_domain(
        data: &[Interval],
        domain: Domain,
        opts: HintOptions,
        threads: usize,
    ) -> Self {
        let m = domain.m();
        if !opts.sparse {
            assert!(m <= 26, "dense directories limited to m <= 26 (got {m})");
        }
        let threads = threads.clamp(1, data.len().max(1));
        let chunk = data.len().div_ceil(threads).max(1);

        // phase 1: parallel assignment into per-thread level buffers
        let partials: Vec<Vec<BuildLevel>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(chunk)
                .map(|c| {
                    scope.spawn(move |_| {
                        let mut buf = presized_build_buffers(c, &domain);
                        for s in c {
                            let (a, b) = domain.map_interval(s);
                            for_each_assignment(m, a, b, |asg| {
                                let lvl = &mut buf[asg.level as usize];
                                match asg.kind {
                                    SubKind::OriginalIn => lvl.oin.push((asg.offset, *s)),
                                    SubKind::OriginalAft => lvl.oaft.push((asg.offset, s.id, s.st)),
                                    SubKind::ReplicaIn => lvl.rin.push((asg.offset, s.id, s.end)),
                                    SubKind::ReplicaAft => lvl.raft.push((asg.offset, s.id)),
                                }
                            });
                        }
                        buf
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("assignment worker"))
                .collect()
        })
        .expect("assignment scope");

        // phase 2: merge chunk buffers per level, then build levels in
        // parallel (sorting dominates; each level is independent)
        let mut merged: Vec<BuildLevel> = (0..=m).map(|_| BuildLevel::default()).collect();
        for part in partials {
            for (dst, src) in merged.iter_mut().zip(part) {
                dst.oin.extend(src.oin);
                dst.oaft.extend(src.oaft);
                dst.rin.extend(src.rin);
                dst.raft.extend(src.raft);
            }
        }
        let levels: Vec<Level> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = merged
                .into_iter()
                .enumerate()
                .map(|(l, b)| scope.spawn(move |_| build_level(l, b, opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("level worker"))
                .collect()
        })
        .expect("level scope");
        let levels = link_levels(levels);
        Self {
            domain,
            opts,
            levels,
            live: data.len(),
            tombstones: 0,
        }
    }

    /// The index domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The storage options the index was built with.
    pub fn options(&self) -> HintOptions {
        self.opts
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Evaluates a range query (Algorithm 3 with all §4 optimizations),
    /// pushing result ids into `out`.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_inner(q, out, None);
    }

    /// Evaluates a range query into an arbitrary sink; the level walk
    /// stops once the sink is saturated.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.query_inner(q, sink, None);
    }

    /// Instrumented query: returns the §5.2.4 counters alongside results.
    pub fn query_stats(&self, q: RangeQuery, out: &mut Vec<IntervalId>) -> QueryStats {
        let mut stats = QueryStats::default();
        let before = out.len();
        self.query_inner(q, out, Some(&mut stats));
        stats.results = out.len() - before;
        stats
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    fn query_inner<S: QuerySink + ?Sized>(
        &self,
        q: RangeQuery,
        out: &mut S,
        mut stats: Option<&mut QueryStats>,
    ) {
        if !self.domain.intersects(&q) {
            return;
        }
        let (qst, qend) = self.domain.map_query(&q);
        let m = self.domain.m();
        let skip = self.tombstones > 0;
        let mut flags = CompFlags::new();
        let mut hints = (NO_LINK, NO_LINK);
        for l in (0..=m).rev() {
            if out.is_saturated() {
                return;
            }
            self.scan_level(
                l, &q, qst, qend, &mut flags, &mut hints, skip, out, &mut stats,
            );
        }
    }

    /// Evaluates a batch of queries, one sink per query, sharing one walk
    /// per level: queries are ordered by their first relevant partition,
    /// so each level's directories and merged tables are traversed once,
    /// left to right, for the whole batch — amortizing directory lookups
    /// and keeping the arenas hot in cache. Each sink receives exactly
    /// what a solo [`Hint::query_sink`] would emit.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        let m = self.domain.m();
        let skip = self.tombstones > 0;
        let mapped: Vec<(u64, u64)> = queries.iter().map(|q| self.domain.map_query(q)).collect();
        let mut order: Vec<usize> = (0..queries.len())
            .filter(|&i| self.domain.intersects(&queries[i]))
            .collect();
        order.sort_unstable_by_key(|&i| mapped[i]);
        let mut flags = vec![CompFlags::new(); queries.len()];
        let mut hints = vec![(NO_LINK, NO_LINK); queries.len()];
        for l in (0..=m).rev() {
            for &i in &order {
                if sinks[i].is_saturated() {
                    continue;
                }
                let (qst, qend) = mapped[i];
                self.scan_level(
                    l,
                    &queries[i],
                    qst,
                    qend,
                    &mut flags[i],
                    &mut hints[i],
                    skip,
                    &mut *sinks[i],
                    &mut None,
                );
            }
        }
    }

    /// One level of the optimized walk (the body of Algorithm 3 with all
    /// §4 optimizations), shared by the single-query and batched paths.
    /// `hints` carries the §4.2 inter-level links for the two O-tables;
    /// `flags` is updated in place (Lemma 2) after the level is scanned.
    #[allow(clippy::too_many_arguments)]
    fn scan_level<S: QuerySink + ?Sized>(
        &self,
        l: u32,
        q: &RangeQuery,
        qst: u64,
        qend: u64,
        flags: &mut CompFlags,
        hints: &mut (usize, usize),
        skip: bool,
        out: &mut S,
        stats: &mut Option<&mut QueryStats>,
    ) {
        let (oin_hint, oaft_hint) = hints;
        {
            let f = self.domain.prefix(l, qst);
            let last = self.domain.prefix(l, qend);
            let level = &self.levels[l as usize];
            // distinct-partition comparison tracking for Table 7: did the
            // first / last relevant partition incur any comparison at this
            // level (across all four subdivision groups)?
            let mut cmp_at_first = false;
            let mut cmp_at_last = false;

            // ---- Oin: runs for partitions f..=l; first and last runs may
            // need comparisons, everything in between is a blind slice.
            {
                let (i0, i1) = level.oin.dir.entry_range(f, last, *oin_hint);
                *oin_hint = level.oin.dir.up_of(i0);
                if i0 < i1 {
                    let mut blind_lo = i0;
                    let mut blind_hi = i1;
                    let first_is_f = level.oin.dir.offset_of(i0) == f;
                    let last_is_l = level.oin.dir.offset_of(i1 - 1) == last;
                    if f == last {
                        // single relevant partition
                        debug_assert!(i1 - i0 <= 1);
                        if first_is_f {
                            let (lo, hi) = level.oin.dir.data_range(i0, i1);
                            let cmps = match (flags.first, flags.last) {
                                (true, true) => level.oin.data.both(lo, hi, q.st, q.end, skip, out),
                                (false, true) => level.oin.data.st_prefix(lo, hi, q.end, skip, out),
                                (true, false) => {
                                    level.oin.data.end_ge_scan(lo, hi, q.st, skip, out)
                                }
                                (false, false) => {
                                    level.oin.data.blind(lo, hi, skip, out);
                                    0
                                }
                            };
                            record(stats, 1, cmps);
                            cmp_at_first |= cmps > 0;
                            blind_lo = i1; // consumed
                        }
                    } else {
                        if first_is_f && flags.first {
                            let (lo, hi) = level.oin.dir.data_range(i0, i0 + 1);
                            let cmps = level.oin.data.end_ge_scan(lo, hi, q.st, skip, out);
                            record(stats, 1, cmps);
                            cmp_at_first |= cmps > 0;
                            blind_lo = i0 + 1;
                        }
                        if last_is_l && flags.last && blind_lo < i1 {
                            let (lo, hi) = level.oin.dir.data_range(i1 - 1, i1);
                            let cmps = level.oin.data.st_prefix(lo, hi, q.end, skip, out);
                            record(stats, 1, cmps);
                            cmp_at_last |= cmps > 0;
                            blind_hi = i1 - 1;
                        }
                    }
                    if blind_lo < blind_hi {
                        let (lo, hi) = level.oin.dir.data_range(blind_lo, blind_hi);
                        level.oin.data.blind(lo, hi, skip, out);
                        record(stats, blind_hi - blind_lo, 0);
                    }
                }
            }

            // ---- Oaft: runs f..=l; only the run at `l` may need the
            // `st <= q.end` test (Lemma 5/6), and only while `comp_last`.
            {
                let (i0, i1) = level.oaft.dir.entry_range(f, last, *oaft_hint);
                *oaft_hint = level.oaft.dir.up_of(i0);
                if i0 < i1 {
                    let mut blind_hi = i1;
                    let last_is_l = level.oaft.dir.offset_of(i1 - 1) == last;
                    if last_is_l && flags.last {
                        let (lo, hi) = level.oaft.dir.data_range(i1 - 1, i1);
                        let cmps = level.oaft.data.st_prefix(lo, hi, q.end, skip, out);
                        record(stats, 1, cmps);
                        if f == last {
                            cmp_at_first |= cmps > 0;
                        } else {
                            cmp_at_last |= cmps > 0;
                        }
                        blind_hi = i1 - 1;
                    }
                    if i0 < blind_hi {
                        let (lo, hi) = level.oaft.dir.data_range(i0, blind_hi);
                        level.oaft.data.blind(lo, hi, skip, out);
                        record(stats, blind_hi - i0, 0);
                    }
                }
            }

            // ---- Rin: only the first partition's run; `end >= q.st`
            // while `comp_first`, blind afterwards.
            if let Some((lo, hi)) = level.rin.dir.run_of(f) {
                if flags.first {
                    let cmps = level.rin.data.end_suffix(lo, hi, q.st, skip, out);
                    record(stats, 1, cmps);
                    cmp_at_first |= cmps > 0;
                } else {
                    level.rin.data.blind(lo, hi, skip, out);
                    record(stats, 1, 0);
                }
            }

            // ---- Raft: only the first partition's run; never compared.
            if let Some((lo, hi)) = level.raft.dir.run_of(f) {
                emit_ids(&level.raft.data[lo..hi], skip, out);
                record(stats, 1, 0);
            }

            if let Some(st) = stats.as_deref_mut() {
                st.partitions_compared += if f == last {
                    usize::from(cmp_at_first || cmp_at_last)
                } else {
                    usize::from(cmp_at_first) + usize::from(cmp_at_last)
                };
            }
            flags.update(f, last);
        }
    }

    /// Inserts an interval by splicing the merged tables. Correct but
    /// `O(level size)` per affected level — prefer [`crate::HybridHint`]
    /// for update-heavy workloads (§4.4).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the fixed index domain.
    pub fn insert(&mut self, s: Interval) {
        assert!(
            s.st >= self.domain.min() && s.end <= self.domain.max(),
            "interval outside index domain"
        );
        let (a, b) = self.domain.map_interval(&s);
        let m = self.domain.m();
        let levels = &mut self.levels;
        for_each_assignment(m, a, b, |asg| {
            let level = &mut levels[asg.level as usize];
            match asg.kind {
                SubKind::OriginalIn => {
                    let run = level.oin.dir.splice(asg.offset);
                    let hi = level.oin.dir.data_range(run.entry, run.entry + 1).1;
                    level.oin.data.insert_at(run.lo, hi, s);
                    level.oin.dir.shift_after(run.entry);
                }
                SubKind::OriginalAft => {
                    let run = level.oaft.dir.splice(asg.offset);
                    let hi = level.oaft.dir.data_range(run.entry, run.entry + 1).1;
                    level.oaft.data.insert_at(run.lo, hi, s);
                    level.oaft.dir.shift_after(run.entry);
                }
                SubKind::ReplicaIn => {
                    let run = level.rin.dir.splice(asg.offset);
                    let hi = level.rin.dir.data_range(run.entry, run.entry + 1).1;
                    level.rin.data.insert_at(run.lo, hi, s);
                    level.rin.dir.shift_after(run.entry);
                }
                SubKind::ReplicaAft => {
                    let run = level.raft.dir.splice(asg.offset);
                    level.raft.data.insert(run.lo, s.id);
                    level.raft.dir.shift_after(run.entry);
                }
            }
        });
        self.live += 1;
    }

    /// Logically deletes an interval via tombstones (§3.4/§4.4). The
    /// caller passes the endpoints the interval was inserted with.
    /// Returns true if at least one copy was found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let (a, b) = self.domain.map_interval(s);
        let m = self.domain.m();
        let mut found = false;
        let levels = &mut self.levels;
        for_each_assignment(m, a, b, |asg| {
            let level = &mut levels[asg.level as usize];
            let hit = match asg.kind {
                SubKind::OriginalIn => level
                    .oin
                    .dir
                    .run_of(asg.offset)
                    .is_some_and(|(lo, hi)| level.oin.data.tombstone_in(lo, hi, s.id)),
                SubKind::OriginalAft => level
                    .oaft
                    .dir
                    .run_of(asg.offset)
                    .is_some_and(|(lo, hi)| level.oaft.data.tombstone_in(lo, hi, s.id)),
                SubKind::ReplicaIn => level
                    .rin
                    .dir
                    .run_of(asg.offset)
                    .is_some_and(|(lo, hi)| level.rin.data.tombstone_in(lo, hi, s.id)),
                SubKind::ReplicaAft => level.raft.dir.run_of(asg.offset).is_some_and(|(lo, hi)| {
                    for slot in &mut level.raft.data[lo..hi] {
                        if *slot == s.id {
                            *slot = TOMBSTONE;
                            return true;
                        }
                    }
                    false
                }),
            };
            found |= hit;
        });
        if found {
            self.live -= 1;
            self.tombstones += 1;
        }
        found
    }

    /// Seals (compacts) the index in place. The merged tables are already
    /// the sealed columnar layout — one CSR arena per subdivision category
    /// and level — so sealing here means folding the update overlay back
    /// into pristine arenas: tombstones left by [`Hint::delete`] are
    /// dropped, capacity slack from spliced [`Hint::insert`]s is released,
    /// and the sparse directories and §4.2 inter-level links are rebuilt.
    /// Queries are unaffected semantically; scans stop paying the
    /// tombstone filter.
    pub fn seal(&mut self) {
        let opts = self.opts;
        let bufs: Vec<BuildLevel> = self
            .levels
            .iter()
            .map(|level| {
                let mut b = BuildLevel::default();
                for (off, lo, hi) in dir_runs(&level.oin.dir) {
                    for k in lo..hi {
                        match &level.oin.data {
                            OinData::Rows(rows) => {
                                if rows[k].id != TOMBSTONE {
                                    b.oin.push((off, rows[k]));
                                }
                            }
                            OinData::Cols { ids, st, end } => {
                                if ids[k] != TOMBSTONE {
                                    b.oin.push((
                                        off,
                                        Interval {
                                            id: ids[k],
                                            st: st[k],
                                            end: end[k],
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
                for (off, lo, hi) in dir_runs(&level.oaft.dir) {
                    for k in lo..hi {
                        match &level.oaft.data {
                            OaftData::Rows(rows) => {
                                if rows[k].0 != TOMBSTONE {
                                    b.oaft.push((off, rows[k].0, rows[k].1));
                                }
                            }
                            OaftData::Cols { ids, st } => {
                                if ids[k] != TOMBSTONE {
                                    b.oaft.push((off, ids[k], st[k]));
                                }
                            }
                        }
                    }
                }
                for (off, lo, hi) in dir_runs(&level.rin.dir) {
                    for k in lo..hi {
                        match &level.rin.data {
                            RinData::Rows(rows) => {
                                if rows[k].0 != TOMBSTONE {
                                    b.rin.push((off, rows[k].0, rows[k].1));
                                }
                            }
                            RinData::Cols { ids, end } => {
                                if ids[k] != TOMBSTONE {
                                    b.rin.push((off, ids[k], end[k]));
                                }
                            }
                        }
                    }
                }
                for (off, lo, hi) in dir_runs(&level.raft.dir) {
                    for k in lo..hi {
                        if level.raft.data[k] != TOMBSTONE {
                            b.raft.push((off, level.raft.data[k]));
                        }
                    }
                }
                b
            })
            .collect();
        let levels: Vec<Level> = bufs
            .into_iter()
            .enumerate()
            .map(|(l, b)| build_level(l, b, opts))
            .collect();
        self.levels = link_levels(levels);
        self.tombstones = 0;
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.oin.dir.size_bytes()
                    + l.oin.data.size_bytes()
                    + l.oaft.dir.size_bytes()
                    + l.oaft.data.size_bytes()
                    + l.rin.dir.size_bytes()
                    + l.rin.data.size_bytes()
                    + l.raft.dir.size_bytes()
                    + l.raft.data.len() * 8
            })
            .sum()
    }

    /// Total stored entries (for the replication factor `k`, Table 7).
    pub fn entries(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.oin.data.len() + l.oaft.data.len() + l.rin.data.len() + l.raft.data.len())
            .sum()
    }
}

#[inline]
fn record(stats: &mut Option<&mut QueryStats>, parts: usize, cmps: usize) {
    if let Some(s) = stats.as_deref_mut() {
        s.partitions_accessed += parts;
        s.comparisons += cmps;
    }
}

/// Iterates a directory's non-empty `(offset, lo, hi)` data runs (used by
/// the [`Hint::seal`] compaction).
fn dir_runs(dir: &Dir) -> Vec<(u64, usize, usize)> {
    match dir {
        Dir::Dense { begins } => begins
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] < w[1])
            .map(|(i, w)| (i as u64, w[0] as usize, w[1] as usize))
            .collect(),
        Dir::Sparse { offs, begins, .. } => offs
            .iter()
            .enumerate()
            .map(|(i, &o)| (o, begins[i] as usize, begins[i + 1] as usize))
            .collect(),
    }
}

/// Counts the assignments of `data` per (level, subdivision kind) and
/// allocates exactly-sized build buffers, so the placement pass performs
/// no reallocation.
fn presized_build_buffers(data: &[Interval], domain: &Domain) -> Vec<BuildLevel> {
    let m = domain.m();
    let mut counts = vec![[0usize; 4]; m as usize + 1];
    for s in data {
        let (a, b) = domain.map_interval(s);
        for_each_assignment(m, a, b, |asg| {
            counts[asg.level as usize][asg.kind.slot()] += 1;
        });
    }
    counts
        .into_iter()
        .map(|c| BuildLevel {
            oin: Vec::with_capacity(c[0]),
            oaft: Vec::with_capacity(c[1]),
            rin: Vec::with_capacity(c[2]),
            raft: Vec::with_capacity(c[3]),
        })
        .collect()
}

/// Sorts one level's build buffers and materializes its four merged
/// tables + directories (shared by the serial and parallel builders).
fn build_level(l: usize, mut b: BuildLevel, opts: HintOptions) -> Level {
    let slots = 1usize << l;
    b.oin.sort_unstable_by_key(|&(off, s)| (off, s.st));
    b.oaft.sort_unstable_by_key(|&(off, _, st)| (off, st));
    b.rin.sort_unstable_by_key(|&(off, _, end)| (off, end));
    b.raft.sort_unstable_by_key(|&(off, _)| off);
    Level {
        oin: Group {
            dir: build_dir(opts.sparse, slots, b.oin.iter().map(|&(o, _)| o)),
            data: if opts.columnar {
                OinData::Cols {
                    ids: b.oin.iter().map(|&(_, s)| s.id).collect(),
                    st: b.oin.iter().map(|&(_, s)| s.st).collect(),
                    end: b.oin.iter().map(|&(_, s)| s.end).collect(),
                }
            } else {
                OinData::Rows(b.oin.iter().map(|&(_, s)| s).collect())
            },
        },
        oaft: Group {
            dir: build_dir(opts.sparse, slots, b.oaft.iter().map(|&(o, _, _)| o)),
            data: if opts.columnar {
                OaftData::Cols {
                    ids: b.oaft.iter().map(|&(_, id, _)| id).collect(),
                    st: b.oaft.iter().map(|&(_, _, st)| st).collect(),
                }
            } else {
                OaftData::Rows(b.oaft.iter().map(|&(_, id, st)| (id, st)).collect())
            },
        },
        rin: Group {
            dir: build_dir(opts.sparse, slots, b.rin.iter().map(|&(o, _, _)| o)),
            data: if opts.columnar {
                RinData::Cols {
                    ids: b.rin.iter().map(|&(_, id, _)| id).collect(),
                    end: b.rin.iter().map(|&(_, _, end)| end).collect(),
                }
            } else {
                RinData::Rows(b.rin.iter().map(|&(_, id, end)| (id, end)).collect())
            },
        },
        raft: Group {
            dir: build_dir(opts.sparse, slots, b.raft.iter().map(|&(o, _)| o)),
            data: b.raft.iter().map(|&(_, id)| id).collect(),
        },
    }
}

/// Installs the §4.2 inter-level links: each level's O-table directories
/// point at the first candidate entry one level up, replacing the
/// per-level binary search during queries.
fn link_levels(mut levels: Vec<Level>) -> Vec<Level> {
    for l in (1..levels.len()).rev() {
        let (above, below) = levels.split_at_mut(l);
        below[0].oin.dir.link_to(&above[l - 1].oin.dir);
        below[0].oaft.dir.link_to(&above[l - 1].oaft.dir);
    }
    levels
}

/// Builds a directory over partition offsets sorted ascending (repeats
/// mark multiple entries in the same partition).
fn build_dir(sparse: bool, slots: usize, offsets: impl Iterator<Item = u64>) -> Dir {
    if sparse {
        let mut offs = Vec::new();
        let mut begins = Vec::new();
        let mut n = 0u32;
        for off in offsets {
            if offs.last() != Some(&off) {
                offs.push(off);
                begins.push(n);
            }
            n += 1;
        }
        begins.push(n); // sentinel: one past the last data entry
        let up = vec![u32::MAX; offs.len()];
        Dir::Sparse { offs, begins, up }
    } else {
        let mut begins = vec![0u32; slots + 1];
        for off in offsets {
            begins[off as usize + 1] += 1;
        }
        for i in 1..begins.len() {
            begins[i] += begins[i - 1];
        }
        Dir::Dense { begins }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    fn all_options() -> [HintOptions; 4] {
        [
            HintOptions {
                sparse: false,
                columnar: false,
            },
            HintOptions {
                sparse: true,
                columnar: false,
            },
            HintOptions {
                sparse: false,
                columnar: true,
            },
            HintOptions {
                sparse: true,
                columnar: true,
            },
        ]
    }

    #[test]
    fn all_options_match_oracle() {
        let data = lcg_data(400, 100_000, 9_000, 101);
        let oracle = ScanOracle::new(&data);
        for opts in all_options() {
            for m in [4, 8, 12] {
                let idx = Hint::build_with_options(&data, m, opts);
                let mut x = 5u64;
                for _ in 0..300 {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    let st = (x >> 17) % 100_000;
                    let end = (st + (x >> 9) % 12_000).min(99_999);
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{opts:?} m={m} {q:?}");
                }
            }
        }
    }

    #[test]
    fn exhaustive_small_domain() {
        let data = lcg_data(120, 64, 20, 9);
        let oracle = ScanOracle::new(&data);
        for opts in all_options() {
            let idx = Hint::build_with_options(&data, 6, opts);
            for st in 0..64u64 {
                for end in st..64 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{opts:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn stats_partitions_compared_is_small() {
        let data = lcg_data(5000, 1 << 20, 1 << 14, 3);
        let idx = Hint::build(&data, 12);
        let mut x = 7u64;
        let mut total = 0.0;
        let n = 500;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let st = (x >> 20) % (1 << 20);
            let end = (st + (1 << 14)).min((1 << 20) - 1);
            let mut out = Vec::new();
            let s = idx.query_stats(RangeQuery::new(st, end), &mut out);
            total += s.partitions_compared as f64;
        }
        let avg = total / n as f64;
        // Lemma 4: expected number of compared partitions is <= 4.
        assert!(avg <= 4.5, "avg partitions compared = {avg}");
    }

    #[test]
    fn updates_match_oracle() {
        let data = lcg_data(150, 2048, 100, 29);
        for opts in all_options() {
            let mut idx =
                Hint::build_with_domain(&data, crate::domain::Domain::new(0, 2047, 8), opts);
            let mut oracle = ScanOracle::new(&data);
            for i in 0..60u64 {
                let st = (i * 31) % 2000;
                let s = Interval::new(5000 + i, st, st + (i % 40));
                idx.insert(s);
                oracle.insert(s);
            }
            for s in data.iter().filter(|s| s.id % 4 == 0) {
                assert_eq!(idx.delete(s), oracle.delete(s.id), "{opts:?} {s:?}");
            }
            for st in (0..2048u64).step_by(41) {
                let q = RangeQuery::new(st, (st + 90).min(2047));
                let mut got = Vec::new();
                idx.query(q, &mut got);
                assert_eq!(sorted(got), oracle.query_sorted(q), "{opts:?} {q:?}");
            }
        }
    }

    #[test]
    fn sparse_shrinks_directories_under_sparsity() {
        let data: Vec<Interval> = (0..100)
            .map(|i| Interval::new(i, i * 10_000, i * 10_000 + 5))
            .collect();
        let dense = Hint::build_with_options(
            &data,
            16,
            HintOptions {
                sparse: false,
                columnar: true,
            },
        );
        let sparse = Hint::build_with_options(
            &data,
            16,
            HintOptions {
                sparse: true,
                columnar: true,
            },
        );
        assert!(sparse.size_bytes() < dense.size_bytes() / 4);
    }

    #[test]
    fn parallel_build_equals_serial_build() {
        let data = lcg_data(4000, 1 << 18, 20_000, 77);
        let serial = Hint::build(&data, 12);
        for threads in [1, 2, 7] {
            let par = Hint::build_parallel(&data, 12, HintOptions::default(), threads);
            assert_eq!(par.len(), serial.len());
            assert_eq!(par.entries(), serial.entries());
            assert_eq!(par.size_bytes(), serial.size_bytes());
            let mut x = 3u64;
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(5);
                let st = (x >> 15) % (1 << 18);
                let end = (st + (x >> 40) % 30_000).min((1 << 18) - 1);
                let q = RangeQuery::new(st, end);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                serial.query(q, &mut a);
                par.query(q, &mut b);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "threads={threads} {q:?}");
            }
        }
    }

    #[test]
    fn seal_compacts_tombstones_and_preserves_results() {
        let data = lcg_data(400, 1 << 14, 2000, 13);
        for opts in all_options() {
            let mut idx = Hint::build_with_domain(
                &data,
                crate::domain::Domain::new(0, (1 << 14) - 1, 9),
                opts,
            );
            let mut oracle = ScanOracle::new(&data);
            for i in 0..50u64 {
                let s = Interval::new(7000 + i, i * 23, i * 23 + 40);
                idx.insert(s);
                oracle.insert(s);
            }
            for s in data.iter().filter(|s| s.id % 5 == 0) {
                assert_eq!(idx.delete(s), oracle.delete(s.id), "{opts:?} {s:?}");
            }
            let before = idx.entries();
            idx.seal();
            assert!(idx.entries() < before, "{opts:?}: tombstones not dropped");
            for st in (0..(1u64 << 14)).step_by(223) {
                let q = RangeQuery::new(st, (st + 900).min((1 << 14) - 1));
                let mut got = Vec::new();
                idx.query(q, &mut got);
                assert_eq!(sorted(got), oracle.query_sorted(q), "{opts:?} {q:?}");
            }
        }
    }

    #[test]
    fn query_batch_bit_identical_to_solo() {
        let data = lcg_data(600, 1 << 16, 8000, 91);
        for opts in all_options() {
            let idx = Hint::build_with_options(&data, 11, opts);
            let queries: Vec<RangeQuery> = (0..60u64)
                .map(|i| {
                    let st = (i * 1013) % (1 << 16);
                    RangeQuery::new(st, (st + 5000).min((1 << 16) - 1))
                })
                .collect();
            let solo: Vec<Vec<IntervalId>> = queries
                .iter()
                .map(|&q| {
                    let mut v = Vec::new();
                    idx.query_sink(q, &mut v);
                    v
                })
                .collect();
            let mut bufs: Vec<Vec<IntervalId>> = vec![Vec::new(); queries.len()];
            let mut sinks: Vec<&mut dyn QuerySink> =
                bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
            idx.query_batch(&queries, &mut sinks);
            assert_eq!(solo, bufs, "{opts:?}: emission order must match");
        }
    }

    #[test]
    fn no_duplicates() {
        let data = lcg_data(800, 1 << 16, 9000, 55);
        let idx = Hint::build(&data, 11);
        for st in (0..(1u64 << 16)).step_by(997) {
            let q = RangeQuery::new(st, (st + 20_000).min((1 << 16) - 1));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }
}
