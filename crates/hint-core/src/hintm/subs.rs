//! HINT^m with the §4.1 partition subdivisions.
//!
//! Every partition `P_{l,i}` is divided into four groups (Table 2):
//! `P^{Oin}` (originals ending inside), `P^{Oaft}` (originals ending after),
//! `P^{Rin}` (replicas ending inside), `P^{Raft}` (replicas ending after).
//! Lemmas 5 and 6 then reduce the overlap test to **at most one comparison
//! per interval**, and the `Raft` group never needs any comparison.
//!
//! Two further §4.1 options are configurable to reproduce Figure 11:
//!
//! * **sorting** (§4.1.1, [`SubsConfig::sort`]): `Oin` and `Oaft` are kept
//!   sorted by start point and `Rin` by end point, turning comparison scans
//!   into binary-searched prefix/suffix runs;
//! * **storage optimization** (§4.1.2, [`SubsConfig::sopt`]): each group
//!   stores only the fields that can ever be compared (Table 3):
//!   `Oin: (id, st, end)`, `Oaft: (id, st)`, `Rin: (id, end)`, `Raft: id`.
//!
//! With `sopt` enabled and `sort` disabled this is the paper's
//! *update-friendly* HINT^m used as the delta index of the hybrid setting
//! (§4.4) and in the Table 10 update experiments.

use crate::assign::{for_each_assignment, SubKind};
use crate::domain::Domain;
use crate::hintm::sealed::{SealedBuilder, SealedStore};
use crate::hintm::{CompFlags, PRESIZE_MAX_M};
use crate::interval::{Interval, IntervalId, RangeQuery, Time, TOMBSTONE};
use crate::scan;
use crate::sink::QuerySink;

/// Configuration of the §4.1 options (Figure 11's ablation axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubsConfig {
    /// Keep subdivisions sorted (§4.1.1).
    pub sort: bool,
    /// Store only the necessary endpoint fields per subdivision (§4.1.2).
    pub sopt: bool,
}

impl SubsConfig {
    /// All §4.1 optimizations on (the `subs+sort+sopt` line of Figure 11).
    pub fn full() -> Self {
        Self {
            sort: true,
            sopt: true,
        }
    }

    /// The update-friendly configuration (`subs+sopt`, §4.4 delta index).
    pub fn update_friendly() -> Self {
        Self {
            sort: false,
            sopt: true,
        }
    }
}

impl Default for SubsConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// `Oaft` entry under the storage optimization: end point never needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IdSt {
    id: IntervalId,
    st: Time,
}

/// `Rin` entry under the storage optimization: start point never needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IdEnd {
    id: IntervalId,
    end: Time,
}

#[derive(Debug, Clone, Default)]
struct PartFull {
    oin: Vec<Interval>,
    oaft: Vec<Interval>,
    rin: Vec<Interval>,
    raft: Vec<Interval>,
}

#[derive(Debug, Clone, Default)]
struct PartOpt {
    oin: Vec<Interval>,
    oaft: Vec<IdSt>,
    rin: Vec<IdEnd>,
    raft: Vec<IntervalId>,
}

#[derive(Debug, Clone)]
enum Storage {
    Full(Vec<Vec<PartFull>>),
    Opt(Vec<Vec<PartOpt>>),
}

/// HINT^m with subdivisions (§4.1), configurable sorting and storage
/// optimization.
///
/// Calling [`HintMSubs::seal`] freezes the current contents into the
/// sealed columnar (CSR) engine: contiguous per-category arenas whose
/// comparison-free runs are bulk-emitted and whose comparison scans walk
/// flat endpoint columns. After sealing, the per-partition storage acts
/// as a small unsealed *overlay* for new inserts; the next `seal()`
/// merges it back in (dropping tombstones). Sealed runs are always kept
/// sorted, independent of [`SubsConfig::sort`].
#[derive(Debug, Clone)]
pub struct HintMSubs {
    domain: Domain,
    cfg: SubsConfig,
    /// Unsealed per-partition storage; after a `seal()` this holds only
    /// the overlay of post-seal updates.
    storage: Storage,
    /// Frozen CSR arenas, present once `seal()` has been called.
    sealed: Option<SealedStore>,
    /// Raw entry count currently in `storage` (assignments, not
    /// intervals); 0 means queries can skip the overlay walk entirely.
    overlay_entries: usize,
    live: usize,
    tombstones: usize,
}

impl HintMSubs {
    /// Builds the index with `m + 1` levels over `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty or the clamped `m` exceeds 26.
    pub fn build(data: &[Interval], m: u32, cfg: SubsConfig) -> Self {
        let domain = Domain::from_data(data, m);
        Self::build_with_domain(data, domain, cfg)
    }

    /// Builds over an explicit domain (for pre-sized update workloads).
    pub fn build_with_domain(data: &[Interval], domain: Domain, cfg: SubsConfig) -> Self {
        let m = domain.m();
        assert!(
            m <= 26,
            "dense per-partition layout limited to m <= 26 (got {m})"
        );
        let mut idx = Self {
            domain,
            cfg,
            storage: Self::empty_storage(cfg, m),
            sealed: None,
            overlay_entries: 0,
            live: 0,
            tombstones: 0,
        };
        idx.reserve_for(data);
        for s in data {
            idx.place(*s);
        }
        idx.live = data.len();
        if cfg.sort {
            idx.sort_all();
        }
        idx.shrink();
        idx
    }

    /// Fresh (empty) per-partition storage for the configured layout.
    fn empty_storage(cfg: SubsConfig, m: u32) -> Storage {
        if cfg.sopt {
            Storage::Opt(
                (0..=m)
                    .map(|l| vec![PartOpt::default(); 1usize << l])
                    .collect(),
            )
        } else {
            Storage::Full(
                (0..=m)
                    .map(|l| vec![PartFull::default(); 1usize << l])
                    .collect(),
            )
        }
    }

    /// Bulk-construction pre-sizing: counts the assignments of `data` per
    /// partition and subdivision, then reserves every `Vec` exactly, so
    /// the placement pass performs no reallocation. Skipped above
    /// [`PRESIZE_MAX_M`], where the counter tables would be too large.
    fn reserve_for(&mut self, data: &[Interval]) {
        let m = self.domain.m();
        if data.is_empty() || m > PRESIZE_MAX_M {
            return;
        }
        // counts[level][offset * 4 + kind]
        let mut counts: Vec<Vec<u32>> = (0..=m).map(|l| vec![0u32; 4usize << l]).collect();
        for s in data {
            let (a, b) = self.domain.map_interval(s);
            for_each_assignment(m, a, b, |asg| {
                counts[asg.level as usize][asg.offset as usize * 4 + asg.kind.slot()] += 1;
            });
        }
        match &mut self.storage {
            Storage::Full(levels) => {
                for (lc, parts) in counts.iter().zip(levels.iter_mut()) {
                    for (off, part) in parts.iter_mut().enumerate() {
                        part.oin.reserve_exact(lc[off * 4] as usize);
                        part.oaft.reserve_exact(lc[off * 4 + 1] as usize);
                        part.rin.reserve_exact(lc[off * 4 + 2] as usize);
                        part.raft.reserve_exact(lc[off * 4 + 3] as usize);
                    }
                }
            }
            Storage::Opt(levels) => {
                for (lc, parts) in counts.iter().zip(levels.iter_mut()) {
                    for (off, part) in parts.iter_mut().enumerate() {
                        part.oin.reserve_exact(lc[off * 4] as usize);
                        part.oaft.reserve_exact(lc[off * 4 + 1] as usize);
                        part.rin.reserve_exact(lc[off * 4 + 2] as usize);
                        part.raft.reserve_exact(lc[off * 4 + 3] as usize);
                    }
                }
            }
        }
    }

    /// Releases growth slack left by `push`-based construction (a no-op
    /// when [`Self::reserve_for`] pre-sized exactly).
    fn shrink(&mut self) {
        match &mut self.storage {
            Storage::Full(levels) => {
                for part in levels.iter_mut().flatten() {
                    part.oin.shrink_to_fit();
                    part.oaft.shrink_to_fit();
                    part.rin.shrink_to_fit();
                    part.raft.shrink_to_fit();
                }
            }
            Storage::Opt(levels) => {
                for part in levels.iter_mut().flatten() {
                    part.oin.shrink_to_fit();
                    part.oaft.shrink_to_fit();
                    part.rin.shrink_to_fit();
                    part.raft.shrink_to_fit();
                }
            }
        }
    }

    /// Routes one interval to its partitions (no sorting).
    fn place(&mut self, s: Interval) {
        let (a, b) = self.domain.map_interval(&s);
        let m = self.domain.m();
        let mut added = 0usize;
        match &mut self.storage {
            Storage::Full(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    added += 1;
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    match asg.kind {
                        SubKind::OriginalIn => part.oin.push(s),
                        SubKind::OriginalAft => part.oaft.push(s),
                        SubKind::ReplicaIn => part.rin.push(s),
                        SubKind::ReplicaAft => part.raft.push(s),
                    }
                });
            }
            Storage::Opt(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    added += 1;
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    match asg.kind {
                        SubKind::OriginalIn => part.oin.push(s),
                        SubKind::OriginalAft => part.oaft.push(IdSt { id: s.id, st: s.st }),
                        SubKind::ReplicaIn => part.rin.push(IdEnd {
                            id: s.id,
                            end: s.end,
                        }),
                        SubKind::ReplicaAft => part.raft.push(s.id),
                    }
                });
            }
        }
        self.overlay_entries += added;
    }

    fn sort_all(&mut self) {
        match &mut self.storage {
            Storage::Full(levels) => {
                for part in levels.iter_mut().flatten() {
                    part.oin.sort_unstable_by_key(|s| s.st);
                    part.oaft.sort_unstable_by_key(|s| s.st);
                    part.rin.sort_unstable_by_key(|s| s.end);
                }
            }
            Storage::Opt(levels) => {
                for part in levels.iter_mut().flatten() {
                    part.oin.sort_unstable_by_key(|s| s.st);
                    part.oaft.sort_unstable_by_key(|s| s.st);
                    part.rin.sort_unstable_by_key(|s| s.end);
                }
            }
        }
    }

    /// The index domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> SubsConfig {
        self.cfg
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Evaluates a range query (Algorithm 3 + Lemmas 5/6), pushing result
    /// ids into `out`.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Evaluates a range query into an arbitrary sink; the partition walk
    /// stops once the sink is saturated. When the index is sealed, the
    /// CSR arenas are walked first and the (possibly empty) unsealed
    /// overlay second.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        if !self.domain.intersects(&q) {
            return;
        }
        if let Some(sealed) = &self.sealed {
            sealed.query_sink(&self.domain, q, self.tombstones > 0, sink);
            if self.overlay_entries == 0 || sink.is_saturated() {
                return;
            }
        }
        match &self.storage {
            Storage::Full(levels) => self.run(levels, q, sink, FullView),
            Storage::Opt(levels) => self.run(levels, q, sink, OptView),
        }
    }

    /// Evaluates a batch of queries, one sink per query. On a fully
    /// sealed index (no overlay) the batch shares one arena walk per
    /// level — queries are sorted by first relevant partition so the
    /// offset tables and data columns stay hot in cache; otherwise it
    /// falls back to independent [`Self::query_sink`] calls. Either way
    /// each sink receives exactly what a solo `query_sink` would emit.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        self.query_batch_sinks(queries, sinks, false)
    }

    /// Statically-dispatched spelling of [`Self::query_batch`]: the sink
    /// type is a monomorphization parameter, so the sealed shared walk —
    /// regime dispatch, saturation polls, emissions, the zero-copy
    /// `wants_arenas` check — compiles with no per-result vtable call.
    /// `presorted` declares the caller already ordered the batch by query
    /// start (the executor's clustering pass), skipping the sealed walk's
    /// own locality sort; it never affects results.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    pub fn query_batch_sinks<S: QuerySink + ?Sized>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [&mut S],
        presorted: bool,
    ) {
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        match &self.sealed {
            Some(sealed) if self.overlay_entries == 0 => {
                sealed.query_batch(&self.domain, queries, self.tombstones > 0, sinks, presorted)
            }
            _ => {
                for (q, sink) in queries.iter().zip(sinks.iter_mut()) {
                    self.query_sink(*q, &mut **sink);
                }
            }
        }
    }

    /// Freezes the index into the sealed columnar (CSR) engine: current
    /// sealed arenas (if any) and the unsealed per-partition storage are
    /// merged into fresh contiguous per-category arenas, dropping all
    /// tombstones, and the per-partition storage is reset to an empty
    /// overlay for subsequent updates. Queries over sealed storage
    /// bulk-emit comparison-free runs and binary-search sorted flat
    /// columns regardless of [`SubsConfig::sort`].
    pub fn seal(&mut self) {
        if self.sealed.is_some() && self.overlay_entries == 0 && self.tombstones == 0 {
            // idempotent fast path: no overlay writes and no tombstones
            // since the last seal, so the arenas are already canonical —
            // resealing a clean index is free (this is what makes
            // resealing a sharded index after localized writes cost
            // O(dirty shard) instead of O(n))
            return;
        }
        let m = self.domain.m();
        let mut b = SealedBuilder::new(m);
        if let Some(sealed) = &self.sealed {
            sealed.drain_into(&mut b);
        }
        match &self.storage {
            Storage::Full(levels) => {
                for (l, parts) in levels.iter().enumerate() {
                    let l = l as u32;
                    for (off, p) in parts.iter().enumerate() {
                        let off = off as u64;
                        for e in &p.oin {
                            b.push_oin(l, off, e.id, e.st, e.end);
                        }
                        for e in &p.oaft {
                            b.push_oaft(l, off, e.id, e.st);
                        }
                        for e in &p.rin {
                            b.push_rin(l, off, e.id, e.end);
                        }
                        for e in &p.raft {
                            b.push_raft(l, off, e.id);
                        }
                    }
                }
            }
            Storage::Opt(levels) => {
                for (l, parts) in levels.iter().enumerate() {
                    let l = l as u32;
                    for (off, p) in parts.iter().enumerate() {
                        let off = off as u64;
                        for e in &p.oin {
                            b.push_oin(l, off, e.id, e.st, e.end);
                        }
                        for e in &p.oaft {
                            b.push_oaft(l, off, e.id, e.st);
                        }
                        for e in &p.rin {
                            b.push_rin(l, off, e.id, e.end);
                        }
                        for &id in &p.raft {
                            b.push_raft(l, off, id);
                        }
                    }
                }
            }
        }
        self.sealed = Some(b.finish());
        self.storage = Self::empty_storage(self.cfg, m);
        self.overlay_entries = 0;
        self.tombstones = 0;
    }

    /// True once [`Self::seal`] has been called.
    pub fn is_sealed(&self) -> bool {
        self.sealed.is_some()
    }

    /// Raw entry count in the unsealed overlay (0 on a freshly sealed
    /// index).
    pub fn overlay_entries(&self) -> usize {
        self.overlay_entries
    }

    /// The frozen CSR arenas, if sealed — the snapshot writer reads the
    /// raw columns through this.
    pub(crate) fn sealed_store(&self) -> Option<&SealedStore> {
        self.sealed.as_ref()
    }

    /// Number of logically deleted entries still buried in the sealed
    /// arenas (0 on a freshly sealed index). The snapshot writer refuses
    /// anything nonzero: snapshots capture only the clean post-seal
    /// state.
    pub(crate) fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Reconstructs an index directly from restored sealed arenas (the
    /// snapshot restore path): empty overlay, no tombstones, live count
    /// recomputed from the arenas themselves. The store must have been
    /// validated (`SealedStore::from_columns`) and must carry exactly
    /// one `Original*` assignment per live interval — true of every
    /// freshly sealed index, which is the only state snapshots capture.
    pub(crate) fn from_sealed(domain: Domain, cfg: SubsConfig, sealed: SealedStore) -> Self {
        let m = domain.m();
        debug_assert_eq!(m, sealed.m(), "sealed store depth mismatch");
        // every live interval contributes exactly one Oin or Oaft entry
        let live = (0..=m)
            .map(|l| {
                sealed.category_columns(l, SubKind::OriginalIn).ids.len()
                    + sealed.category_columns(l, SubKind::OriginalAft).ids.len()
            })
            .sum();
        Self {
            domain,
            cfg,
            storage: Self::empty_storage(cfg, m),
            sealed: Some(sealed),
            overlay_entries: 0,
            live,
            tombstones: 0,
        }
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    /// Reconstructs the live interval set `(id, st, end)` from the index's
    /// own storage (sealed arenas plus unsealed overlay), in no particular
    /// order — the substrate for [`Self::rebuild_with_m`] and for
    /// snapshotting.
    ///
    /// Every interval has exactly one `Original*` assignment (carrying its
    /// start) and exactly one *ends-inside* assignment (carrying its end);
    /// an `Oin` original carries both, while an `Oaft` original's end is
    /// recovered from its unique `Rin` replica. All assignments of one
    /// interval live in the same store generation (inserts go wholly to
    /// the overlay, seals move them wholly into the arenas), so the join
    /// never straddles the two.
    pub fn intervals(&self) -> Vec<Interval> {
        let mut out = Vec::with_capacity(self.live);
        let mut await_end: Vec<(IntervalId, Time)> = Vec::new();
        let mut end_of: Vec<(IntervalId, Time)> = Vec::new();
        if let Some(sealed) = &self.sealed {
            sealed.collect_live(&mut out, &mut await_end, &mut end_of);
        }
        match &self.storage {
            Storage::Full(levels) => {
                // the full layout stores complete intervals everywhere:
                // the originals alone are the live set
                for p in levels.iter().flatten() {
                    for e in p.oin.iter().chain(&p.oaft) {
                        if e.id != TOMBSTONE {
                            out.push(*e);
                        }
                    }
                }
            }
            Storage::Opt(levels) => {
                for p in levels.iter().flatten() {
                    for e in &p.oin {
                        if e.id != TOMBSTONE {
                            out.push(*e);
                        }
                    }
                    for e in &p.oaft {
                        if e.id != TOMBSTONE {
                            await_end.push((e.id, e.st));
                        }
                    }
                    for e in &p.rin {
                        if e.id != TOMBSTONE {
                            end_of.push((e.id, e.end));
                        }
                    }
                }
            }
        }
        if !await_end.is_empty() {
            let ends: std::collections::HashMap<IntervalId, Time> = end_of.into_iter().collect();
            for (id, st) in await_end {
                let end = ends
                    .get(&id)
                    .copied()
                    .expect("Oaft original without its Rin ends-inside twin");
                out.push(Interval { id, st, end });
            }
        }
        debug_assert_eq!(
            out.len(),
            self.live,
            "reconstructed set drifted from live count"
        );
        out
    }

    /// Rebuilds the index at hierarchy depth `m` (same domain bounds,
    /// same configuration, same live contents), returning it **sealed** —
    /// the serve-time re-tuning primitive: a mis-tuned shard is replaced
    /// wholesale between seals, and queries against the rebuilt index are
    /// bit-identical to the original (both are exact; only traversal cost
    /// changes).
    ///
    /// # Panics
    /// Panics if the clamped `m` exceeds 26 (the per-partition layout
    /// bound [`Self::build_with_domain`] enforces).
    pub fn rebuild_with_m(&self, m: u32) -> Self {
        let data = self.intervals();
        let domain = Domain::new(self.domain.min(), self.domain.max(), m);
        let mut rebuilt = Self::build_with_domain(&data, domain, self.cfg);
        rebuilt.seal();
        rebuilt
    }

    /// Level/partition walk shared by both storage layouts.
    fn run<P, V: PartView<P>, S: QuerySink + ?Sized>(
        &self,
        levels: &[Vec<P>],
        q: RangeQuery,
        sink: &mut S,
        view: V,
    ) {
        let (qst, qend) = self.domain.map_query(&q);
        let m = self.domain.m();
        let sort = self.cfg.sort;
        let skip = self.tombstones > 0;
        let mut flags = CompFlags::new();
        for l in (0..=m).rev() {
            if sink.is_saturated() {
                return;
            }
            let f = self.domain.prefix(l, qst);
            let last = self.domain.prefix(l, qend);
            if f == last {
                view.single(&levels[l as usize][f as usize], &q, flags, sort, skip, sink);
            } else {
                view.first(&levels[l as usize][f as usize], &q, flags, sort, skip, sink);
                let parts = &levels[l as usize];
                for off in f + 1..last {
                    if sink.is_saturated() {
                        return;
                    }
                    view.middle(&parts[off as usize], skip, sink);
                }
                view.last(&parts[last as usize], &q, flags, sort, skip, sink);
            }
            flags.update(f, last);
        }
    }

    /// Inserts an interval (Algorithm 1; sorted insertion when the index
    /// keeps subdivisions sorted).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the fixed index domain.
    pub fn insert(&mut self, s: Interval) {
        assert!(
            s.st >= self.domain.min() && s.end <= self.domain.max(),
            "interval outside index domain"
        );
        let (a, b) = self.domain.map_interval(&s);
        let m = self.domain.m();
        let sort = self.cfg.sort;
        let mut added = 0usize;
        match &mut self.storage {
            Storage::Full(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    added += 1;
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    match asg.kind {
                        SubKind::OriginalIn => insert_by(&mut part.oin, s, sort, |x| x.st),
                        SubKind::OriginalAft => insert_by(&mut part.oaft, s, sort, |x| x.st),
                        SubKind::ReplicaIn => insert_by(&mut part.rin, s, sort, |x| x.end),
                        SubKind::ReplicaAft => part.raft.push(s),
                    }
                });
            }
            Storage::Opt(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    added += 1;
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    match asg.kind {
                        SubKind::OriginalIn => insert_by(&mut part.oin, s, sort, |x| x.st),
                        SubKind::OriginalAft => {
                            insert_by(&mut part.oaft, IdSt { id: s.id, st: s.st }, sort, |x| x.st)
                        }
                        SubKind::ReplicaIn => insert_by(
                            &mut part.rin,
                            IdEnd {
                                id: s.id,
                                end: s.end,
                            },
                            sort,
                            |x| x.end,
                        ),
                        SubKind::ReplicaAft => part.raft.push(s.id),
                    }
                });
            }
        }
        self.overlay_entries += added;
        self.live += 1;
    }

    /// Logically deletes an interval via tombstones. The caller passes the
    /// endpoints the interval was inserted with. Returns true if found.
    ///
    /// Each assignment scans only the subdivision its kind implies, and
    /// when that group is kept sorted the scan is short-circuited to the
    /// equal-key run located by binary search on the endpoint the group
    /// is ordered by (the same assignment rule insertion uses). On a
    /// sealed index the overlay is probed first, then the CSR arenas.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let (a, b) = self.domain.map_interval(s);
        let m = self.domain.m();
        let sort = self.cfg.sort;
        let mut found = false;
        let sealed = &mut self.sealed;
        match &mut self.storage {
            Storage::Full(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    let hit = match asg.kind {
                        SubKind::OriginalIn => {
                            tomb(&mut part.oin, s.id, |x| &mut x.id, sort, s.st, |x| x.st)
                        }
                        SubKind::OriginalAft => {
                            tomb(&mut part.oaft, s.id, |x| &mut x.id, sort, s.st, |x| x.st)
                        }
                        SubKind::ReplicaIn => {
                            tomb(&mut part.rin, s.id, |x| &mut x.id, sort, s.end, |x| x.end)
                        }
                        SubKind::ReplicaAft => {
                            tomb(&mut part.raft, s.id, |x| &mut x.id, false, 0, |x| x.st)
                        }
                    };
                    let hit = hit
                        || sealed.as_mut().is_some_and(|sl| {
                            sl.tombstone(asg.level, asg.offset, asg.kind, s.id, s.st, s.end)
                        });
                    found |= hit;
                });
            }
            Storage::Opt(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    let hit = match asg.kind {
                        SubKind::OriginalIn => {
                            tomb(&mut part.oin, s.id, |x| &mut x.id, sort, s.st, |x| x.st)
                        }
                        SubKind::OriginalAft => {
                            tomb(&mut part.oaft, s.id, |x| &mut x.id, sort, s.st, |x| x.st)
                        }
                        SubKind::ReplicaIn => {
                            tomb(&mut part.rin, s.id, |x| &mut x.id, sort, s.end, |x| x.end)
                        }
                        SubKind::ReplicaAft => {
                            let mut hit = false;
                            for slot in part.raft.iter_mut() {
                                if *slot == s.id {
                                    *slot = TOMBSTONE;
                                    hit = true;
                                    break;
                                }
                            }
                            hit
                        }
                    };
                    let hit = hit
                        || sealed.as_mut().is_some_and(|sl| {
                            sl.tombstone(asg.level, asg.offset, asg.kind, s.id, s.st, s.end)
                        });
                    found |= hit;
                });
            }
        }
        if found {
            self.live -= 1;
            self.tombstones += 1;
        }
        found
    }

    /// Approximate heap footprint in bytes — the quantity Figure 11 plots.
    pub fn size_bytes(&self) -> usize {
        self.sealed.as_ref().map_or(0, |s| s.size_bytes()) + self.storage_bytes()
    }

    fn storage_bytes(&self) -> usize {
        match &self.storage {
            Storage::Full(levels) => {
                let mut total = 0;
                for parts in levels {
                    total += parts.len() * std::mem::size_of::<PartFull>();
                    for p in parts {
                        total += (p.oin.len() + p.oaft.len() + p.rin.len() + p.raft.len())
                            * std::mem::size_of::<Interval>();
                    }
                }
                total
            }
            Storage::Opt(levels) => {
                let mut total = 0;
                for parts in levels {
                    total += parts.len() * std::mem::size_of::<PartOpt>();
                    for p in parts {
                        total += p.oin.len() * std::mem::size_of::<Interval>()
                            + p.oaft.len() * std::mem::size_of::<IdSt>()
                            + p.rin.len() * std::mem::size_of::<IdEnd>()
                            + p.raft.len() * std::mem::size_of::<IntervalId>();
                    }
                }
                total
            }
        }
    }

    /// Total stored entries (for the replication factor `k`).
    pub fn entries(&self) -> usize {
        let sealed = self.sealed.as_ref().map_or(0, |s| s.entries());
        sealed
            + match &self.storage {
                Storage::Full(levels) => levels
                    .iter()
                    .flatten()
                    .map(|p| p.oin.len() + p.oaft.len() + p.rin.len() + p.raft.len())
                    .sum::<usize>(),
                Storage::Opt(levels) => levels
                    .iter()
                    .flatten()
                    .map(|p| p.oin.len() + p.oaft.len() + p.rin.len() + p.raft.len())
                    .sum::<usize>(),
            }
    }
}

fn insert_by<T: Copy, K: Fn(&T) -> Time>(v: &mut Vec<T>, x: T, sort: bool, key: K) {
    if sort {
        let k = key(&x);
        let pos = v.partition_point(|e| key(e) <= k);
        v.insert(pos, x);
    } else {
        v.push(x);
    }
}

/// Tombstones the first entry with `id`. When the run is `sorted` by the
/// endpoint `keyf` extracts, the scan is narrowed by binary search to the
/// entries whose key equals `key` (tombstoning preserves keys, so the
/// ordering invariant survives deletions).
fn tomb<T>(
    v: &mut [T],
    id: IntervalId,
    idf: impl Fn(&mut T) -> &mut IntervalId,
    sorted: bool,
    key: Time,
    keyf: impl Fn(&T) -> Time,
) -> bool {
    let (lo, hi) = if sorted {
        (
            v.partition_point(|e| keyf(e) < key),
            v.partition_point(|e| keyf(e) <= key),
        )
    } else {
        (0, v.len())
    };
    for slot in &mut v[lo..hi] {
        let slot_id = idf(slot);
        if *slot_id == id {
            *slot_id = TOMBSTONE;
            return true;
        }
    }
    false
}

/// Reporting logic per partition role, abstracted over the two storage
/// layouts. Methods are `#[inline]`-heavy; monomorphization gives each
/// layout/sink pair its own straight-line code with no dynamic dispatch.
/// The comparison regimes themselves live in [`crate::scan`], shared with
/// the other HINT variants.
trait PartView<P>: Copy {
    fn single<S: QuerySink + ?Sized>(
        &self,
        p: &P,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    );
    fn first<S: QuerySink + ?Sized>(
        &self,
        p: &P,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    );
    fn middle<S: QuerySink + ?Sized>(&self, p: &P, skip: bool, sink: &mut S);
    fn last<S: QuerySink + ?Sized>(
        &self,
        p: &P,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    );
}

#[derive(Clone, Copy)]
struct FullView;

impl PartView<PartFull> for FullView {
    #[inline]
    fn single<S: QuerySink + ?Sized>(
        &self,
        p: &PartFull,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        // Lemma 6, gated by the Lemma-2 flags.
        match (flags.first, flags.last) {
            (true, true) => {
                scan::emit_overlap(
                    &p.oin,
                    q.st,
                    q.end,
                    sort,
                    skip,
                    |e| e.st,
                    |e| e.end,
                    |e| e.id,
                    sink,
                );
                scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
            }
            (false, true) => {
                scan::emit_st_prefix(&p.oin, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_all(&p.rin, skip, |e| e.id, sink);
            }
            (true, false) => {
                scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
                scan::emit_end_suffix(&p.oin, q.st, false, skip, |e| e.end, |e| e.id, sink);
                scan::emit_all(&p.oaft, skip, |e| e.id, sink);
            }
            (false, false) => {
                scan::emit_all(&p.oin, skip, |e| e.id, sink);
                scan::emit_all(&p.oaft, skip, |e| e.id, sink);
                scan::emit_all(&p.rin, skip, |e| e.id, sink);
            }
        }
        scan::emit_all(&p.raft, skip, |e| e.id, sink);
    }

    #[inline]
    fn first<S: QuerySink + ?Sized>(
        &self,
        p: &PartFull,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        // Lemma 5: only the `in` subdivisions may need `s.end >= q.st`.
        if flags.first {
            scan::emit_end_suffix(&p.oin, q.st, false, skip, |e| e.end, |e| e.id, sink);
            scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
        } else {
            scan::emit_all(&p.oin, skip, |e| e.id, sink);
            scan::emit_all(&p.rin, skip, |e| e.id, sink);
        }
        scan::emit_all(&p.oaft, skip, |e| e.id, sink);
        scan::emit_all(&p.raft, skip, |e| e.id, sink);
    }

    #[inline]
    fn middle<S: QuerySink + ?Sized>(&self, p: &PartFull, skip: bool, sink: &mut S) {
        scan::emit_all(&p.oin, skip, |e| e.id, sink);
        scan::emit_all(&p.oaft, skip, |e| e.id, sink);
    }

    #[inline]
    fn last<S: QuerySink + ?Sized>(
        &self,
        p: &PartFull,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        if flags.last {
            scan::emit_st_prefix(&p.oin, q.end, sort, skip, |e| e.st, |e| e.id, sink);
            scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
        } else {
            scan::emit_all(&p.oin, skip, |e| e.id, sink);
            scan::emit_all(&p.oaft, skip, |e| e.id, sink);
        }
    }
}

#[derive(Clone, Copy)]
struct OptView;

impl PartView<PartOpt> for OptView {
    #[inline]
    fn single<S: QuerySink + ?Sized>(
        &self,
        p: &PartOpt,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        match (flags.first, flags.last) {
            (true, true) => {
                scan::emit_overlap(
                    &p.oin,
                    q.st,
                    q.end,
                    sort,
                    skip,
                    |e| e.st,
                    |e| e.end,
                    |e| e.id,
                    sink,
                );
                scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
            }
            (false, true) => {
                scan::emit_st_prefix(&p.oin, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_all(&p.rin, skip, |e| e.id, sink);
            }
            (true, false) => {
                scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
                scan::emit_end_suffix(&p.oin, q.st, false, skip, |e| e.end, |e| e.id, sink);
                scan::emit_all(&p.oaft, skip, |e| e.id, sink);
            }
            (false, false) => {
                scan::emit_all(&p.oin, skip, |e| e.id, sink);
                scan::emit_all(&p.oaft, skip, |e| e.id, sink);
                scan::emit_all(&p.rin, skip, |e| e.id, sink);
            }
        }
        scan::emit_ids(&p.raft, skip, sink);
    }

    #[inline]
    fn first<S: QuerySink + ?Sized>(
        &self,
        p: &PartOpt,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        if flags.first {
            scan::emit_end_suffix(&p.oin, q.st, false, skip, |e| e.end, |e| e.id, sink);
            scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
        } else {
            scan::emit_all(&p.oin, skip, |e| e.id, sink);
            scan::emit_all(&p.rin, skip, |e| e.id, sink);
        }
        scan::emit_all(&p.oaft, skip, |e| e.id, sink);
        scan::emit_ids(&p.raft, skip, sink);
    }

    #[inline]
    fn middle<S: QuerySink + ?Sized>(&self, p: &PartOpt, skip: bool, sink: &mut S) {
        scan::emit_all(&p.oin, skip, |e| e.id, sink);
        scan::emit_all(&p.oaft, skip, |e| e.id, sink);
    }

    #[inline]
    fn last<S: QuerySink + ?Sized>(
        &self,
        p: &PartOpt,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        if flags.last {
            scan::emit_st_prefix(&p.oin, q.end, sort, skip, |e| e.st, |e| e.id, sink);
            scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
        } else {
            scan::emit_all(&p.oin, skip, |e| e.id, sink);
            scan::emit_all(&p.oaft, skip, |e| e.id, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    fn all_configs() -> [SubsConfig; 4] {
        [
            SubsConfig {
                sort: false,
                sopt: false,
            },
            SubsConfig {
                sort: true,
                sopt: false,
            },
            SubsConfig {
                sort: false,
                sopt: true,
            },
            SubsConfig {
                sort: true,
                sopt: true,
            },
        ]
    }

    #[test]
    fn all_configs_match_oracle() {
        let data = lcg_data(400, 100_000, 9_000, 21);
        let oracle = ScanOracle::new(&data);
        for cfg in all_configs() {
            for m in [4, 8, 12] {
                let idx = HintMSubs::build(&data, m, cfg);
                let mut x = 5u64;
                for _ in 0..300 {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    let st = (x >> 17) % 100_000;
                    let end = (st + (x >> 9) % 12_000).min(99_999);
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{cfg:?} m={m} {q:?}");
                }
            }
        }
    }

    /// `intervals()` must reconstruct the exact live set — across every
    /// storage layout, sealed and unsealed, with post-seal overlay
    /// writes and tombstones in both generations.
    #[test]
    fn intervals_reconstructs_the_live_set() {
        let data = lcg_data(300, 50_000, 6_000, 33);
        for cfg in all_configs() {
            for m in [4, 9] {
                let mut idx = HintMSubs::build_with_domain(&data, Domain::new(0, 49_999, m), cfg);
                let mut want: Vec<Interval> = data.clone();
                let check = |idx: &HintMSubs, want: &[Interval], what: &str| {
                    let mut got = idx.intervals();
                    got.sort_unstable_by_key(|s| s.id);
                    let mut want = want.to_vec();
                    want.sort_unstable_by_key(|s| s.id);
                    assert_eq!(got, want, "{cfg:?} m={m}: {what}");
                };
                check(&idx, &want, "fresh build");
                // delete a few pre-seal (tombstones in unsealed storage)
                for victim in [7usize, 100, 250] {
                    let s = data[victim];
                    assert!(idx.delete(&s));
                    want.retain(|x| x.id != s.id);
                }
                check(&idx, &want, "unsealed with tombstones");
                idx.seal();
                check(&idx, &want, "sealed");
                // post-seal inserts land in the overlay; deletes
                // tombstone both the arenas and the overlay
                for i in 0..20u64 {
                    let s = Interval::new(10_000 + i, (i * 997) % 49_000, (i * 997) % 49_000 + 800);
                    idx.insert(s);
                    want.push(s);
                }
                let sealed_victim = data[42];
                assert!(idx.delete(&sealed_victim));
                want.retain(|x| x.id != sealed_victim.id);
                let overlay_victim = Interval::new(10_003, 3 * 997, 3 * 997 + 800);
                assert!(idx.delete(&overlay_victim));
                want.retain(|x| x.id != overlay_victim.id);
                check(&idx, &want, "sealed + overlay + mixed tombstones");
                idx.seal();
                check(&idx, &want, "resealed");
            }
        }
    }

    /// A rebuild at any `m'` answers every query identically and comes
    /// back sealed at the requested depth.
    #[test]
    fn rebuild_with_m_preserves_results_at_every_depth() {
        let data = lcg_data(350, 40_000, 5_000, 55);
        let oracle = ScanOracle::new(&data);
        let mut idx = HintMSubs::build(&data, 10, SubsConfig::full());
        idx.seal();
        idx.insert(Interval::new(900_000, 100, 9_000)); // overlay entry
        let mut oracle = {
            let mut o = oracle;
            o.insert(Interval::new(900_000, 100, 9_000));
            o
        };
        assert!(oracle.delete(13));
        assert!(idx.delete(&data[13]));
        for m_new in [1, 3, 6, 10, 14] {
            let rebuilt = idx.rebuild_with_m(m_new);
            assert!(rebuilt.is_sealed());
            assert_eq!(rebuilt.len(), idx.len());
            assert_eq!(rebuilt.domain().min(), idx.domain().min());
            assert_eq!(rebuilt.domain().max(), idx.domain().max());
            let mut x = 9u64;
            for _ in 0..200 {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let st = (x >> 17) % 40_000;
                let q = RangeQuery::new(st, (st + (x >> 9) % 8_000).min(39_999));
                let mut got = Vec::new();
                rebuilt.query(q, &mut got);
                assert_eq!(sorted(got), oracle.query_sorted(q), "m'={m_new} {q:?}");
            }
        }
    }

    #[test]
    fn exhaustive_small_domain() {
        let data = lcg_data(120, 64, 20, 9);
        let oracle = ScanOracle::new(&data);
        for cfg in all_configs() {
            let idx = HintMSubs::build(&data, 6, cfg);
            for st in 0..64u64 {
                for end in st..64 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{cfg:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn stabbing_matches_oracle() {
        let data = lcg_data(250, 4096, 300, 17);
        let oracle = ScanOracle::new(&data);
        let idx = HintMSubs::build(&data, 9, SubsConfig::full());
        for t in (0..4096).step_by(13) {
            let mut got = Vec::new();
            idx.stab(t, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(RangeQuery::stab(t)));
        }
    }

    #[test]
    fn sopt_shrinks_the_index() {
        let data = lcg_data(3000, 1 << 20, 1 << 16, 33);
        let full = HintMSubs::build(
            &data,
            10,
            SubsConfig {
                sort: true,
                sopt: false,
            },
        );
        let opt = HintMSubs::build(
            &data,
            10,
            SubsConfig {
                sort: true,
                sopt: true,
            },
        );
        assert!(
            opt.size_bytes() < full.size_bytes(),
            "sopt {} vs full {}",
            opt.size_bytes(),
            full.size_bytes()
        );
        assert_eq!(opt.entries(), full.entries());
    }

    #[test]
    fn updates_match_oracle() {
        let mut data = lcg_data(150, 2048, 100, 29);
        for cfg in all_configs() {
            let mut idx =
                HintMSubs::build_with_domain(&data, crate::domain::Domain::new(0, 2047, 8), cfg);
            let mut oracle = ScanOracle::new(&data);
            for i in 0..60u64 {
                let st = (i * 31) % 2000;
                let s = Interval::new(5000 + i, st, st + (i % 40));
                idx.insert(s);
                oracle.insert(s);
            }
            let snapshot: Vec<Interval> = data.to_vec();
            for s in snapshot.iter().filter(|s| s.id % 4 == 0) {
                assert_eq!(idx.delete(s), oracle.delete(s.id), "{cfg:?} {s:?}");
            }
            for st in (0..2048u64).step_by(41) {
                let q = RangeQuery::new(st, (st + 90).min(2047));
                let mut got = Vec::new();
                idx.query(q, &mut got);
                assert_eq!(sorted(got), oracle.query_sorted(q), "{cfg:?} {q:?}");
            }
        }
        data.truncate(data.len()); // silence unused-mut lint paranoia
    }

    #[test]
    fn sealed_matches_unsealed_and_oracle() {
        let data = lcg_data(400, 100_000, 9_000, 21);
        let oracle = ScanOracle::new(&data);
        for cfg in all_configs() {
            let unsealed = HintMSubs::build(&data, 10, cfg);
            let mut sealed = unsealed.clone();
            sealed.seal();
            assert!(sealed.is_sealed());
            assert_eq!(sealed.overlay_entries(), 0);
            assert_eq!(sealed.entries(), unsealed.entries());
            assert_eq!(sealed.len(), unsealed.len());
            let mut x = 5u64;
            for _ in 0..200 {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let st = (x >> 17) % 100_000;
                let end = (st + (x >> 9) % 12_000).min(99_999);
                let q = RangeQuery::new(st, end);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                unsealed.query(q, &mut a);
                sealed.query(q, &mut b);
                assert_eq!(sorted(a), oracle.query_sorted(q), "{cfg:?} unsealed {q:?}");
                assert_eq!(sorted(b), oracle.query_sorted(q), "{cfg:?} sealed {q:?}");
            }
        }
    }

    #[test]
    fn reseal_cycles_with_updates_match_oracle() {
        let data = lcg_data(150, 2048, 100, 29);
        let domain = crate::domain::Domain::new(0, 2047, 8);
        for cfg in all_configs() {
            let mut idx = HintMSubs::build_with_domain(&data, domain, cfg);
            let mut oracle = ScanOracle::new(&data);
            idx.seal();
            // mixed overlay: new inserts, deletes of sealed and overlay
            // records
            for i in 0..60u64 {
                let st = (i * 31) % 2000;
                let s = Interval::new(5000 + i, st, st + (i % 40));
                idx.insert(s);
                oracle.insert(s);
            }
            assert!(idx.overlay_entries() > 0);
            for s in data.iter().filter(|s| s.id % 4 == 0) {
                assert_eq!(idx.delete(s), oracle.delete(s.id), "{cfg:?} sealed del");
            }
            for i in (0..60u64).filter(|i| i % 3 == 0) {
                let st = (i * 31) % 2000;
                let s = Interval::new(5000 + i, st, st + (i % 40));
                assert_eq!(idx.delete(&s), oracle.delete(s.id), "{cfg:?} overlay del");
            }
            let check = |idx: &HintMSubs, oracle: &ScanOracle, tag: &str| {
                for st in (0..2048u64).step_by(41) {
                    let q = RangeQuery::new(st, (st + 90).min(2047));
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{cfg:?} {tag} {q:?}");
                }
            };
            check(&idx, &oracle, "before reseal");
            let live = idx.len();
            idx.seal();
            assert_eq!(idx.overlay_entries(), 0);
            assert_eq!(idx.len(), live);
            check(&idx, &oracle, "after reseal");
            // keep updating after the reseal
            for i in 0..20u64 {
                let s = Interval::new(9000 + i, i * 13, i * 13 + 7);
                idx.insert(s);
                oracle.insert(s);
            }
            check(&idx, &oracle, "post-reseal inserts");
        }
    }

    #[test]
    fn query_batch_bit_identical_to_solo() {
        let data = lcg_data(300, 1 << 14, 2000, 7);
        let mut idx = HintMSubs::build(&data, 9, SubsConfig::full());
        // pass 0: unsealed (fallback loop); pass 1: sealed (shared walk)
        for pass in 0..2 {
            let queries: Vec<RangeQuery> = (0..50u64)
                .map(|i| {
                    let st = (i * 317) % (1 << 14);
                    RangeQuery::new(st, (st + 1200).min((1 << 14) - 1))
                })
                .collect();
            let solo: Vec<Vec<IntervalId>> = queries
                .iter()
                .map(|&q| {
                    let mut v = Vec::new();
                    idx.query_sink(q, &mut v);
                    v
                })
                .collect();
            let mut bufs: Vec<Vec<IntervalId>> = vec![Vec::new(); queries.len()];
            let mut sinks: Vec<&mut dyn QuerySink> =
                bufs.iter_mut().map(|b| b as &mut dyn QuerySink).collect();
            idx.query_batch(&queries, &mut sinks);
            assert_eq!(solo, bufs, "pass {pass}: emission order must match");
            idx.seal();
        }
    }

    #[test]
    fn no_duplicates() {
        let data = lcg_data(500, 1 << 14, 4000, 77);
        let idx = HintMSubs::build(&data, 10, SubsConfig::full());
        for st in (0..(1 << 14)).step_by(257) {
            let q = RangeQuery::new(st, (st + 5000).min((1 << 14) - 1));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }
}
