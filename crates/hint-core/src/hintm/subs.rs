//! HINT^m with the §4.1 partition subdivisions.
//!
//! Every partition `P_{l,i}` is divided into four groups (Table 2):
//! `P^{Oin}` (originals ending inside), `P^{Oaft}` (originals ending after),
//! `P^{Rin}` (replicas ending inside), `P^{Raft}` (replicas ending after).
//! Lemmas 5 and 6 then reduce the overlap test to **at most one comparison
//! per interval**, and the `Raft` group never needs any comparison.
//!
//! Two further §4.1 options are configurable to reproduce Figure 11:
//!
//! * **sorting** (§4.1.1, [`SubsConfig::sort`]): `Oin` and `Oaft` are kept
//!   sorted by start point and `Rin` by end point, turning comparison scans
//!   into binary-searched prefix/suffix runs;
//! * **storage optimization** (§4.1.2, [`SubsConfig::sopt`]): each group
//!   stores only the fields that can ever be compared (Table 3):
//!   `Oin: (id, st, end)`, `Oaft: (id, st)`, `Rin: (id, end)`, `Raft: id`.
//!
//! With `sopt` enabled and `sort` disabled this is the paper's
//! *update-friendly* HINT^m used as the delta index of the hybrid setting
//! (§4.4) and in the Table 10 update experiments.

use crate::assign::{for_each_assignment, SubKind};
use crate::domain::Domain;
use crate::hintm::CompFlags;
use crate::interval::{Interval, IntervalId, RangeQuery, Time, TOMBSTONE};
use crate::scan;
use crate::sink::QuerySink;

/// Configuration of the §4.1 options (Figure 11's ablation axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubsConfig {
    /// Keep subdivisions sorted (§4.1.1).
    pub sort: bool,
    /// Store only the necessary endpoint fields per subdivision (§4.1.2).
    pub sopt: bool,
}

impl SubsConfig {
    /// All §4.1 optimizations on (the `subs+sort+sopt` line of Figure 11).
    pub fn full() -> Self {
        Self {
            sort: true,
            sopt: true,
        }
    }

    /// The update-friendly configuration (`subs+sopt`, §4.4 delta index).
    pub fn update_friendly() -> Self {
        Self {
            sort: false,
            sopt: true,
        }
    }
}

impl Default for SubsConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// `Oaft` entry under the storage optimization: end point never needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IdSt {
    id: IntervalId,
    st: Time,
}

/// `Rin` entry under the storage optimization: start point never needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IdEnd {
    id: IntervalId,
    end: Time,
}

#[derive(Debug, Clone, Default)]
struct PartFull {
    oin: Vec<Interval>,
    oaft: Vec<Interval>,
    rin: Vec<Interval>,
    raft: Vec<Interval>,
}

#[derive(Debug, Clone, Default)]
struct PartOpt {
    oin: Vec<Interval>,
    oaft: Vec<IdSt>,
    rin: Vec<IdEnd>,
    raft: Vec<IntervalId>,
}

#[derive(Debug, Clone)]
enum Storage {
    Full(Vec<Vec<PartFull>>),
    Opt(Vec<Vec<PartOpt>>),
}

/// HINT^m with subdivisions (§4.1), configurable sorting and storage
/// optimization.
#[derive(Debug, Clone)]
pub struct HintMSubs {
    domain: Domain,
    cfg: SubsConfig,
    storage: Storage,
    live: usize,
    tombstones: usize,
}

impl HintMSubs {
    /// Builds the index with `m + 1` levels over `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty or the clamped `m` exceeds 26.
    pub fn build(data: &[Interval], m: u32, cfg: SubsConfig) -> Self {
        let domain = Domain::from_data(data, m);
        Self::build_with_domain(data, domain, cfg)
    }

    /// Builds over an explicit domain (for pre-sized update workloads).
    pub fn build_with_domain(data: &[Interval], domain: Domain, cfg: SubsConfig) -> Self {
        let m = domain.m();
        assert!(
            m <= 26,
            "dense per-partition layout limited to m <= 26 (got {m})"
        );
        let mut idx = Self {
            domain,
            cfg,
            storage: if cfg.sopt {
                Storage::Opt(
                    (0..=m)
                        .map(|l| vec![PartOpt::default(); 1usize << l])
                        .collect(),
                )
            } else {
                Storage::Full(
                    (0..=m)
                        .map(|l| vec![PartFull::default(); 1usize << l])
                        .collect(),
                )
            },
            live: 0,
            tombstones: 0,
        };
        for s in data {
            idx.place(*s);
        }
        idx.live = data.len();
        if cfg.sort {
            idx.sort_all();
        }
        idx
    }

    /// Routes one interval to its partitions (no sorting).
    fn place(&mut self, s: Interval) {
        let (a, b) = self.domain.map_interval(&s);
        let m = self.domain.m();
        match &mut self.storage {
            Storage::Full(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    match asg.kind {
                        SubKind::OriginalIn => part.oin.push(s),
                        SubKind::OriginalAft => part.oaft.push(s),
                        SubKind::ReplicaIn => part.rin.push(s),
                        SubKind::ReplicaAft => part.raft.push(s),
                    }
                });
            }
            Storage::Opt(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    match asg.kind {
                        SubKind::OriginalIn => part.oin.push(s),
                        SubKind::OriginalAft => part.oaft.push(IdSt { id: s.id, st: s.st }),
                        SubKind::ReplicaIn => part.rin.push(IdEnd {
                            id: s.id,
                            end: s.end,
                        }),
                        SubKind::ReplicaAft => part.raft.push(s.id),
                    }
                });
            }
        }
    }

    fn sort_all(&mut self) {
        match &mut self.storage {
            Storage::Full(levels) => {
                for part in levels.iter_mut().flatten() {
                    part.oin.sort_unstable_by_key(|s| s.st);
                    part.oaft.sort_unstable_by_key(|s| s.st);
                    part.rin.sort_unstable_by_key(|s| s.end);
                }
            }
            Storage::Opt(levels) => {
                for part in levels.iter_mut().flatten() {
                    part.oin.sort_unstable_by_key(|s| s.st);
                    part.oaft.sort_unstable_by_key(|s| s.st);
                    part.rin.sort_unstable_by_key(|s| s.end);
                }
            }
        }
    }

    /// The index domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> SubsConfig {
        self.cfg
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Evaluates a range query (Algorithm 3 + Lemmas 5/6), pushing result
    /// ids into `out`.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Evaluates a range query into an arbitrary sink; the partition walk
    /// stops once the sink is saturated.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        if !self.domain.intersects(&q) {
            return;
        }
        match &self.storage {
            Storage::Full(levels) => self.run(levels, q, sink, FullView),
            Storage::Opt(levels) => self.run(levels, q, sink, OptView),
        }
    }

    /// Convenience: stabbing query.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }

    /// Level/partition walk shared by both storage layouts.
    fn run<P, V: PartView<P>, S: QuerySink + ?Sized>(
        &self,
        levels: &[Vec<P>],
        q: RangeQuery,
        sink: &mut S,
        view: V,
    ) {
        let (qst, qend) = self.domain.map_query(&q);
        let m = self.domain.m();
        let sort = self.cfg.sort;
        let skip = self.tombstones > 0;
        let mut flags = CompFlags::new();
        for l in (0..=m).rev() {
            if sink.is_saturated() {
                return;
            }
            let f = self.domain.prefix(l, qst);
            let last = self.domain.prefix(l, qend);
            if f == last {
                view.single(&levels[l as usize][f as usize], &q, flags, sort, skip, sink);
            } else {
                view.first(&levels[l as usize][f as usize], &q, flags, sort, skip, sink);
                let parts = &levels[l as usize];
                for off in f + 1..last {
                    if sink.is_saturated() {
                        return;
                    }
                    view.middle(&parts[off as usize], skip, sink);
                }
                view.last(&parts[last as usize], &q, flags, sort, skip, sink);
            }
            flags.update(f, last);
        }
    }

    /// Inserts an interval (Algorithm 1; sorted insertion when the index
    /// keeps subdivisions sorted).
    ///
    /// # Panics
    /// Panics if the endpoints fall outside the fixed index domain.
    pub fn insert(&mut self, s: Interval) {
        assert!(
            s.st >= self.domain.min() && s.end <= self.domain.max(),
            "interval outside index domain"
        );
        let (a, b) = self.domain.map_interval(&s);
        let m = self.domain.m();
        let sort = self.cfg.sort;
        match &mut self.storage {
            Storage::Full(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    match asg.kind {
                        SubKind::OriginalIn => insert_by(&mut part.oin, s, sort, |x| x.st),
                        SubKind::OriginalAft => insert_by(&mut part.oaft, s, sort, |x| x.st),
                        SubKind::ReplicaIn => insert_by(&mut part.rin, s, sort, |x| x.end),
                        SubKind::ReplicaAft => part.raft.push(s),
                    }
                });
            }
            Storage::Opt(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    match asg.kind {
                        SubKind::OriginalIn => insert_by(&mut part.oin, s, sort, |x| x.st),
                        SubKind::OriginalAft => {
                            insert_by(&mut part.oaft, IdSt { id: s.id, st: s.st }, sort, |x| x.st)
                        }
                        SubKind::ReplicaIn => insert_by(
                            &mut part.rin,
                            IdEnd {
                                id: s.id,
                                end: s.end,
                            },
                            sort,
                            |x| x.end,
                        ),
                        SubKind::ReplicaAft => part.raft.push(s.id),
                    }
                });
            }
        }
        self.live += 1;
    }

    /// Logically deletes an interval via tombstones. The caller passes the
    /// endpoints the interval was inserted with. Returns true if found.
    pub fn delete(&mut self, s: &Interval) -> bool {
        let (a, b) = self.domain.map_interval(s);
        let m = self.domain.m();
        let mut found = false;
        match &mut self.storage {
            Storage::Full(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    let group = match asg.kind {
                        SubKind::OriginalIn => &mut part.oin,
                        SubKind::OriginalAft => &mut part.oaft,
                        SubKind::ReplicaIn => &mut part.rin,
                        SubKind::ReplicaAft => &mut part.raft,
                    };
                    for slot in group.iter_mut() {
                        if slot.id == s.id {
                            slot.id = TOMBSTONE;
                            found = true;
                            break;
                        }
                    }
                });
            }
            Storage::Opt(levels) => {
                for_each_assignment(m, a, b, |asg| {
                    let part = &mut levels[asg.level as usize][asg.offset as usize];
                    let hit = match asg.kind {
                        SubKind::OriginalIn => tomb(&mut part.oin, s.id, |x| &mut x.id),
                        SubKind::OriginalAft => tomb(&mut part.oaft, s.id, |x| &mut x.id),
                        SubKind::ReplicaIn => tomb(&mut part.rin, s.id, |x| &mut x.id),
                        SubKind::ReplicaAft => {
                            let mut hit = false;
                            for slot in part.raft.iter_mut() {
                                if *slot == s.id {
                                    *slot = TOMBSTONE;
                                    hit = true;
                                    break;
                                }
                            }
                            hit
                        }
                    };
                    found |= hit;
                });
            }
        }
        if found {
            self.live -= 1;
            self.tombstones += 1;
        }
        found
    }

    /// Approximate heap footprint in bytes — the quantity Figure 11 plots.
    pub fn size_bytes(&self) -> usize {
        match &self.storage {
            Storage::Full(levels) => {
                let mut total = 0;
                for parts in levels {
                    total += parts.len() * std::mem::size_of::<PartFull>();
                    for p in parts {
                        total += (p.oin.len() + p.oaft.len() + p.rin.len() + p.raft.len())
                            * std::mem::size_of::<Interval>();
                    }
                }
                total
            }
            Storage::Opt(levels) => {
                let mut total = 0;
                for parts in levels {
                    total += parts.len() * std::mem::size_of::<PartOpt>();
                    for p in parts {
                        total += p.oin.len() * std::mem::size_of::<Interval>()
                            + p.oaft.len() * std::mem::size_of::<IdSt>()
                            + p.rin.len() * std::mem::size_of::<IdEnd>()
                            + p.raft.len() * std::mem::size_of::<IntervalId>();
                    }
                }
                total
            }
        }
    }

    /// Total stored entries (for the replication factor `k`).
    pub fn entries(&self) -> usize {
        match &self.storage {
            Storage::Full(levels) => levels
                .iter()
                .flatten()
                .map(|p| p.oin.len() + p.oaft.len() + p.rin.len() + p.raft.len())
                .sum(),
            Storage::Opt(levels) => levels
                .iter()
                .flatten()
                .map(|p| p.oin.len() + p.oaft.len() + p.rin.len() + p.raft.len())
                .sum(),
        }
    }
}

fn insert_by<T: Copy, K: Fn(&T) -> Time>(v: &mut Vec<T>, x: T, sort: bool, key: K) {
    if sort {
        let k = key(&x);
        let pos = v.partition_point(|e| key(e) <= k);
        v.insert(pos, x);
    } else {
        v.push(x);
    }
}

fn tomb<T>(v: &mut [T], id: IntervalId, idf: impl Fn(&mut T) -> &mut IntervalId) -> bool {
    for slot in v.iter_mut() {
        let slot_id = idf(slot);
        if *slot_id == id {
            *slot_id = TOMBSTONE;
            return true;
        }
    }
    false
}

/// Reporting logic per partition role, abstracted over the two storage
/// layouts. Methods are `#[inline]`-heavy; monomorphization gives each
/// layout/sink pair its own straight-line code with no dynamic dispatch.
/// The comparison regimes themselves live in [`crate::scan`], shared with
/// the other HINT variants.
trait PartView<P>: Copy {
    fn single<S: QuerySink + ?Sized>(
        &self,
        p: &P,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    );
    fn first<S: QuerySink + ?Sized>(
        &self,
        p: &P,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    );
    fn middle<S: QuerySink + ?Sized>(&self, p: &P, skip: bool, sink: &mut S);
    fn last<S: QuerySink + ?Sized>(
        &self,
        p: &P,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    );
}

#[derive(Clone, Copy)]
struct FullView;

impl PartView<PartFull> for FullView {
    #[inline]
    fn single<S: QuerySink + ?Sized>(
        &self,
        p: &PartFull,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        // Lemma 6, gated by the Lemma-2 flags.
        match (flags.first, flags.last) {
            (true, true) => {
                scan::emit_overlap(
                    &p.oin,
                    q.st,
                    q.end,
                    sort,
                    skip,
                    |e| e.st,
                    |e| e.end,
                    |e| e.id,
                    sink,
                );
                scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
            }
            (false, true) => {
                scan::emit_st_prefix(&p.oin, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_all(&p.rin, skip, |e| e.id, sink);
            }
            (true, false) => {
                scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
                scan::emit_end_suffix(&p.oin, q.st, false, skip, |e| e.end, |e| e.id, sink);
                scan::emit_all(&p.oaft, skip, |e| e.id, sink);
            }
            (false, false) => {
                scan::emit_all(&p.oin, skip, |e| e.id, sink);
                scan::emit_all(&p.oaft, skip, |e| e.id, sink);
                scan::emit_all(&p.rin, skip, |e| e.id, sink);
            }
        }
        scan::emit_all(&p.raft, skip, |e| e.id, sink);
    }

    #[inline]
    fn first<S: QuerySink + ?Sized>(
        &self,
        p: &PartFull,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        // Lemma 5: only the `in` subdivisions may need `s.end >= q.st`.
        if flags.first {
            scan::emit_end_suffix(&p.oin, q.st, false, skip, |e| e.end, |e| e.id, sink);
            scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
        } else {
            scan::emit_all(&p.oin, skip, |e| e.id, sink);
            scan::emit_all(&p.rin, skip, |e| e.id, sink);
        }
        scan::emit_all(&p.oaft, skip, |e| e.id, sink);
        scan::emit_all(&p.raft, skip, |e| e.id, sink);
    }

    #[inline]
    fn middle<S: QuerySink + ?Sized>(&self, p: &PartFull, skip: bool, sink: &mut S) {
        scan::emit_all(&p.oin, skip, |e| e.id, sink);
        scan::emit_all(&p.oaft, skip, |e| e.id, sink);
    }

    #[inline]
    fn last<S: QuerySink + ?Sized>(
        &self,
        p: &PartFull,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        if flags.last {
            scan::emit_st_prefix(&p.oin, q.end, sort, skip, |e| e.st, |e| e.id, sink);
            scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
        } else {
            scan::emit_all(&p.oin, skip, |e| e.id, sink);
            scan::emit_all(&p.oaft, skip, |e| e.id, sink);
        }
    }
}

#[derive(Clone, Copy)]
struct OptView;

impl PartView<PartOpt> for OptView {
    #[inline]
    fn single<S: QuerySink + ?Sized>(
        &self,
        p: &PartOpt,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        match (flags.first, flags.last) {
            (true, true) => {
                scan::emit_overlap(
                    &p.oin,
                    q.st,
                    q.end,
                    sort,
                    skip,
                    |e| e.st,
                    |e| e.end,
                    |e| e.id,
                    sink,
                );
                scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
            }
            (false, true) => {
                scan::emit_st_prefix(&p.oin, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
                scan::emit_all(&p.rin, skip, |e| e.id, sink);
            }
            (true, false) => {
                scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
                scan::emit_end_suffix(&p.oin, q.st, false, skip, |e| e.end, |e| e.id, sink);
                scan::emit_all(&p.oaft, skip, |e| e.id, sink);
            }
            (false, false) => {
                scan::emit_all(&p.oin, skip, |e| e.id, sink);
                scan::emit_all(&p.oaft, skip, |e| e.id, sink);
                scan::emit_all(&p.rin, skip, |e| e.id, sink);
            }
        }
        scan::emit_ids(&p.raft, skip, sink);
    }

    #[inline]
    fn first<S: QuerySink + ?Sized>(
        &self,
        p: &PartOpt,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        if flags.first {
            scan::emit_end_suffix(&p.oin, q.st, false, skip, |e| e.end, |e| e.id, sink);
            scan::emit_end_suffix(&p.rin, q.st, sort, skip, |e| e.end, |e| e.id, sink);
        } else {
            scan::emit_all(&p.oin, skip, |e| e.id, sink);
            scan::emit_all(&p.rin, skip, |e| e.id, sink);
        }
        scan::emit_all(&p.oaft, skip, |e| e.id, sink);
        scan::emit_ids(&p.raft, skip, sink);
    }

    #[inline]
    fn middle<S: QuerySink + ?Sized>(&self, p: &PartOpt, skip: bool, sink: &mut S) {
        scan::emit_all(&p.oin, skip, |e| e.id, sink);
        scan::emit_all(&p.oaft, skip, |e| e.id, sink);
    }

    #[inline]
    fn last<S: QuerySink + ?Sized>(
        &self,
        p: &PartOpt,
        q: &RangeQuery,
        flags: CompFlags,
        sort: bool,
        skip: bool,
        sink: &mut S,
    ) {
        if flags.last {
            scan::emit_st_prefix(&p.oin, q.end, sort, skip, |e| e.st, |e| e.id, sink);
            scan::emit_st_prefix(&p.oaft, q.end, sort, skip, |e| e.st, |e| e.id, sink);
        } else {
            scan::emit_all(&p.oin, skip, |e| e.id, sink);
            scan::emit_all(&p.oaft, skip, |e| e.id, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort_unstable();
        v
    }

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    fn all_configs() -> [SubsConfig; 4] {
        [
            SubsConfig {
                sort: false,
                sopt: false,
            },
            SubsConfig {
                sort: true,
                sopt: false,
            },
            SubsConfig {
                sort: false,
                sopt: true,
            },
            SubsConfig {
                sort: true,
                sopt: true,
            },
        ]
    }

    #[test]
    fn all_configs_match_oracle() {
        let data = lcg_data(400, 100_000, 9_000, 21);
        let oracle = ScanOracle::new(&data);
        for cfg in all_configs() {
            for m in [4, 8, 12] {
                let idx = HintMSubs::build(&data, m, cfg);
                let mut x = 5u64;
                for _ in 0..300 {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    let st = (x >> 17) % 100_000;
                    let end = (st + (x >> 9) % 12_000).min(99_999);
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{cfg:?} m={m} {q:?}");
                }
            }
        }
    }

    #[test]
    fn exhaustive_small_domain() {
        let data = lcg_data(120, 64, 20, 9);
        let oracle = ScanOracle::new(&data);
        for cfg in all_configs() {
            let idx = HintMSubs::build(&data, 6, cfg);
            for st in 0..64u64 {
                for end in st..64 {
                    let q = RangeQuery::new(st, end);
                    let mut got = Vec::new();
                    idx.query(q, &mut got);
                    assert_eq!(sorted(got), oracle.query_sorted(q), "{cfg:?} {q:?}");
                }
            }
        }
    }

    #[test]
    fn stabbing_matches_oracle() {
        let data = lcg_data(250, 4096, 300, 17);
        let oracle = ScanOracle::new(&data);
        let idx = HintMSubs::build(&data, 9, SubsConfig::full());
        for t in (0..4096).step_by(13) {
            let mut got = Vec::new();
            idx.stab(t, &mut got);
            assert_eq!(sorted(got), oracle.query_sorted(RangeQuery::stab(t)));
        }
    }

    #[test]
    fn sopt_shrinks_the_index() {
        let data = lcg_data(3000, 1 << 20, 1 << 16, 33);
        let full = HintMSubs::build(
            &data,
            10,
            SubsConfig {
                sort: true,
                sopt: false,
            },
        );
        let opt = HintMSubs::build(
            &data,
            10,
            SubsConfig {
                sort: true,
                sopt: true,
            },
        );
        assert!(
            opt.size_bytes() < full.size_bytes(),
            "sopt {} vs full {}",
            opt.size_bytes(),
            full.size_bytes()
        );
        assert_eq!(opt.entries(), full.entries());
    }

    #[test]
    fn updates_match_oracle() {
        let mut data = lcg_data(150, 2048, 100, 29);
        for cfg in all_configs() {
            let mut idx =
                HintMSubs::build_with_domain(&data, crate::domain::Domain::new(0, 2047, 8), cfg);
            let mut oracle = ScanOracle::new(&data);
            for i in 0..60u64 {
                let st = (i * 31) % 2000;
                let s = Interval::new(5000 + i, st, st + (i % 40));
                idx.insert(s);
                oracle.insert(s);
            }
            let snapshot: Vec<Interval> = data.to_vec();
            for s in snapshot.iter().filter(|s| s.id % 4 == 0) {
                assert_eq!(idx.delete(s), oracle.delete(s.id), "{cfg:?} {s:?}");
            }
            for st in (0..2048u64).step_by(41) {
                let q = RangeQuery::new(st, (st + 90).min(2047));
                let mut got = Vec::new();
                idx.query(q, &mut got);
                assert_eq!(sorted(got), oracle.query_sorted(q), "{cfg:?} {q:?}");
            }
        }
        data.truncate(data.len()); // silence unused-mut lint paranoia
    }

    #[test]
    fn no_duplicates() {
        let data = lcg_data(500, 1 << 14, 4000, 77);
        let idx = HintMSubs::build(&data, 10, SubsConfig::full());
        for st in (0..(1 << 14)).step_by(257) {
            let q = RangeQuery::new(st, (st + 5000).min((1 << 14) - 1));
            let mut got = Vec::new();
            idx.query(q, &mut got);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "{q:?}");
        }
    }
}
