//! Crash-safe durable snapshot/restore for the sharded, sealed HINT^m.
//!
//! A snapshot is the byte-exact image of a **sealed** engine: for every
//! shard, the raw `starts`/`ids`/`st`/`end` CSR columns of every
//! level/category arena ([`super::sealed`]), plus the shard metadata
//! (bounds, domain, config, replica set) needed to rebuild the
//! [`ShardedIndex`] around them. Restore is a bulk read straight back
//! into the arenas — no re-sort, no re-assignment pass — so it beats
//! rebuilding from scratch by the cost of the whole assignment + sort
//! pipeline (`harness snapshot` measures the ratio).
//!
//! ## File format (version 1, all integers little-endian)
//!
//! ```text
//! header    magic "HINTSNAP" | version u32 | flags u32
//!           | shard_count u32 | section_count u32 | live u64
//! shards    per shard: start u64 | end u64 | dom_min u64 | dom_max u64
//!           | m u32 | cfg u32 (bit0 sort, bit1 sopt)
//!           | replica_count u64 | replica ids (u64 each, ascending)
//! sections  per section: name_len u8 | name | offset u64 (into the
//!           payload region) | cardinality u64 | entity_size u32
//!           | crc32 u32  — names are "s<shard>/L<level>/<cat>/<col>"
//!           in canonical order (shard-major, level, then
//!           oin/oaft/rin/raft, then starts/ids/st/end)
//! payload   the raw columns, back to back, in section-table order
//! footer    magic "SNAPDONE" | total_len u64 (bytes before the
//!           footer) | crc32 u32 (over all bytes before the footer)
//! ```
//!
//! Every section carries its own CRC32 (IEEE) and the footer carries
//! one over the entire preceding byte range, so corruption anywhere —
//! header, metadata, table, or columns — is detected before any value
//! is trusted. Decoding is fully checked and returns a typed
//! [`RestoreError`] on any violation; it never panics (this crate
//! forbids `unsafe`, so even a hostile file can at worst be rejected).
//!
//! ## Durability discipline
//!
//! [`write_index`] serializes to a uniquely-named temp sibling
//! (`<path>.<pid>-<seq>.tmp`), fsyncs, then atomically renames over
//! `path`: a crash at any byte leaves either the old snapshot or the
//! new one, never garbage — and concurrent saves to the same path
//! never share a temp file. Stale temps from crashed saves are swept
//! on the next save ([`tmp_siblings`] lists what is on disk). All file operations go
//! through the [`SnapshotIo`] trait; [`FaultIo`] is the deterministic
//! fault-injecting implementation behind the crash-recovery test
//! matrix (short writes, ENOSPC, fsync failure, torn rename, bit-flip
//! read corruption).

use crate::assign::SubKind;
use crate::domain::Domain;
use crate::hintm::sealed::{CatColumnsOwned, SealedStore};
use crate::hintm::subs::{HintMSubs, SubsConfig};
use crate::interval::IntervalId;
use crate::shard::{Shard, ShardedIndex};
use std::collections::HashSet;
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Leading file magic.
const MAGIC: &[u8; 8] = b"HINTSNAP";
/// Trailing commit-marker magic: a file without it was never finished.
const FOOTER_MAGIC: &[u8; 8] = b"SNAPDONE";
/// Snapshot format version written by this build.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Fixed header length in bytes.
const HEADER_LEN: usize = 32;
/// Fixed footer length in bytes.
const FOOTER_LEN: usize = 20;
/// Default write chunk (bytes) — overridable via `HINT_SNAPSHOT_CHUNK`.
const DEFAULT_CHUNK: usize = 64 * 1024;

/// The four categories in canonical snapshot order, with their Table-3
/// column presence (`has_st`, `has_end`).
const CATS: [(SubKind, &str, bool, bool); 4] = [
    (SubKind::OriginalIn, "oin", true, true),
    (SubKind::OriginalAft, "oaft", true, false),
    (SubKind::ReplicaIn, "rin", false, true),
    (SubKind::ReplicaAft, "raft", false, false),
];

// ---- CRC32 (IEEE 802.3, table-driven) ------------------------------

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    // tables 1..8 extend table 0 to one lookup per input byte at a
    // stride of eight bytes per step (slicing-by-8)
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// IEEE CRC32 of `bytes` (the `cksum -o3`/zlib polynomial, reflected),
/// slicing-by-8: checksums run over every column on both the save and
/// the restore path, so the byte-at-a-time loop would dominate restore
/// latency on large snapshots.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- errors ---------------------------------------------------------

/// Why a snapshot could not be restored. Every decode failure is one of
/// these — corruption is reported, never panicked on and never silently
/// accepted.
#[derive(Debug)]
pub enum RestoreError {
    /// The underlying read failed.
    Io(io::Error),
    /// Not a snapshot file: bad magic or version, missing committed
    /// footer, or a frame truncated mid-field.
    Format(String),
    /// A CRC32 check failed; names the section (or `footer`).
    Checksum(String),
    /// The file decoded cleanly but violates a structural invariant of
    /// the sealed arenas or the shard layout.
    Structure(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "snapshot read failed: {e}"),
            RestoreError::Format(s) => write!(f, "snapshot format error: {s}"),
            RestoreError::Checksum(s) => write!(f, "snapshot checksum mismatch in {s}"),
            RestoreError::Structure(s) => write!(f, "snapshot structure invalid: {s}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

// ---- the I/O seam ---------------------------------------------------

/// The file operations the snapshot path uses, as a seam for fault
/// injection. The production implementation is [`StdSnapshotIo`]; the
/// crash-recovery matrix drives the same code through [`FaultIo`].
///
/// The write half is stateful (`open_write` → `write_all`* →
/// `sync_and_close`) so an injected fault can land at any chunk
/// boundary of a real multi-write save.
pub trait SnapshotIo {
    /// Creates (or truncates) `path` for writing.
    fn open_write(&mut self, path: &Path) -> io::Result<()>;
    /// Appends bytes to the file opened by [`Self::open_write`].
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flushes the file to stable storage and closes it.
    fn sync_and_close(&mut self) -> io::Result<()>;
    /// Atomically renames `from` onto `to` (the commit point).
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
    /// Reads the entire file at `path`.
    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>>;
    /// Removes `path`, treating absence as success (cleanup).
    fn remove_file(&mut self, path: &Path) -> io::Result<()>;
}

/// The production [`SnapshotIo`]: plain `std::fs` with a real fsync
/// before the rename.
#[derive(Debug, Default)]
pub struct StdSnapshotIo {
    open: Option<fs::File>,
}

impl SnapshotIo for StdSnapshotIo {
    fn open_write(&mut self, path: &Path) -> io::Result<()> {
        self.open = Some(fs::File::create(path)?);
        Ok(())
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match &mut self.open {
            Some(f) => f.write_all(bytes),
            None => Err(io::Error::other("no snapshot file open")),
        }
    }

    fn sync_and_close(&mut self) -> io::Result<()> {
        match self.open.take() {
            Some(f) => f.sync_all(),
            None => Err(io::Error::other("no snapshot file open")),
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = fs::File::open(path)?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        match fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            r => r,
        }
    }
}

/// Which operation a [`FaultIo`] fault targets and how it fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The targeted `write_all` persists only the first half of its
    /// bytes, then errors — a partial page landed on disk.
    ShortWrite,
    /// The targeted `write_all` fails with `ENOSPC`-style
    /// `StorageFull` before writing anything.
    NoSpace,
    /// `sync_and_close` fails — the data may or may not have reached
    /// stable storage.
    FsyncFail,
    /// `rename` moves the file into place but still reports failure —
    /// the crash-straddling-the-commit-point shape: the caller cannot
    /// know which snapshot is current, and both must restore cleanly.
    TornRename,
    /// `read_file` succeeds but one seeded bit of the returned bytes is
    /// flipped — silent media corruption the checksums must catch.
    BitFlip,
}

/// Deterministic fault-injecting [`SnapshotIo`]: wraps an inner
/// implementation and makes the `at`-th occurrence of the targeted
/// operation fail per [`FaultKind`]. With `kind = None` it is a pure
/// pass-through that counts operations — the matrix uses one counting
/// pass to learn how many fault points a save has, then replays the
/// save once per point.
#[derive(Debug)]
pub struct FaultIo<I> {
    inner: I,
    kind: Option<FaultKind>,
    at: usize,
    seed: u64,
    writes: usize,
    syncs: usize,
    renames: usize,
    reads: usize,
}

impl<I: SnapshotIo> FaultIo<I> {
    /// A pass-through that only counts operations.
    pub fn counting(inner: I) -> Self {
        Self {
            inner,
            kind: None,
            at: 0,
            seed: 0,
            writes: 0,
            syncs: 0,
            renames: 0,
            reads: 0,
        }
    }

    /// Faults the `at`-th (0-based) occurrence of the operation `kind`
    /// targets; `seed` drives the bit position of [`FaultKind::BitFlip`].
    pub fn failing(inner: I, kind: FaultKind, at: usize, seed: u64) -> Self {
        Self {
            kind: Some(kind),
            at,
            seed,
            ..Self::counting(inner)
        }
    }

    /// `write_all` calls observed so far.
    pub fn writes(&self) -> usize {
        self.writes
    }

    /// The wrapped implementation.
    pub fn into_inner(self) -> I {
        self.inner
    }

    fn splitmix(&self, k: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<I: SnapshotIo> SnapshotIo for FaultIo<I> {
    fn open_write(&mut self, path: &Path) -> io::Result<()> {
        self.inner.open_write(path)
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let n = self.writes;
        self.writes += 1;
        match self.kind {
            Some(FaultKind::ShortWrite) if n == self.at => {
                self.inner.write_all(&bytes[..bytes.len() / 2])?;
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected short write",
                ))
            }
            Some(FaultKind::NoSpace) if n == self.at => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            _ => self.inner.write_all(bytes),
        }
    }

    fn sync_and_close(&mut self) -> io::Result<()> {
        let n = self.syncs;
        self.syncs += 1;
        if self.kind == Some(FaultKind::FsyncFail) && n == self.at {
            // close the file (drop) without a durable sync, then fail
            let _ = self.inner.sync_and_close();
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync_and_close()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        let n = self.renames;
        self.renames += 1;
        if self.kind == Some(FaultKind::TornRename) && n == self.at {
            // the rename itself commits, but the caller sees a failure:
            // recovery must accept either the old or the new snapshot
            self.inner.rename(from, to)?;
            return Err(io::Error::other("injected torn rename"));
        }
        self.inner.rename(from, to)
    }

    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        let n = self.reads;
        self.reads += 1;
        let mut bytes = self.inner.read_file(path)?;
        if self.kind == Some(FaultKind::BitFlip) && n == self.at && !bytes.is_empty() {
            let bit = self.splitmix(n as u64) as usize % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        Ok(bytes)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
}

// ---- little-endian plumbing ----------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Checked forward cursor over untrusted bytes: every read is
/// bounds-checked and reports what it was reading when it ran out.
struct Cur<'a> {
    b: &'a [u8],
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], RestoreError> {
        if self.b.len() < n {
            return Err(RestoreError::Format(format!("truncated reading {what}")));
        }
        let (h, t) = self.b.split_at(n);
        self.b = t;
        Ok(h)
    }

    fn u8(&mut self, what: &str) -> Result<u8, RestoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, RestoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, RestoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn rest(self) -> &'a [u8] {
        self.b
    }
}

// ---- encode ---------------------------------------------------------

/// One section-table entry under construction.
struct Section {
    name: String,
    offset: u64,
    cardinality: u64,
    entity_size: u32,
    crc: u32,
}

fn push_column<T: Copy, F: Fn(T) -> Vec<u8>>(
    sections: &mut Vec<Section>,
    payload: &mut Vec<u8>,
    name: String,
    entity_size: u32,
    col: &[T],
    le: F,
) {
    let offset = payload.len() as u64;
    for &v in col {
        payload.extend_from_slice(&le(v));
    }
    let crc = crc32(&payload[offset as usize..]);
    sections.push(Section {
        name,
        offset,
        cardinality: col.len() as u64,
        entity_size,
        crc,
    });
}

/// Serializes a sealed sharded index into the snapshot byte format.
///
/// Every shard must be sealed with an empty overlay and no tombstones —
/// the state [`crate::Session::snapshot`] guarantees by resealing
/// first. Returns an error (never panics) if a shard is not in that
/// state.
pub fn encode_index(index: &ShardedIndex<HintMSubs>) -> io::Result<Vec<u8>> {
    let mut meta = Vec::new();
    let mut sections: Vec<Section> = Vec::new();
    let mut payload = Vec::new();
    for (s, shard) in index.shards.iter().enumerate() {
        let subs = &shard.index;
        if subs.overlay_entries() != 0 || subs.tombstone_count() != 0 {
            return Err(io::Error::other(format!(
                "shard {s} has unsealed writes; seal before snapshotting"
            )));
        }
        let sealed = subs
            .sealed_store()
            .ok_or_else(|| io::Error::other(format!("shard {s} is not sealed")))?;
        let d = subs.domain();
        put_u64(&mut meta, shard.start);
        put_u64(&mut meta, shard.end);
        put_u64(&mut meta, d.min());
        put_u64(&mut meta, d.max());
        put_u32(&mut meta, d.m());
        let cfg = subs.config();
        put_u32(&mut meta, u32::from(cfg.sort) | (u32::from(cfg.sopt) << 1));
        let mut replicas: Vec<IntervalId> = shard.replicas.iter().copied().collect();
        replicas.sort_unstable();
        put_u64(&mut meta, replicas.len() as u64);
        for id in replicas {
            put_u64(&mut meta, id);
        }
        for l in 0..=d.m() {
            for (kind, cat, has_st, has_end) in CATS {
                let c = sealed.category_columns(l, kind);
                let base = format!("s{s}/L{l}/{cat}");
                push_column(
                    &mut sections,
                    &mut payload,
                    format!("{base}/starts"),
                    4,
                    c.starts,
                    |v: u32| v.to_le_bytes().to_vec(),
                );
                push_column(
                    &mut sections,
                    &mut payload,
                    format!("{base}/ids"),
                    8,
                    c.ids,
                    |v: u64| v.to_le_bytes().to_vec(),
                );
                if has_st {
                    push_column(
                        &mut sections,
                        &mut payload,
                        format!("{base}/st"),
                        8,
                        c.st,
                        |v: u64| v.to_le_bytes().to_vec(),
                    );
                }
                if has_end {
                    push_column(
                        &mut sections,
                        &mut payload,
                        format!("{base}/end"),
                        8,
                        c.end,
                        |v: u64| v.to_le_bytes().to_vec(),
                    );
                }
            }
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + meta.len() + payload.len() + FOOTER_LEN);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u32(&mut out, 0); // flags, reserved
    put_u32(&mut out, index.shards.len() as u32);
    put_u32(&mut out, sections.len() as u32);
    put_u64(&mut out, index.live as u64);
    out.extend_from_slice(&meta);
    for sec in &sections {
        debug_assert!(sec.name.len() <= u8::MAX as usize);
        out.push(sec.name.len() as u8);
        out.extend_from_slice(sec.name.as_bytes());
        put_u64(&mut out, sec.offset);
        put_u64(&mut out, sec.cardinality);
        put_u32(&mut out, sec.entity_size);
        put_u32(&mut out, sec.crc);
    }
    out.extend_from_slice(&payload);
    let total = out.len() as u64;
    let crc = crc32(&out);
    out.extend_from_slice(FOOTER_MAGIC);
    put_u64(&mut out, total);
    put_u32(&mut out, crc);
    Ok(out)
}

/// Distinguishes concurrent saves to the same destination within one
/// process (the pid in the temp name distinguishes processes).
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The temp-file sibling a save writes before its atomic rename:
/// `<name>.<pid>-<seq>.tmp`, unique per call, so two saves racing to
/// the same destination never write through the same temp file (the
/// loser's rename still wins the path, but neither commits a file
/// interleaved from both writers).
pub fn tmp_path(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}-{seq}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Classifies `name` as a temp sibling of base name `base`:
/// `Some(Some(pid))` for the `<base>.<pid>-<seq>.tmp` spelling,
/// `Some(None)` for the legacy fixed `<base>.tmp`, `None` for
/// unrelated files.
fn tmp_sibling_pid(name: &str, base: &str) -> Option<Option<u32>> {
    let rest = name.strip_prefix(base)?;
    if rest == ".tmp" {
        return Some(None);
    }
    let body = rest.strip_prefix('.')?.strip_suffix(".tmp")?;
    let (pid, seq) = body.split_once('-')?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    pid.parse::<u32>().ok().map(Some)
}

/// Every temp sibling of `path` currently on disk — in-flight saves
/// plus stale leftovers from crashed ones (both the pid-stamped
/// spelling and the legacy fixed `<name>.tmp`). Best-effort: an
/// unreadable directory lists as empty.
pub fn tmp_siblings(path: &Path) -> Vec<PathBuf> {
    tmp_siblings_with_pids(path)
        .into_iter()
        .map(|(p, _)| p)
        .collect()
}

fn tmp_siblings_with_pids(path: &Path) -> Vec<(PathBuf, Option<u32>)> {
    let Some(base) = path.file_name().and_then(|n| n.to_str()) else {
        return Vec::new();
    };
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(pid) = tmp_sibling_pid(name, base) {
            out.push((dir.join(name), pid));
        }
    }
    out
}

/// Removes stale temp siblings of `path`: temps stamped with another
/// process's pid (that save either committed — renaming its temp away —
/// or died leaving the orphan) and the legacy fixed `<name>.tmp` from
/// older builds. Temps stamped with the *current* pid are left alone:
/// they belong to this process's concurrent in-flight saves. Runs on
/// `std::fs` directly, not the injected [`SnapshotIo`], so
/// fault-injection schedules keep their fault-point numbering.
fn sweep_stale_tmps(path: &Path) {
    let me = std::process::id();
    for (tmp, pid) in tmp_siblings_with_pids(path) {
        if pid != Some(me) {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Durably writes `index` to `path` through `io`: serialize, write to
/// a unique temp sibling (see [`tmp_path`]) in chunks
/// (`HINT_SNAPSHOT_CHUNK` bytes, default 64 KiB), fsync, then
/// atomically rename into place. A crash or fault at any point leaves
/// either the old snapshot or the new one at `path`, never a partial
/// file. Stale temps left by other processes' crashed saves are swept
/// best-effort first. Returns the snapshot size in bytes; on failure
/// the partial temp file is removed best-effort.
pub fn write_index(
    index: &ShardedIndex<HintMSubs>,
    path: &Path,
    io: &mut dyn SnapshotIo,
) -> io::Result<u64> {
    let bytes = encode_index(index)?;
    let chunk: usize =
        crate::env::var_or("HINT_SNAPSHOT_CHUNK", DEFAULT_CHUNK, "bytes >= 1", |&n| {
            n >= 1
        });
    sweep_stale_tmps(path);
    let tmp = tmp_path(path);
    match write_tmp_and_commit(io, &tmp, path, &bytes, chunk) {
        Ok(()) => Ok(bytes.len() as u64),
        Err(e) => {
            let _ = io.remove_file(&tmp);
            Err(e)
        }
    }
}

fn write_tmp_and_commit(
    io: &mut dyn SnapshotIo,
    tmp: &Path,
    path: &Path,
    bytes: &[u8],
    chunk: usize,
) -> io::Result<()> {
    io.open_write(tmp)?;
    for c in bytes.chunks(chunk) {
        io.write_all(c)?;
    }
    io.sync_and_close()?;
    io.rename(tmp, path)
}

// ---- decode ---------------------------------------------------------

/// Pops the next section-table entry, checks it is the expected named
/// column with the expected entity size, bounds-checks its payload
/// slice, and verifies its CRC32.
fn take_column<'p>(
    next: &mut std::slice::Iter<'_, Section>,
    payload: &'p [u8],
    name: String,
    entity_size: u32,
) -> Result<&'p [u8], RestoreError> {
    let sec = next
        .next()
        .ok_or_else(|| RestoreError::Format(format!("section table ended before {name}")))?;
    if sec.name != name {
        return Err(RestoreError::Format(format!(
            "expected section {name}, found {}",
            sec.name
        )));
    }
    if sec.entity_size != entity_size {
        return Err(RestoreError::Format(format!(
            "{name}: entity size {} (expected {entity_size})",
            sec.entity_size
        )));
    }
    let len = sec
        .cardinality
        .checked_mul(entity_size as u64)
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| RestoreError::Format(format!("{name}: length overflow")))?;
    let off = usize::try_from(sec.offset)
        .map_err(|_| RestoreError::Format(format!("{name}: offset overflow")))?;
    let slice = off
        .checked_add(len)
        .and_then(|end| payload.get(off..end))
        .ok_or_else(|| RestoreError::Format(format!("{name}: offset beyond payload")))?;
    if crc32(slice) != sec.crc {
        return Err(RestoreError::Checksum(name));
    }
    Ok(slice)
}

/// Per-shard metadata decoded from the file.
struct ShardMeta {
    start: u64,
    end: u64,
    dom_min: u64,
    dom_max: u64,
    m: u32,
    cfg: SubsConfig,
    replicas: Vec<IntervalId>,
}

/// Reads and fully validates a snapshot from raw bytes, rebuilding the
/// sharded index straight into its sealed arenas. Any corruption —
/// framing, checksums, or structural invariants — yields a typed
/// [`RestoreError`]; this function never panics on untrusted input.
pub fn decode_index(bytes: &[u8]) -> Result<ShardedIndex<HintMSubs>, RestoreError> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(RestoreError::Format(format!(
            "file is {} bytes, smaller than header + footer",
            bytes.len()
        )));
    }
    // footer first: an uncommitted file is rejected before anything in
    // it is trusted
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    if &footer[..8] != FOOTER_MAGIC {
        return Err(RestoreError::Format(
            "missing committed footer (save did not finish)".into(),
        ));
    }
    let total = u64::from_le_bytes(footer[8..16].try_into().unwrap());
    if total != body.len() as u64 {
        return Err(RestoreError::Format(format!(
            "footer says {total} bytes, file has {}",
            body.len()
        )));
    }
    let want_crc = u32::from_le_bytes(footer[16..20].try_into().unwrap());
    if want_crc != crc32(body) {
        return Err(RestoreError::Checksum("footer".into()));
    }
    let mut cur = Cur::new(body);
    if cur.take(8, "magic")? != MAGIC {
        return Err(RestoreError::Format("bad magic".into()));
    }
    let version = cur.u32("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(RestoreError::Format(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let flags = cur.u32("flags")?;
    if flags != 0 {
        return Err(RestoreError::Format(format!(
            "unknown header flags {flags:#x}"
        )));
    }
    let shard_count = cur.u32("shard count")? as usize;
    let section_count = cur.u32("section count")? as usize;
    let live = cur.u64("live count")? as usize;
    if shard_count == 0 {
        return Err(RestoreError::Structure("zero shards".into()));
    }
    // metadata
    let mut metas = Vec::new();
    for s in 0..shard_count {
        let start = cur.u64("shard start")?;
        let end = cur.u64("shard end")?;
        let dom_min = cur.u64("domain min")?;
        let dom_max = cur.u64("domain max")?;
        let m = cur.u32("shard m")?;
        let cfg_bits = cur.u32("shard config")?;
        if cfg_bits & !3 != 0 {
            return Err(RestoreError::Format(format!(
                "shard {s}: unknown config bits {cfg_bits:#x}"
            )));
        }
        let cfg = SubsConfig {
            sort: cfg_bits & 1 != 0,
            sopt: cfg_bits & 2 != 0,
        };
        let n_replicas = cur.u64("replica count")?;
        let raw = cur.take((n_replicas as usize).saturating_mul(8), "shard replica ids")?;
        let mut replicas = Vec::with_capacity(raw.len() / 8);
        for c in raw.chunks_exact(8) {
            replicas.push(u64::from_le_bytes(c.try_into().unwrap()));
        }
        if replicas.windows(2).any(|w| w[0] >= w[1]) {
            return Err(RestoreError::Structure(format!(
                "shard {s}: replica ids not strictly ascending"
            )));
        }
        if start > end || dom_min > dom_max {
            return Err(RestoreError::Structure(format!(
                "shard {s}: inverted bounds"
            )));
        }
        if dom_min != start || dom_max != end {
            return Err(RestoreError::Structure(format!(
                "shard {s}: domain does not match the shard bounds"
            )));
        }
        if m > 26 {
            return Err(RestoreError::Structure(format!(
                "shard {s}: m = {m} exceeds the supported depth"
            )));
        }
        metas.push(ShardMeta {
            start,
            end,
            dom_min,
            dom_max,
            m,
            cfg,
            replicas,
        });
    }
    for (s, w) in metas.windows(2).enumerate() {
        if w[1].start != w[0].end + 1 {
            return Err(RestoreError::Structure(format!(
                "shards {s} and {} are not contiguous",
                s + 1
            )));
        }
    }
    // section table (entries are validated against the payload below)
    let mut sections = Vec::new();
    for i in 0..section_count {
        let name_len = cur.u8("section name length")? as usize;
        let name = std::str::from_utf8(cur.take(name_len, "section name")?)
            .map_err(|_| RestoreError::Format(format!("section {i}: non-UTF-8 name")))?
            .to_string();
        let offset = cur.u64("section offset")?;
        let cardinality = cur.u64("section cardinality")?;
        let entity_size = cur.u32("section entity size")?;
        let crc = cur.u32("section crc")?;
        sections.push(Section {
            name,
            offset,
            cardinality,
            entity_size,
            crc,
        });
    }
    let payload = cur.rest();
    // walk the canonical section order implied by the shard metadata,
    // consuming table entries one by one
    let mut next = sections.iter();
    let mut shards = Vec::with_capacity(shard_count);
    for (s, meta) in metas.iter().enumerate() {
        let mut levels = Vec::with_capacity(meta.m as usize + 1);
        for l in 0..=meta.m {
            let mut cats: [CatColumnsOwned; 4] = Default::default();
            for (slot, (_, cat, has_st, has_end)) in CATS.iter().enumerate() {
                let base = format!("s{s}/L{l}/{cat}");
                let starts = take_column(&mut next, payload, format!("{base}/starts"), 4)?;
                let ids = take_column(&mut next, payload, format!("{base}/ids"), 8)?;
                let st = if *has_st {
                    take_column(&mut next, payload, format!("{base}/st"), 8)?
                } else {
                    &[]
                };
                let end = if *has_end {
                    take_column(&mut next, payload, format!("{base}/end"), 8)?
                } else {
                    &[]
                };
                cats[slot] = CatColumnsOwned {
                    starts: starts
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                    ids: ids
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                    st: st
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                    end: end
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                };
            }
            levels.push(cats);
        }
        let sealed = SealedStore::from_columns(meta.m, levels)
            .map_err(|e| RestoreError::Structure(format!("shard {s}: {e}")))?;
        let domain = Domain::new(meta.dom_min, meta.dom_max, meta.m);
        if domain.m() != meta.m {
            return Err(RestoreError::Structure(format!(
                "shard {s}: m = {} is not representable over [{}, {}]",
                meta.m, meta.dom_min, meta.dom_max
            )));
        }
        let index = HintMSubs::from_sealed(domain, meta.cfg, sealed);
        let replicas: HashSet<IntervalId> = meta.replicas.iter().copied().collect();
        if replicas.len() > index.len() {
            return Err(RestoreError::Structure(format!(
                "shard {s}: more replicas than stored intervals"
            )));
        }
        shards.push(Shard {
            start: meta.start,
            end: meta.end,
            index,
            replicas,
        });
    }
    if next.next().is_some() {
        return Err(RestoreError::Format(
            "section table has entries beyond the declared shards".into(),
        ));
    }
    let distinct: usize = shards
        .iter()
        .map(|s| s.index.len() - s.replicas.len())
        .sum();
    if distinct != live {
        return Err(RestoreError::Structure(format!(
            "header says {live} live intervals, shards hold {distinct}"
        )));
    }
    Ok(ShardedIndex::from_parts(shards, live))
}

/// Reads and restores a snapshot file through `io`.
pub fn read_index(
    path: &Path,
    io: &mut dyn SnapshotIo,
) -> Result<ShardedIndex<HintMSubs>, RestoreError> {
    let bytes = io.read_file(path)?;
    decode_index(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{Interval, RangeQuery};
    use crate::IntervalIndex as _;

    fn sample_index(k: usize) -> ShardedIndex<HintMSubs> {
        let data: Vec<Interval> = (0..400u64)
            .map(|i| {
                let st = (i * 19) % 2_000;
                Interval::new(i, st, (st + i % 60).min(2_047))
            })
            .collect();
        let mut idx = ShardedIndex::build_with_domain(&data, 0, 2_047, k, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 7), SubsConfig::full())
        });
        idx.seal();
        idx
    }

    fn results(idx: &ShardedIndex<HintMSubs>) -> Vec<Vec<u64>> {
        (0..24)
            .map(|i| {
                let mut out = Vec::new();
                idx.query_sink(RangeQuery::new(i * 80, i * 80 + 150), &mut out);
                out.sort_unstable();
                out
            })
            .collect()
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        for k in [1, 3, 4] {
            let idx = sample_index(k);
            let bytes = encode_index(&idx).unwrap();
            let back = decode_index(&bytes).expect("clean decode");
            assert_eq!(back.shard_count(), idx.shard_count());
            assert_eq!(back.len(), idx.len());
            assert_eq!(results(&back), results(&idx), "K={k}");
            // a second encode of the restored index is byte-identical:
            // restore truly is the arenas, not a re-derivation
            assert_eq!(encode_index(&back).unwrap(), bytes, "K={k}");
        }
    }

    #[test]
    fn unsealed_index_is_refused() {
        let data = vec![Interval::new(0, 5, 10)];
        let idx = ShardedIndex::build_with_domain(&data, 0, 100, 1, |s, lo, hi| {
            HintMSubs::build_with_domain(s, Domain::new(lo, hi, 4), SubsConfig::full())
        });
        assert!(encode_index(&idx).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let idx = sample_index(2);
        let bytes = encode_index(&idx).unwrap();
        // the footer CRC covers every pre-footer byte and the footer
        // fields are checked directly, so no single-bit flip can decode
        let step = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            for bit in [0u8, 3, 7] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    decode_index(&corrupt).is_err(),
                    "flip at byte {pos} bit {bit} decoded"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let idx = sample_index(2);
        let bytes = encode_index(&idx).unwrap();
        let step = (bytes.len() / 61).max(1);
        for n in (0..bytes.len()).step_by(step) {
            assert!(decode_index(&bytes[..n]).is_err(), "prefix {n} decoded");
        }
        assert!(decode_index(&[]).is_err());
    }

    #[test]
    fn tmp_path_is_a_unique_sibling() {
        let a = tmp_path(Path::new("/a/b/snap.hint"));
        let b = tmp_path(Path::new("/a/b/snap.hint"));
        assert_ne!(a, b, "each save must get its own temp file");
        for p in [&a, &b] {
            assert_eq!(p.parent(), Some(Path::new("/a/b")));
            let name = p.file_name().unwrap().to_str().unwrap();
            assert_eq!(
                tmp_sibling_pid(name, "snap.hint"),
                Some(Some(std::process::id())),
                "{name} must carry this process's pid"
            );
        }
    }

    #[test]
    fn tmp_sibling_classifier_accepts_temps_and_rejects_bystanders() {
        assert_eq!(tmp_sibling_pid("snap.tmp", "snap"), Some(None)); // legacy
        assert_eq!(tmp_sibling_pid("snap.42-7.tmp", "snap"), Some(Some(42)));
        for name in [
            "snap",         // the snapshot itself
            "snap.42.tmp",  // no seq
            "snap.x-7.tmp", // non-numeric pid
            "snap.42-.tmp", // empty seq
            "snap.42-x.tmp",
            "other.42-7.tmp", // different base
            "snap2.42-7.tmp", // prefix but wrong base
        ] {
            assert_eq!(tmp_sibling_pid(name, "snap"), None, "{name}");
        }
    }

    #[test]
    fn save_sweeps_stale_temps_but_spares_this_process_in_flight_ones() {
        let dir = std::env::temp_dir().join(format!("hint-tmp-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.hint");
        // a dead process's orphan, the legacy fixed name, and one of our
        // own in-flight temps
        let foreign = dir.join("snap.hint.999999-0.tmp");
        let legacy = dir.join("snap.hint.tmp");
        let ours = tmp_path(&path);
        for p in [&foreign, &legacy, &ours] {
            std::fs::write(p, b"junk").unwrap();
        }
        let idx = sample_index(2);
        write_index(&idx, &path, &mut StdSnapshotIo::default()).unwrap();
        assert!(!foreign.exists(), "foreign orphan must be swept");
        assert!(!legacy.exists(), "legacy temp must be swept");
        assert!(ours.exists(), "own in-flight temp must survive");
        assert_eq!(tmp_siblings(&path), vec![ours.clone()]);
        std::fs::remove_file(&ours).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_saves_to_one_path_commit_a_coherent_snapshot() {
        let dir = std::env::temp_dir().join(format!("hint-concurrent-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.hint");
        let a = sample_index(1);
        let b = sample_index(3);
        std::thread::scope(|s| {
            for idx in [&a, &b] {
                s.spawn(|| {
                    for _ in 0..8 {
                        write_index(idx, &path, &mut StdSnapshotIo::default()).unwrap();
                    }
                });
            }
        });
        // the survivor decodes to exactly one of the two saved states —
        // interleaved temp writes would fail the CRC/footer checks
        let got = read_index(&path, &mut StdSnapshotIo::default()).unwrap();
        let want_a = encode_index(&a).unwrap();
        let want_b = encode_index(&b).unwrap();
        let got_bytes = encode_index(&got).unwrap();
        assert!(
            got_bytes == want_a || got_bytes == want_b,
            "committed snapshot is neither writer's state"
        );
        assert!(tmp_siblings(&path).is_empty(), "temps must not leak");
        std::fs::remove_dir_all(&dir).ok();
    }
}
