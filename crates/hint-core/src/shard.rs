//! Domain-range sharding: a [`ShardedIndex`] front-end that splits the
//! domain into `K` contiguous shards, each owning an independent inner
//! index over its slice of the data.
//!
//! This is the serving-side counterpart of the paper's hierarchical
//! partitioning: the domain is cut into `K` contiguous ranges at build
//! time, every interval is stored in each shard its extent overlaps, and
//! a query only touches the shards its range overlaps — usually one. The
//! originals/replicas discipline of §3.2 carries over wholesale:
//!
//! * an interval is an **original** in the shard containing its start
//!   point and a **replica** in every later shard it crosses into;
//! * the *first* shard a query is routed to reports everything it finds
//!   (any interval there overlapping the query does so at or after the
//!   query's own start);
//! * every *later* routed shard suppresses its replicas on emit — their
//!   overlap with the query began in an earlier shard, which already
//!   reported them.
//!
//! Each result is therefore emitted exactly once, with no cross-shard
//! result-set intersection and no post-hoc dedup pass.
//!
//! Queries route through [`ShardedIndex::query_sink`] (sequential, shard
//! order) or the batched executor in [`crate::executor`], which fans a
//! whole batch out across shards with one thread per shard and merges the
//! per-shard results back into the callers' sinks ([`MergeableSink`]).
//! Writes route to exactly the shards whose ranges the new interval
//! overlaps ([`MutableIndex`]).
//!
//! ```
//! use hint_core::{Hint, Interval, IntervalIndex, RangeQuery, ShardedIndex};
//!
//! let data: Vec<Interval> = (0..1_000)
//!     .map(|i| Interval::new(i, i * 10, i * 10 + 25))
//!     .collect();
//! // four contiguous domain shards, each a fully-optimized HINT^m
//! let sharded = ShardedIndex::build_with(&data, 4, |slice, lo, hi| {
//!     Hint::build_with_domain(slice, hint_core::Domain::new(lo, hi, 10), Default::default())
//! });
//! assert_eq!(sharded.shard_count(), 4);
//! assert_eq!(sharded.count(RangeQuery::new(0, 9_999)), 1_000);
//! ```

use crate::interval::{Interval, IntervalId, RangeQuery, Time};
use crate::sink::QuerySink;
use crate::IntervalIndex;
use std::collections::{HashMap, HashSet};

/// Write interface shared by the updatable indexes in the workspace
/// ([`crate::Hint`], [`crate::HintMBase`], [`crate::HintMSubs`],
/// [`crate::HybridHint`], [`crate::ConcurrentHint`]), so generic
/// front-ends like [`ShardedIndex`] can route inserts and deletes without
/// knowing the concrete index type.
///
/// `Clone` is a supertrait so shard owners can publish epoch images of
/// their state for read replication (see [`crate::ShardPool`]); sealed
/// indexes share their arenas via `Arc`, so the clone is shallow where
/// it matters.
pub trait MutableIndex: IntervalIndex + Clone {
    /// Inserts an interval.
    fn insert(&mut self, s: Interval);

    /// Logically deletes an interval (matched by id and endpoints),
    /// returning whether it was present.
    fn delete(&mut self, s: &Interval) -> bool;

    /// The hierarchy depth `m` this index currently runs at, if the
    /// index is re-tunable. The default (`None`) marks the index as not
    /// participating in serve-time `m` re-tuning.
    fn tuned_m(&self) -> Option<u32> {
        None
    }

    /// The `m` the §3.3 cost model would pick for this index's *current
    /// contents* under the observed query-extent `mix`
    /// ([`crate::cost_model::retuned_m`]) — guaranteed to be no worse
    /// than [`tuned_m`](Self::tuned_m) on that mix. `None` when the
    /// index is not re-tunable (or empty: nothing to model).
    fn retune_m(&self, _mix: &crate::stats::ExtentMix) -> Option<u32> {
        None
    }

    /// Rebuilds the index at depth `m` with identical contents, domain
    /// bounds and configuration, returning it sealed — or `None` when
    /// the index does not support re-tuning. Queries against the rebuilt
    /// index are bit-identical to the original.
    fn rebuild_with_m(&self, _m: u32) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

impl MutableIndex for crate::Hint {
    fn insert(&mut self, s: Interval) {
        crate::Hint::insert(self, s)
    }
    fn delete(&mut self, s: &Interval) -> bool {
        crate::Hint::delete(self, s)
    }
}

impl MutableIndex for crate::HintMBase {
    fn insert(&mut self, s: Interval) {
        crate::HintMBase::insert(self, s)
    }
    fn delete(&mut self, s: &Interval) -> bool {
        crate::HintMBase::delete(self, s)
    }
}

impl MutableIndex for crate::HintMSubs {
    fn insert(&mut self, s: Interval) {
        crate::HintMSubs::insert(self, s)
    }
    fn delete(&mut self, s: &Interval) -> bool {
        crate::HintMSubs::delete(self, s)
    }
    fn tuned_m(&self) -> Option<u32> {
        Some(self.domain().m())
    }
    fn retune_m(&self, mix: &crate::stats::ExtentMix) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        let data = self.intervals();
        let input = crate::cost_model::ModelInput {
            span: self.domain().max() - self.domain().min(),
            ..crate::cost_model::ModelInput::from_data(&data, 0.0)
        };
        let current = self.domain().m();
        let betas = crate::cost_model::Betas::DEFAULT;
        let tol = 0.03; // the paper's convergence tolerance
                        // rebuilds above m = 26 would violate the per-partition layout
                        // bound, so clamp — and re-check the within-tolerance guarantee
                        // after clamping (a clamped candidate is no longer the model's
                        // free choice)
        let m = crate::cost_model::retuned_m(&input, &betas, tol, mix, current).clamp(1, 26);
        if crate::cost_model::mix_cost(&input, &betas, m, mix)
            <= crate::cost_model::mix_cost(&input, &betas, current, mix) * (1.0 + tol)
        {
            Some(m)
        } else {
            Some(current)
        }
    }
    fn rebuild_with_m(&self, m: u32) -> Option<Self> {
        Some(crate::HintMSubs::rebuild_with_m(self, m))
    }
}

impl MutableIndex for crate::HybridHint {
    fn insert(&mut self, s: Interval) {
        crate::HybridHint::insert(self, s)
    }
    fn delete(&mut self, s: &Interval) -> bool {
        crate::HybridHint::delete(self, s)
    }
}

impl MutableIndex for crate::ConcurrentHint {
    fn insert(&mut self, s: Interval) {
        crate::ConcurrentHint::insert(self, s)
    }
    fn delete(&mut self, s: &Interval) -> bool {
        crate::ConcurrentHint::delete(self, s)
    }
}

/// One contiguous domain slice with its inner index.
#[derive(Clone)]
pub(crate) struct Shard<I> {
    /// Inclusive lower bound of the shard's domain range.
    pub(crate) start: Time,
    /// Inclusive upper bound of the shard's domain range.
    pub(crate) end: Time,
    /// Inner index over every interval overlapping `[start, end]`.
    pub(crate) index: I,
    /// Ids of the replicas: intervals stored here whose start point lies
    /// in an earlier shard (`st < start`). Suppressed on emit whenever
    /// this shard is not the first one a query routes to.
    pub(crate) replicas: HashSet<IntervalId>,
}

/// Forwards emits to an inner sink, optionally suppressing replica ids —
/// the dedup-on-emit half of the sharding scheme. With `replicas: None`
/// (first routed shard) it is a transparent pass-through that keeps the
/// bulk `emit_slice` fast path.
pub(crate) struct FilterSink<'a, S: QuerySink + ?Sized> {
    pub(crate) inner: &'a mut S,
    pub(crate) replicas: Option<&'a HashSet<IntervalId>>,
}

impl<S: QuerySink + ?Sized> QuerySink for FilterSink<'_, S> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        if let Some(replicas) = self.replicas {
            if replicas.contains(&id) {
                return;
            }
        }
        self.inner.emit(id);
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        match self.replicas {
            None => self.inner.emit_slice(ids),
            Some(replicas) => {
                // bulk-forward maximal replica-free runs
                let mut run = 0;
                for (i, id) in ids.iter().enumerate() {
                    if replicas.contains(id) {
                        if run < i {
                            self.inner.emit_slice(&ids[run..i]);
                        }
                        run = i + 1;
                    }
                }
                if run < ids.len() {
                    self.inner.emit_slice(&ids[run..]);
                }
            }
        }
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        self.inner.is_saturated()
    }

    /// Zero-copy pass-through: only when nothing needs suppressing can a
    /// comparison-free run cross the shard boundary as a handle.
    #[inline]
    fn wants_arenas(&self) -> bool {
        self.replicas.is_none() && self.inner.wants_arenas()
    }

    #[inline]
    fn emit_arena(&mut self, run: &crate::sink::ArenaRun) {
        match self.replicas {
            None => self.inner.emit_arena(run),
            // a suppressing filter must inspect every id; fall back to
            // the chunked slice scan the arena run stands in for
            Some(_) => {
                for chunk in run.as_slice().chunks(crate::sink::SATURATION_POLL) {
                    if self.is_saturated() {
                        return;
                    }
                    self.emit_slice(chunk);
                }
            }
        }
    }
}

impl<I> Shard<I> {
    /// The copy of `s` stored in this shard: its extent clipped to the
    /// shard's domain range. Every shard-local query is likewise confined
    /// to the shard range, so clipping never changes which local queries
    /// an interval overlaps — and it keeps each inner index's fixed
    /// domain tight. Replica classification uses the *unclipped* start.
    pub(crate) fn clip(&self, s: &Interval) -> Interval {
        Interval {
            id: s.id,
            st: s.st.max(self.start),
            end: s.end.min(self.end),
        }
    }
}

impl<I: IntervalIndex> Shard<I> {
    /// Runs the shard-local portion of `q` into `sink`, suppressing
    /// replicas unless this is the first shard the query routed to.
    pub(crate) fn query_local<S: QuerySink + ?Sized>(
        &self,
        lq: RangeQuery,
        is_first: bool,
        sink: &mut S,
    ) {
        let replicas = (!is_first && !self.replicas.is_empty()).then_some(&self.replicas);
        let mut filter = FilterSink {
            inner: sink,
            replicas,
        };
        self.index.query_sink(lq, &mut filter);
    }
}

/// The published-epoch handle for one shard under read replication: the
/// owning worker re-publishes an `Arc` image of its shard after every
/// mutation, and readers pick the current epoch up at batch boundaries.
/// Old epochs drain by refcount — a long enumeration pinned to epoch
/// `e` never stalls the publication of `e + 1`, and a reseal never
/// invalidates an in-flight walk.
pub(crate) struct EpochSlot<I> {
    current: parking_lot::RwLock<std::sync::Arc<Shard<I>>>,
    epoch: std::sync::atomic::AtomicU64,
}

impl<I> EpochSlot<I> {
    pub(crate) fn new(shard: std::sync::Arc<Shard<I>>) -> Self {
        Self {
            current: parking_lot::RwLock::new(shard),
            epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Swaps in a freshly published shard image, bumping the epoch. The
    /// swap and the bump share the write critical section so a pin never
    /// pairs an image with the wrong epoch number.
    pub(crate) fn publish(&self, shard: std::sync::Arc<Shard<I>>) {
        let mut cur = self.current.write();
        self.epoch
            .fetch_add(1, std::sync::atomic::Ordering::Release);
        *cur = shard;
    }

    /// Pins the currently published image: an `Arc` clone under the read
    /// lock, valid (and immutable) for as long as the pin is held.
    pub(crate) fn pin(&self) -> EpochPin<I> {
        let guard = self.current.read();
        EpochPin {
            epoch: self.epoch.load(std::sync::atomic::Ordering::Acquire),
            shard: std::sync::Arc::clone(&guard),
        }
    }
}

/// A pinned published epoch of one shard (see
/// [`crate::ShardPool::pin_epochs`]). Queries through the pin run
/// against the image that was current when the pin was taken —
/// bit-identical regardless of later writes, seals, or retunes — so a
/// pin set is a consistent point-in-time read view of the pool.
pub struct EpochPin<I> {
    epoch: u64,
    shard: std::sync::Arc<Shard<I>>,
}

impl<I> EpochPin<I> {
    /// The epoch number this pin captured (bumped by every publication).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Inclusive `[start, end]` domain range of the pinned shard.
    pub fn bounds(&self) -> (Time, Time) {
        (self.shard.start, self.shard.end)
    }

    pub(crate) fn shard(&self) -> &Shard<I> {
        &self.shard
    }
}

/// Runs a solo query against a pinned epoch set (one pin per shard,
/// ascending domain order — the shape [`crate::ShardPool::pin_epochs`]
/// returns): routed shards are visited in order with the same boundary
/// clipping and dedup-on-emit as [`ShardedIndex::query_sink`], so the
/// results are bit-identical to a live query at the pinned state.
pub fn query_epoch_pins<I: IntervalIndex, S: QuerySink + ?Sized>(
    pins: &[EpochPin<I>],
    q: RangeQuery,
    sink: &mut S,
) {
    let lo = pins
        .partition_point(|p| p.bounds().0 <= q.st)
        .saturating_sub(1);
    let hi = pins
        .partition_point(|p| p.bounds().0 <= q.end)
        .saturating_sub(1);
    for (off, pin) in pins[lo..=hi].iter().enumerate() {
        if sink.is_saturated() {
            return;
        }
        let j = lo + off;
        let (start, end) = pin.bounds();
        let lq = RangeQuery {
            st: if j == lo { q.st } else { start },
            end: if j == hi { q.end } else { end },
        };
        pin.shard().query_local(lq, j == lo, sink);
    }
}

/// A domain-range sharded front-end over `K` inner interval indexes.
///
/// Built by [`build_with`](Self::build_with): the domain `[min, max]`
/// observed in the data (or given explicitly) is split into `K`
/// equal-width contiguous ranges, and the supplied closure builds one
/// inner index per shard from the intervals overlapping that range.
/// Boundary-crossing intervals are replicated into every shard they
/// overlap and deduplicated on emit (see the module docs), so any exact
/// inner index yields an exact sharded index.
///
/// * Solo queries ([`query_sink`](Self::query_sink)) visit the routed
///   shards sequentially in domain order.
/// * Batches ([`IntervalIndex::query_batch`] and
///   [`query_batch_merge`](Self::query_batch_merge)) fan out across
///   shards in parallel — one thread per shard with routed work — and
///   merge the per-shard results back in shard order, so batched results
///   are bit-identical to the solo path.
/// * Writes ([`insert`](Self::insert) / [`delete`](Self::delete), for
///   inner indexes implementing [`MutableIndex`]) route to exactly the
///   shards the interval overlaps.
/// * [`IntervalIndex::seal`] seals every shard in place.
///
/// Interval ids must be unique across the index (the workspace-wide
/// convention): replica suppression is keyed by id, so two live
/// intervals sharing an id would shadow each other at shard boundaries.
#[derive(Clone)]
pub struct ShardedIndex<I> {
    pub(crate) shards: Vec<Shard<I>>,
    /// Live (deduplicated) interval count across all shards.
    pub(crate) live: usize,
}

impl<I: IntervalIndex> ShardedIndex<I> {
    /// Builds a sharded index over `data`, inferring the domain bounds
    /// from the data. `build` is called once per shard with the shard's
    /// interval slice and its inclusive domain range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `data` is empty (use
    /// [`build_with_domain`](Self::build_with_domain) for explicit
    /// bounds) or `k == 0`.
    pub fn build_with<F>(data: &[Interval], k: usize, build: F) -> Self
    where
        F: FnMut(&[Interval], Time, Time) -> I,
    {
        assert!(
            !data.is_empty(),
            "cannot infer shard bounds from an empty dataset"
        );
        let mut min = Time::MAX;
        let mut max = 0;
        for s in data {
            min = min.min(s.st);
            max = max.max(s.end);
        }
        Self::build_with_domain(data, min, max, k, build)
    }

    /// Builds a sharded index with explicit domain bounds `[min, max]`.
    /// `k` is clamped so every shard spans at least one domain value.
    ///
    /// # Panics
    /// Panics if `min > max` or `k == 0`.
    pub fn build_with_domain<F>(
        data: &[Interval],
        min: Time,
        max: Time,
        k: usize,
        mut build: F,
    ) -> Self
    where
        F: FnMut(&[Interval], Time, Time) -> I,
    {
        assert!(
            min <= max,
            "shard domain min ({min}) must be <= max ({max})"
        );
        assert!(k >= 1, "shard count must be >= 1");
        let span = (max - min).saturating_add(1); // may saturate on the full u64 domain
        let k = (k as u64).min(span).max(1);
        let mut shards = Vec::with_capacity(k as usize);
        let mut slice: Vec<Interval> = Vec::new();
        for i in 0..k {
            let start = min + ((span as u128 * i as u128) / k as u128) as u64;
            let end = if i + 1 < k {
                min + ((span as u128 * (i + 1) as u128) / k as u128) as u64 - 1
            } else {
                max
            };
            slice.clear();
            let mut replicas = HashSet::new();
            for s in data.iter().filter(|s| s.st <= end && s.end >= start) {
                if s.st < start {
                    replicas.insert(s.id);
                }
                // store the extent clipped to the shard range (the inner
                // index's domain); see `Shard::clip`
                slice.push(Interval {
                    id: s.id,
                    st: s.st.max(start),
                    end: s.end.min(end),
                });
            }
            let index = build(&slice, start, end);
            shards.push(Shard {
                start,
                end,
                index,
                replicas,
            });
        }
        // intervals wholly outside [min, max] land in no shard; count
        // only what is actually stored so len() matches a full-domain
        // count()
        let live = data.iter().filter(|s| s.end >= min && s.st <= max).count();
        Self { shards, live }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The inclusive domain range `[start, end]` of each shard, in order.
    pub fn shard_bounds(&self) -> Vec<(Time, Time)> {
        self.shards.iter().map(|s| (s.start, s.end)).collect()
    }

    /// Per-shard live entry counts (replicas included) — the balance a
    /// deployment would watch.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.index.len()).collect()
    }

    /// Total number of replica entries across shards (the storage price
    /// of boundary-crossing intervals).
    pub fn replicated(&self) -> usize {
        self.shards.iter().map(|s| s.replicas.len()).sum()
    }

    /// Index of the shard owning domain point `t` (clamped to the first /
    /// last shard for out-of-range points).
    #[inline]
    pub(crate) fn shard_of(&self, t: Time) -> usize {
        self.shards
            .partition_point(|s| s.start <= t)
            .saturating_sub(1)
    }

    /// The contiguous run of shards a query's range overlaps.
    #[inline]
    pub(crate) fn route(&self, q: RangeQuery) -> (usize, usize) {
        (self.shard_of(q.st), self.shard_of(q.end))
    }

    /// The shard-local sub-query for shard `j`: interior boundaries are
    /// clipped to the shard range, while the query's own endpoints are
    /// kept on the first/last routed shard (they may lie outside the
    /// sharded domain; the inner index clamps exactly).
    #[inline]
    pub(crate) fn local_query(&self, j: usize, q: RangeQuery, lo: usize, hi: usize) -> RangeQuery {
        let st = if j == lo { q.st } else { self.shards[j].start };
        let end = if j == hi { q.end } else { self.shards[j].end };
        RangeQuery { st, end }
    }

    /// Reports all intervals overlapping `q` exactly once, visiting the
    /// routed shards sequentially in domain order.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        let (lo, hi) = self.route(q);
        for j in lo..=hi {
            if sink.is_saturated() {
                return;
            }
            let lq = self.local_query(j, q, lo, hi);
            self.shards[j].query_local(lq, j == lo, sink);
        }
    }

    /// Enumerates all intervals overlapping `q` into `out`.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Decomposes the index into its shards and live count — the handoff
    /// that moves each shard into its [`crate::ShardPool`] worker thread.
    pub(crate) fn into_parts(self) -> (Vec<Shard<I>>, usize) {
        (self.shards, self.live)
    }

    /// Reassembles an index from parts (the inverse of
    /// [`Self::into_parts`], used when a pool shuts down).
    pub(crate) fn from_parts(shards: Vec<Shard<I>>, live: usize) -> Self {
        Self { shards, live }
    }

    /// Approximate heap footprint: inner indexes plus replica bookkeeping.
    pub fn size_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.index.size_bytes()
                    + s.replicas.len() * std::mem::size_of::<IntervalId>() * 2
                    + std::mem::size_of::<Shard<I>>()
            })
            .sum()
    }
}

impl<I: MutableIndex> ShardedIndex<I> {
    /// Inserts an interval into every shard its extent overlaps (clipped
    /// to each shard's range), registering it as a replica wherever its
    /// start point lies in an earlier shard.
    ///
    /// # Panics
    /// Panics if the interval falls outside the sharded domain — the
    /// same contract as the inner indexes' fixed-domain `insert`.
    pub fn insert(&mut self, s: Interval) {
        self.assert_in_domain(&s);
        let lo = self.shard_of(s.st);
        let hi = self.shard_of(s.end);
        for shard in &mut self.shards[lo..=hi] {
            let clipped = shard.clip(&s);
            shard.index.insert(clipped);
            if s.st < shard.start {
                shard.replicas.insert(s.id);
            }
        }
        self.live += 1;
    }

    /// Deletes an interval from every shard holding a copy, returning
    /// whether it was present.
    ///
    /// As with the inner indexes' `delete`, the caller passes the exact
    /// interval previously inserted (same id and endpoints). The shard
    /// owning the start point arbitrates presence: if it has no match,
    /// nothing is mutated and `false` is returned; replica markers are
    /// only dropped in shards whose inner delete actually matched, so a
    /// contract-violating delete (endpoints that were never inserted)
    /// cannot corrupt more dedup state than the inner indexes themselves
    /// would.
    pub fn delete(&mut self, s: &Interval) -> bool {
        if s.st < self.shards[0].start || s.end > self.shards[self.shards.len() - 1].end {
            return false; // out-of-domain intervals were never inserted
        }
        let lo = self.shard_of(s.st);
        let hi = self.shard_of(s.end);
        let owner = &mut self.shards[lo];
        let clipped = owner.clip(s);
        if !owner.index.delete(&clipped) {
            return false;
        }
        owner.replicas.remove(&s.id);
        for shard in &mut self.shards[lo + 1..=hi] {
            let clipped = shard.clip(s);
            if shard.index.delete(&clipped) {
                shard.replicas.remove(&s.id);
            }
        }
        self.live -= 1;
        true
    }

    /// Reseals shard `j`'s inner index at hierarchy depth `m` (same
    /// contents, same shard range), returning whether the inner index
    /// supported the rebuild. Results are bit-identical before and
    /// after — only the shard's traversal cost (and replication) change.
    /// This is the in-place spelling of serve-time re-tuning; the worker
    /// pool ([`crate::ShardPool`]) runs the same rebuild on the owning
    /// worker thread.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    pub fn retune_shard(&mut self, j: usize, m: u32) -> bool {
        match self.shards[j].index.rebuild_with_m(m) {
            Some(rebuilt) => {
                self.shards[j].index = rebuilt;
                true
            }
            None => false,
        }
    }

    fn assert_in_domain(&self, s: &Interval) {
        let (min, max) = (self.shards[0].start, self.shards[self.shards.len() - 1].end);
        assert!(
            s.st >= min && s.end <= max,
            "interval [{}, {}] outside the sharded domain [{min}, {max}]",
            s.st,
            s.end,
        );
    }
}

impl ShardedIndex<crate::HintMSubs> {
    /// Reconstructs the live interval set `(id, st, end)` from the
    /// shards' own storage, sorted by id.
    ///
    /// Shards store boundary-crossing intervals as *clipped* pieces
    /// (each piece covers the interval's extent within that shard's
    /// range, see [`Self::build_with_domain`]), so the true interval is
    /// re-stitched here: pieces of one id are contiguous across adjacent
    /// shards, making `(min st, max end)` over its pieces exactly the
    /// stored extent. This is the substrate for serving-layer record
    /// tables (id → interval lookups for aggregation and Allen verbs)
    /// after a restore or over an index built from pre-loaded data.
    pub fn intervals(&self) -> Vec<Interval> {
        let mut stitched: HashMap<IntervalId, (Time, Time)> = HashMap::with_capacity(self.live);
        for shard in &self.shards {
            for piece in shard.index.intervals() {
                stitched
                    .entry(piece.id)
                    .and_modify(|(st, end)| {
                        *st = (*st).min(piece.st);
                        *end = (*end).max(piece.end);
                    })
                    .or_insert((piece.st, piece.end));
            }
        }
        let mut out: Vec<Interval> = stitched
            .into_iter()
            .map(|(id, (st, end))| Interval { id, st, end })
            .collect();
        out.sort_unstable_by_key(|s| s.id);
        out
    }
}

impl<I: IntervalIndex + Sync> IntervalIndex for ShardedIndex<I> {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        ShardedIndex::query_sink(self, q, sink)
    }

    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        ShardedIndex::query(self, q, out)
    }

    fn seal(&mut self) {
        for shard in &mut self.shards {
            shard.index.seal();
        }
    }

    fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        ShardedIndex::query_batch(self, queries, sinks)
    }

    fn size_bytes(&self) -> usize {
        ShardedIndex::size_bytes(self)
    }

    fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;
    use crate::{HintMSubs, SubsConfig};

    fn data() -> Vec<Interval> {
        (0..500)
            .map(|i| {
                let st = (i * 37) % 4_000;
                Interval::new(i, st, (st + (i % 13) * 40).min(4_095))
            })
            .collect()
    }

    fn sharded(k: usize) -> ShardedIndex<HintMSubs> {
        ShardedIndex::build_with(&data(), k, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, crate::Domain::new(lo, hi, 8), SubsConfig::full())
        })
    }

    #[test]
    fn boundaries_partition_the_domain_contiguously() {
        let idx = sharded(4);
        let bounds = idx.shard_bounds();
        assert_eq!(bounds.len(), 4);
        for w in bounds.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0, "shards must tile the domain");
        }
        assert_eq!(bounds[0].0, 0); // first shard starts at the data min
    }

    #[test]
    fn replicas_are_exactly_the_boundary_crossers() {
        let idx = sharded(4);
        let bounds = idx.shard_bounds();
        for (shard_idx, (lo, _)) in bounds.iter().enumerate() {
            let expect: HashSet<IntervalId> = data()
                .iter()
                .filter(|s| s.st < *lo && s.end >= *lo)
                .map(|s| s.id)
                .collect();
            assert_eq!(idx.shards[shard_idx].replicas, expect, "shard {shard_idx}");
        }
    }

    #[test]
    fn every_k_matches_oracle_with_no_duplicates() {
        let oracle = ScanOracle::new(&data());
        for k in [1, 2, 3, 5, 8, 64] {
            let idx = sharded(k);
            for st in (0..4_000u64).step_by(173) {
                let q = RangeQuery::new(st, (st + 700).min(4_095));
                let mut got = Vec::new();
                idx.query(q, &mut got);
                let n = got.len();
                got.sort_unstable();
                got.dedup();
                assert_eq!(n, got.len(), "k={k} emitted duplicates on {q:?}");
                assert_eq!(got, oracle.query_sorted(q), "k={k} on {q:?}");
            }
        }
    }

    #[test]
    fn k_larger_than_span_is_clamped() {
        let tiny = vec![Interval::new(0, 10, 12), Interval::new(1, 11, 13)];
        let idx = ShardedIndex::build_with(&tiny, 64, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, crate::Domain::new(lo, hi, 4), SubsConfig::full())
        });
        assert!(idx.shard_count() <= 4); // span is 4 values
        assert_eq!(idx.count(RangeQuery::new(0, 100)), 2);
    }

    #[test]
    fn writes_route_to_owning_shards() {
        let mut idx = sharded(4);
        let mut oracle = ScanOracle::new(&data());
        let bounds = idx.shard_bounds();
        // a boundary-crossing insert spanning shards 1-2
        let cross = Interval::new(9_000, bounds[1].1 - 5, bounds[2].0 + 5);
        idx.insert(cross);
        oracle.insert(cross);
        assert!(idx.shards[2].replicas.contains(&9_000));
        let q = RangeQuery::new(bounds[1].1, bounds[2].0);
        let mut got = Vec::new();
        idx.query(q, &mut got);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(q));
        // delete removes every copy
        assert!(idx.delete(&cross));
        assert!(!idx.delete(&cross));
        assert!(!idx.shards[2].replicas.contains(&9_000));
        let mut got = Vec::new();
        idx.query(q, &mut got);
        got.sort_unstable();
        assert!(oracle.delete(9_000));
        assert_eq!(got, oracle.query_sorted(q));
    }

    #[test]
    fn delete_of_absent_interval_mutates_nothing() {
        let mut idx = sharded(4);
        let len_before = idx.len();
        let replicas_before: Vec<_> = idx.shards.iter().map(|s| s.replicas.clone()).collect();
        // id never inserted
        assert!(!idx.delete(&Interval::new(777_777, 100, 3_000)));
        // entirely out of domain
        assert!(!idx.delete(&Interval::new(0, 50_000, 60_000)));
        assert_eq!(idx.len(), len_before);
        for (shard, before) in idx.shards.iter().zip(&replicas_before) {
            assert_eq!(&shard.replicas, before, "replica set must be untouched");
        }
    }

    #[test]
    fn out_of_domain_intervals_are_not_counted_live() {
        let data = vec![
            Interval::new(0, 10, 20),
            Interval::new(1, 500, 600), // wholly outside the explicit bounds
            Interval::new(2, 90, 120),  // straddles the upper bound: stored clipped
        ];
        let idx = ShardedIndex::build_with_domain(&data, 0, 100, 2, |slice, lo, hi| {
            HintMSubs::build_with_domain(slice, crate::Domain::new(lo, hi, 4), SubsConfig::full())
        });
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.count(RangeQuery::new(0, 100)), idx.len());
    }

    #[test]
    fn filter_sink_suppresses_only_replicas() {
        let mut out: Vec<IntervalId> = Vec::new();
        let replicas: HashSet<IntervalId> = [2, 4].into_iter().collect();
        let mut f = FilterSink {
            inner: &mut out,
            replicas: Some(&replicas),
        };
        f.emit_slice(&[1, 2, 3, 4, 5]);
        f.emit(2);
        f.emit(6);
        assert_eq!(out, vec![1, 3, 5, 6]);
    }
}
