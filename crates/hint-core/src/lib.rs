//! # hint-core — HINT: A Hierarchical Index for Intervals in Main Memory
//!
//! A from-scratch Rust reproduction of *Christodoulou, Bouros, Mamoulis,
//! "HINT: A Hierarchical Index for Intervals in Main Memory", SIGMOD 2022*
//! (arXiv:2104.10939).
//!
//! HINT hierarchically decomposes the domain into `m + 1` levels of
//! `2^l` partitions each and assigns every interval to at most two
//! partitions per level (Algorithm 1). Partitions divide their contents
//! into *originals* and *replicas*, which cancels duplicate results and
//! minimizes data accesses; the §4 optimizations (subdivisions, sorting,
//! storage reduction, sparse merged tables, columnar decomposition) reduce
//! both comparisons and cache misses to near the minimum.
//!
//! ## Quick start
//!
//! ```
//! use hint_core::{FirstK, Hint, Interval, IntervalIndex, RangeQuery};
//!
//! let data = vec![
//!     Interval::new(1, 10, 25),
//!     Interval::new(2, 20, 40),
//!     Interval::new(3, 50, 60),
//! ];
//! let index = Hint::build(&data, 10);
//!
//! // Enumerate: collect all overlapping ids into a Vec.
//! let mut results = Vec::new();
//! index.query(RangeQuery::new(22, 55), &mut results);
//! results.sort_unstable();
//! assert_eq!(results, vec![1, 2, 3]);
//!
//! // Count and test without materializing a result vector.
//! assert_eq!(index.count(RangeQuery::new(22, 55)), 3);
//! assert!(index.exists(RangeQuery::new(12, 12)));
//! assert!(!index.exists(RangeQuery::new(45, 48)));
//!
//! // First-k: the scan stops as soon as k results are found.
//! let mut sink = FirstK::new(1);
//! index.query_sink(RangeQuery::new(22, 55), &mut sink);
//! assert_eq!(sink.len(), 1);
//!
//! // Seal into the read-optimized columnar (CSR) layout, then answer a
//! // whole batch with one shared level walk. Each sink receives exactly
//! // what a solo `query_sink` call would emit.
//! use hint_core::QuerySink;
//! let mut index = index;
//! index.seal();
//! let queries = [RangeQuery::new(0, 15), RangeQuery::new(45, 58)];
//! let (mut a, mut b) = (Vec::new(), Vec::new());
//! let mut sinks: Vec<&mut dyn QuerySink> = vec![&mut a, &mut b];
//! index.query_batch(&queries, &mut sinks);
//! assert_eq!((a, b), (vec![1], vec![3]));
//! ```
//!
//! ## Sharded parallel serving
//!
//! For serving-scale deployments, [`ShardedIndex`] splits the domain into
//! `K` contiguous shards (boundary-crossing intervals are replicated and
//! deduplicated on emit, mirroring the paper's originals/replicas
//! discipline) and executes query batches with one thread per shard,
//! merging the per-shard results deterministically back into each
//! caller's sink:
//!
//! ```
//! use hint_core::{
//!     CountSink, Domain, HintMSubs, Interval, IntervalIndex, RangeQuery, ShardedIndex,
//!     SubsConfig,
//! };
//!
//! let data: Vec<Interval> = (0..10_000)
//!     .map(|i| Interval::new(i, i * 13 % 100_000, (i * 13 % 100_000) + 40))
//!     .collect();
//!
//! // 1. Split the domain into 4 contiguous shards, one sealed HINT^m each.
//! let mut index = ShardedIndex::build_with(&data, 4, |slice, lo, hi| {
//!     HintMSubs::build_with_domain(slice, Domain::new(lo, hi, 10), SubsConfig::full())
//! });
//! index.seal(); // seal every shard into the columnar (CSR) layout
//!
//! // 2. Solo queries route to the shards they overlap (usually one).
//! let q = RangeQuery::new(5_000, 5_400);
//! let mut ids = Vec::new();
//! index.query(q, &mut ids);
//! assert_eq!(ids.len(), index.count(q));
//!
//! // 3. Batches fan out across shards in parallel (one thread per shard)
//! //    and merge back in shard order — results identical to solo calls.
//! let queries: Vec<RangeQuery> =
//!     (0..64).map(|i| RangeQuery::new(i * 1_500, i * 1_500 + 900)).collect();
//! let mut counts = vec![CountSink::new(); queries.len()];
//! index.query_batch_merge(&queries, &mut counts);
//! assert_eq!(counts[3].count(), index.count(queries[3]));
//!
//! // 4. Writes route to exactly the shards the interval overlaps.
//! index.insert(Interval::new(1_000_000, 70_000, 82_000));
//! assert!(index.delete(&Interval::new(1_000_000, 70_000, 82_000)));
//! ```
//!
//! Every query path reports through a [`QuerySink`]; see the [`sink`]
//! module for the full menu of consumers (collect, count, first-`k`,
//! exists, streaming callback).
//!
//! ## Index variants (the paper's ablation lattice)
//!
//! | Type | Paper | Role |
//! |------|-------|------|
//! | [`HintCf`] | §3.1 | comparison-free HINT for discrete domains |
//! | [`HintMBase`] | §3.2 | base HINT^m, top-down vs bottom-up (Fig 10) |
//! | [`HintMSubs`] | §4.1 | subdivisions + sort/sopt options (Fig 11); update-friendly |
//! | [`Hint`] | §4.2–4.3 | the flagship fully-optimized index (Fig 12–14) |
//! | [`HybridHint`] | §4.4 | main + delta for mixed workloads (Table 10) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allen;
pub mod assign;
pub mod concurrent;
pub mod cost_model;
pub mod domain;
pub mod env;
pub mod executor;
pub mod hint_cf;
pub mod hintm;
pub mod interval;
pub mod join;
pub mod oracle;
pub mod pool;
mod scan;
pub mod session;
pub mod shard;
pub mod sink;
pub mod stats;

pub use allen::{AllenIndex, AllenRelation, RelationFilter, SortedRecords};
pub use assign::{Assignment, SubKind};
pub use concurrent::ConcurrentHint;
pub use cost_model::{m_opt, measure_betas, mix_cost, retuned_m, Betas, ModelInput};
pub use domain::Domain;
pub use hint_cf::{CfLayout, HintCf};
pub use hintm::base::{Eval, HintMBase};
pub use hintm::delta::HybridHint;
pub use hintm::opt::{Hint, HintOptions};
pub use hintm::snapshot::{
    FaultIo, FaultKind, RestoreError, SnapshotIo, StdSnapshotIo, SNAPSHOT_VERSION,
};
pub use hintm::subs::{HintMSubs, SubsConfig};
pub use interval::{Interval, IntervalId, RangeQuery, Time, TOMBSTONE};
pub use join::{
    index_join, index_join_count, index_join_sink, sweep_join, sweep_join_count, sweep_join_sink,
    CountPairs, FirstKPairs, FnPairSink, PairSink,
};
pub use oracle::ScanOracle;
pub use pool::{PoolError, PoolStats, ShardPool};
pub use session::{RetuneEvent, RetunePolicy, Session, WriteError};
pub use shard::{query_epoch_pins, EpochPin, MutableIndex, ShardedIndex};
pub use sink::{
    ArenaRun, BucketHistogram, CollectSink, CountSink, ExistsSink, FirstK, FnSink, HandleSink,
    IntervalLookup, MergeableSink, QuerySink, ResultRun, SliceSink, TopKByDuration,
    ARENA_HANDLE_MIN,
};
pub use stats::{ExtentHistogram, ExtentMix, InflightGauge, QueryStats, WorkloadStats};

/// Common query interface implemented by every index in the workspace
/// (HINT variants here, the four competitor indexes in their own crates),
/// so that benchmarks and integration tests can drive them uniformly.
///
/// The one required query method is [`query_sink`](Self::query_sink):
/// indexes push results into a [`QuerySink`] and poll
/// [`QuerySink::is_saturated`] to stop early. Enumeration
/// ([`query`](Self::query)), counting ([`count`](Self::count)) and
/// existence testing ([`exists`](Self::exists)) are derived access modes
/// with default implementations over the appropriate sink; implementors
/// typically also override `query` with their monomorphized `Vec` path to
/// avoid dynamic dispatch on the enumeration hot loop.
pub trait IntervalIndex {
    /// Reports the ids of all intervals overlapping `q` into `sink`,
    /// stopping early once the sink is saturated.
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink);

    /// Reports the ids of all intervals overlapping `q` into `out`.
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.query_sink(q, out)
    }

    /// Number of intervals overlapping `q`, without materializing the
    /// result set.
    fn count(&self, q: RangeQuery) -> usize {
        let mut sink = CountSink::new();
        self.query_sink(q, &mut sink);
        sink.count()
    }

    /// True if any interval overlaps `q`; the scan stops at the first
    /// hit.
    fn exists(&self, q: RangeQuery) -> bool {
        let mut sink = ExistsSink::new();
        self.query_sink(q, &mut sink);
        sink.found()
    }

    /// Seals (freezes/compacts) the index into its read-optimized
    /// storage layout. For the HINT^m variants this flattens per-partition
    /// storage into the sealed columnar (CSR) arenas (or, for [`Hint`],
    /// compacts the merged tables), drops tombstones, and resets the
    /// update overlay; queries remain exact before, between and after
    /// seals. The default is a no-op for indexes without a distinct
    /// sealed layout.
    fn seal(&mut self) {}

    /// Evaluates a batch of queries, one sink per query. Results for each
    /// sink are exactly what a solo [`query_sink`](Self::query_sink) call
    /// would emit; implementations with sealed/merged storage override
    /// this with a shared level walk that sorts queries by their first
    /// relevant partition and traverses each level's arenas once for the
    /// whole batch. The default runs the queries independently.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        for (q, sink) in queries.iter().zip(sinks.iter_mut()) {
            self.query_sink(*q, &mut **sink);
        }
    }

    /// Statically-dispatched batch evaluation: like
    /// [`query_batch`](Self::query_batch), but the sink type is a
    /// monomorphization parameter, so indexes that override it (the
    /// sealed HINT^m walk) run their whole batch loop — level walk,
    /// regime dispatch, saturation polls, emissions — without a vtable
    /// call per result. This is the sharded executor's entry point: the
    /// merge path instantiates it per concrete sink type and the
    /// comparison-free regimes const-fold their zero-copy
    /// [`QuerySink::wants_arenas`] check away.
    ///
    /// `presorted` declares that the caller already ordered
    /// `queries`/`sinks` by query start (the batch-clustering planning
    /// pass does this once per batch, before fan-out), letting the
    /// sealed walk skip its own per-batch sort. It is a locality hint
    /// only: results are bit-identical either way, because each query's
    /// sink receives exactly its own per-level emissions regardless of
    /// the order queries are visited in.
    ///
    /// The default delegates to the dynamic
    /// [`query_batch`](Self::query_batch), preserving whatever
    /// shared-walk override an index has.
    ///
    /// # Panics
    /// Panics if `queries` and `sinks` have different lengths.
    fn query_batch_sinks<S: QuerySink>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [&mut S],
        presorted: bool,
    ) where
        Self: Sized,
    {
        let _ = presorted;
        assert_eq!(queries.len(), sinks.len(), "one sink per query");
        let mut dyns: Vec<&mut dyn QuerySink> = sinks
            .iter_mut()
            .map(|s| &mut **s as &mut dyn QuerySink)
            .collect();
        self.query_batch(queries, &mut dyns);
    }

    /// Approximate heap footprint in bytes (Table 8).
    fn size_bytes(&self) -> usize;

    /// Number of live intervals.
    fn len(&self) -> usize;

    /// True if the index holds no live intervals.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stabbing query at point `t` (`q.st == q.end == t`).
    fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }
}

impl IntervalIndex for Hint {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        Hint::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        Hint::query(self, q, out)
    }
    fn seal(&mut self) {
        Hint::seal(self)
    }
    fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        Hint::query_batch(self, queries, sinks)
    }
    fn size_bytes(&self) -> usize {
        Hint::size_bytes(self)
    }
    fn len(&self) -> usize {
        Hint::len(self)
    }
}

impl IntervalIndex for HintMBase {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        HintMBase::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        HintMBase::query(self, q, out)
    }
    fn seal(&mut self) {
        HintMBase::seal(self)
    }
    fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        HintMBase::query_batch(self, queries, sinks)
    }
    fn size_bytes(&self) -> usize {
        HintMBase::size_bytes(self)
    }
    fn len(&self) -> usize {
        HintMBase::len(self)
    }
}

impl IntervalIndex for HintMSubs {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        HintMSubs::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        HintMSubs::query(self, q, out)
    }
    fn seal(&mut self) {
        HintMSubs::seal(self)
    }
    fn query_batch(&self, queries: &[RangeQuery], sinks: &mut [&mut dyn QuerySink]) {
        HintMSubs::query_batch(self, queries, sinks)
    }
    fn query_batch_sinks<S: QuerySink>(
        &self,
        queries: &[RangeQuery],
        sinks: &mut [&mut S],
        presorted: bool,
    ) {
        HintMSubs::query_batch_sinks(self, queries, sinks, presorted)
    }
    fn size_bytes(&self) -> usize {
        HintMSubs::size_bytes(self)
    }
    fn len(&self) -> usize {
        HintMSubs::len(self)
    }
}

impl IntervalIndex for HintCf {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        HintCf::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        HintCf::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        HintCf::size_bytes(self)
    }
    fn len(&self) -> usize {
        HintCf::len(self)
    }
}

impl IntervalIndex for HybridHint {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        HybridHint::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        HybridHint::query(self, q, out)
    }
    fn seal(&mut self) {
        // §4.4 batch merge: fold the delta into a rebuilt (compact,
        // tombstone-free) main index.
        HybridHint::merge(self)
    }
    fn size_bytes(&self) -> usize {
        HybridHint::size_bytes(self)
    }
    fn len(&self) -> usize {
        HybridHint::len(self)
    }
}

impl IntervalIndex for ConcurrentHint {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        ConcurrentHint::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        ConcurrentHint::query(self, q, out)
    }
    fn seal(&mut self) {
        ConcurrentHint::merge(self)
    }
    fn size_bytes(&self) -> usize {
        ConcurrentHint::size_bytes(self)
    }
    fn len(&self) -> usize {
        ConcurrentHint::len(self)
    }
}

impl IntervalIndex for ScanOracle {
    fn query_sink(&self, q: RangeQuery, sink: &mut dyn QuerySink) {
        ScanOracle::query_sink(self, q, sink)
    }
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        ScanOracle::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<Interval>()
    }
    fn len(&self) -> usize {
        ScanOracle::len(self)
    }
}
