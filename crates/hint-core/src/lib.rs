//! # hint-core — HINT: A Hierarchical Index for Intervals in Main Memory
//!
//! A from-scratch Rust reproduction of *Christodoulou, Bouros, Mamoulis,
//! "HINT: A Hierarchical Index for Intervals in Main Memory", SIGMOD 2022*
//! (arXiv:2104.10939).
//!
//! HINT hierarchically decomposes the domain into `m + 1` levels of
//! `2^l` partitions each and assigns every interval to at most two
//! partitions per level (Algorithm 1). Partitions divide their contents
//! into *originals* and *replicas*, which cancels duplicate results and
//! minimizes data accesses; the §4 optimizations (subdivisions, sorting,
//! storage reduction, sparse merged tables, columnar decomposition) reduce
//! both comparisons and cache misses to near the minimum.
//!
//! ## Quick start
//!
//! ```
//! use hint_core::{Hint, Interval, RangeQuery};
//!
//! let data = vec![
//!     Interval::new(1, 10, 25),
//!     Interval::new(2, 20, 40),
//!     Interval::new(3, 50, 60),
//! ];
//! let index = Hint::build(&data, 10);
//! let mut results = Vec::new();
//! index.query(RangeQuery::new(22, 55), &mut results);
//! results.sort_unstable();
//! assert_eq!(results, vec![1, 2, 3]);
//! ```
//!
//! ## Index variants (the paper's ablation lattice)
//!
//! | Type | Paper | Role |
//! |------|-------|------|
//! | [`HintCf`] | §3.1 | comparison-free HINT for discrete domains |
//! | [`HintMBase`] | §3.2 | base HINT^m, top-down vs bottom-up (Fig 10) |
//! | [`HintMSubs`] | §4.1 | subdivisions + sort/sopt options (Fig 11); update-friendly |
//! | [`Hint`] | §4.2–4.3 | the flagship fully-optimized index (Fig 12–14) |
//! | [`HybridHint`] | §4.4 | main + delta for mixed workloads (Table 10) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allen;
pub mod assign;
pub mod concurrent;
pub mod cost_model;
pub mod domain;
pub mod hint_cf;
pub mod hintm;
pub mod interval;
pub mod join;
pub mod oracle;
pub mod stats;

pub use allen::{AllenIndex, AllenRelation};
pub use assign::{Assignment, SubKind};
pub use concurrent::ConcurrentHint;
pub use cost_model::{m_opt, measure_betas, Betas, ModelInput};
pub use domain::Domain;
pub use hint_cf::{CfLayout, HintCf};
pub use hintm::base::{Eval, HintMBase};
pub use hintm::delta::HybridHint;
pub use hintm::opt::{Hint, HintOptions};
pub use hintm::subs::{HintMSubs, SubsConfig};
pub use interval::{Interval, IntervalId, RangeQuery, Time, TOMBSTONE};
pub use join::{index_join, index_join_count, sweep_join, sweep_join_count};
pub use oracle::ScanOracle;
pub use stats::{QueryStats, WorkloadStats};

/// Common query interface implemented by every index in the workspace
/// (HINT variants here, the four competitor indexes in their own crates),
/// so that benchmarks and integration tests can drive them uniformly.
pub trait IntervalIndex {
    /// Reports the ids of all intervals overlapping `q` into `out`.
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>);

    /// Approximate heap footprint in bytes (Table 8).
    fn size_bytes(&self) -> usize;

    /// Number of live intervals.
    fn len(&self) -> usize;

    /// True if the index holds no live intervals.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stabbing query at point `t` (`q.st == q.end == t`).
    fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.query(RangeQuery::stab(t), out)
    }
}

impl IntervalIndex for Hint {
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        Hint::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        Hint::size_bytes(self)
    }
    fn len(&self) -> usize {
        Hint::len(self)
    }
}

impl IntervalIndex for HintMBase {
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        HintMBase::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        HintMBase::size_bytes(self)
    }
    fn len(&self) -> usize {
        HintMBase::len(self)
    }
}

impl IntervalIndex for HintMSubs {
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        HintMSubs::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        HintMSubs::size_bytes(self)
    }
    fn len(&self) -> usize {
        HintMSubs::len(self)
    }
}

impl IntervalIndex for HintCf {
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        HintCf::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        HintCf::size_bytes(self)
    }
    fn len(&self) -> usize {
        HintCf::len(self)
    }
}

impl IntervalIndex for HybridHint {
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        HybridHint::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        HybridHint::size_bytes(self)
    }
    fn len(&self) -> usize {
        HybridHint::len(self)
    }
}

impl IntervalIndex for ScanOracle {
    fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        ScanOracle::query(self, q, out)
    }
    fn size_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<Interval>()
    }
    fn len(&self) -> usize {
        ScanOracle::len(self)
    }
}
