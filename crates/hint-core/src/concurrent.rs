//! A thread-safe façade over the hybrid index (§6 future work:
//! parallelization): many concurrent readers, exclusive writers.
//!
//! HINT queries are read-only over immutable level tables, so a
//! `parking_lot::RwLock` around [`HybridHint`] gives linearizable mixed
//! workloads with uncontended read paths. Batch merges (§4.4) take the
//! write lock once instead of blocking readers per insert.

use crate::hintm::delta::HybridHint;
use crate::interval::{Interval, IntervalId, RangeQuery, Time};
use crate::sink::QuerySink;
use parking_lot::RwLock;

/// Shareable (`Sync`) interval index: `&ConcurrentHint` can be used from
/// any number of threads.
#[derive(Debug)]
pub struct ConcurrentHint {
    inner: RwLock<HybridHint>,
}

impl Clone for ConcurrentHint {
    /// Clones the underlying index under the read lock; the clone gets
    /// its own fresh lock.
    fn clone(&self) -> Self {
        Self {
            inner: RwLock::new(self.inner.read().clone()),
        }
    }
}

impl ConcurrentHint {
    /// Builds the index over `data` for raw domain `[min, max]` with
    /// `m + 1` levels (see [`HybridHint::new`]).
    pub fn new(data: &[Interval], min: Time, max: Time, m: u32) -> Self {
        Self {
            inner: RwLock::new(HybridHint::new(data, min, max, m)),
        }
    }

    /// Sets the delta-merge threshold (see
    /// [`HybridHint::with_merge_threshold`]).
    pub fn with_merge_threshold(self, threshold: usize) -> Self {
        Self {
            inner: RwLock::new(self.inner.into_inner().with_merge_threshold(threshold)),
        }
    }

    /// Range query under a shared read lock.
    pub fn query(&self, q: RangeQuery, out: &mut Vec<IntervalId>) {
        self.inner.read().query(q, out);
    }

    /// Range query into an arbitrary sink under a shared read lock. The
    /// lock is held until the sink saturates or the scan completes, so
    /// saturating sinks (first-`k`, exists) also shorten the critical
    /// section.
    ///
    /// The sink's `emit` runs **inside** the read critical section: it
    /// must not call back into this index (an [`Self::insert`],
    /// [`Self::delete`] or [`Self::merge`] from inside a sink deadlocks
    /// on the write lock). Collect first — e.g. via a `Vec` or
    /// [`crate::CollectSink`] — and mutate after the query returns.
    pub fn query_sink<S: QuerySink + ?Sized>(&self, q: RangeQuery, sink: &mut S) {
        self.inner.read().query_sink(q, sink);
    }

    /// Stabbing query under a shared read lock.
    pub fn stab(&self, t: Time, out: &mut Vec<IntervalId>) {
        self.inner.read().stab(t, out);
    }

    /// Inserts an interval under the write lock.
    pub fn insert(&self, s: Interval) {
        self.inner.write().insert(s);
    }

    /// Logically deletes an interval under the write lock.
    pub fn delete(&self, s: &Interval) -> bool {
        self.inner.write().delete(s)
    }

    /// Forces a delta merge under the write lock.
    pub fn merge(&self) {
        self.inner.write().merge();
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no live intervals remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.read().size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ScanOracle;

    fn lcg_data(n: u64, dom: u64, max_len: u64, seed: u64) -> Vec<Interval> {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..n)
            .map(|i| {
                let st = next() % dom;
                let len = next() % max_len;
                Interval::new(i, st, (st + len).min(dom - 1).max(st))
            })
            .collect()
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let data = lcg_data(2_000, 1 << 16, 2_000, 9);
        let idx = ConcurrentHint::new(&data, 0, (1 << 16) - 1, 12).with_merge_threshold(256);
        let writers = 4u64;
        let per_writer = 250u64;
        crossbeam::thread::scope(|s| {
            // writers insert disjoint id ranges
            for w in 0..writers {
                let idx = &idx;
                s.spawn(move |_| {
                    for i in 0..per_writer {
                        let id = 1_000_000 + w * per_writer + i;
                        let st = (id * 37) % 60_000;
                        idx.insert(Interval::new(id, st, st + 100));
                    }
                });
            }
            // readers hammer queries concurrently; result sets must always
            // be duplicate-free and contain only known ids
            for r in 0..4u64 {
                let idx = &idx;
                s.spawn(move |_| {
                    let mut out = Vec::new();
                    for i in 0..500u64 {
                        let st = ((i + r) * 131) % 60_000;
                        out.clear();
                        idx.query(RangeQuery::new(st, st + 500), &mut out);
                        let n = out.len();
                        out.sort_unstable();
                        out.dedup();
                        assert_eq!(n, out.len(), "duplicate under concurrency");
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(idx.len(), data.len() + (writers * per_writer) as usize);

        // final state matches an oracle built from the same operations
        let mut oracle = ScanOracle::new(&data);
        for w in 0..writers {
            for i in 0..per_writer {
                let id = 1_000_000 + w * per_writer + i;
                let st = (id * 37) % 60_000;
                oracle.insert(Interval::new(id, st, st + 100));
            }
        }
        let mut got = Vec::new();
        idx.query(RangeQuery::new(0, (1 << 16) - 1), &mut got);
        got.sort_unstable();
        assert_eq!(got, oracle.query_sorted(RangeQuery::new(0, (1 << 16) - 1)));
    }

    #[test]
    fn delete_and_merge_under_lock() {
        let data = lcg_data(500, 4_096, 100, 3);
        let idx = ConcurrentHint::new(&data, 0, 4_095, 10);
        assert!(idx.delete(&data[0]));
        assert!(!idx.delete(&data[0]));
        idx.merge();
        assert_eq!(idx.len(), 499);
        assert!(idx.size_bytes() > 0);
    }
}
