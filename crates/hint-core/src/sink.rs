//! Query-result consumers: the [`QuerySink`] trait and its stock
//! implementations.
//!
//! The paper's experiments distinguish *enumeration* from *counting* and
//! *selectivity* measurements, and a production service additionally needs
//! first-`k`, existence and streaming answers — all of which pay pure
//! overhead if the index materializes a full `Vec<IntervalId>` first (the
//! FO+MOD literature likewise prices enumeration, counting and testing as
//! distinct access modes). Every index in the workspace therefore reports
//! results by *emitting* ids into a [`QuerySink`]; what happens to an id —
//! collected, counted, forwarded, or discarded after a threshold — is the
//! sink's business, and the scan loops ask [`QuerySink::is_saturated`]
//! between partition runs so saturated sinks (first-`k`, existence)
//! terminate the traversal early.
//!
//! | Sink | Answers | Allocation |
//! |------|---------|------------|
//! | [`CollectSink`] / `Vec<IntervalId>` | full enumeration | result vector |
//! | [`CountSink`] | `COUNT(*)` / selectivity | none |
//! | [`FirstK`] | top-`k` sample, `LIMIT k` | `k` ids |
//! | [`ExistsSink`] | `EXISTS` / boolean overlap | none |
//! | [`FnSink`] | streaming callback | none |
//!
//! ```
//! use hint_core::{CountSink, Hint, Interval, IntervalIndex, QuerySink, RangeQuery};
//!
//! let data = vec![Interval::new(1, 0, 5), Interval::new(2, 3, 9)];
//! let index = Hint::build(&data, 4);
//! let mut count = CountSink::new();
//! index.query_sink(RangeQuery::new(4, 4), &mut count);
//! assert_eq!(count.count(), 2);
//! ```

use crate::interval::{Interval, IntervalId, Time, TOMBSTONE};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// How many entries a reporting loop should emit between
/// [`QuerySink::is_saturated`] polls.
///
/// A single partition run (or node list, or grid cell) can hold most of
/// the data under skew, so polling only at run boundaries would let a
/// saturated sink receive an unbounded tail of emits; chunking at this
/// cadence bounds the overshoot while keeping the check off the
/// per-element path. Shared by hint-core's scan loops and the competitor
/// indexes.
pub const SATURATION_POLL: usize = 64;

/// A zero-copy handle to one comparison-free run inside a sealed CSR id
/// arena: `(arena, lo, hi)` instead of `hi - lo` copied ids.
///
/// The sealed store's blind-report regimes (Lemma 5/6: runs that qualify
/// with no comparisons at all) hand whole partition runs to the sink.
/// For sinks that opt in via [`QuerySink::wants_arenas`], the run
/// crosses the fork/merge boundary as this handle and is materialized
/// only at the final consumer — the serving layer's `WireSink` encodes
/// wire bytes straight from the arena slice.
///
/// The handle shares ownership of the arena's id column (`Arc`), so it
/// can never outlive the arena it points into: a reseal builds a *new*
/// sealed store, and outstanding handles keep the superseded column
/// alive until they are dropped. Logical deletes against a sealed store
/// copy-on-write the column (`Arc::make_mut`), so a handle taken before
/// the delete still sees the tombstone-free snapshot it was issued from
/// — and blind runs are only forwarded as handles when the store has no
/// tombstones to skip.
#[derive(Debug, Clone)]
pub struct ArenaRun {
    ids: Arc<Vec<IntervalId>>,
    lo: usize,
    hi: usize,
}

impl ArenaRun {
    /// Wraps the half-open range `lo..hi` of `ids`.
    ///
    /// # Panics
    /// If `lo..hi` is not a valid range of `ids`.
    pub fn new(ids: Arc<Vec<IntervalId>>, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= ids.len(), "run out of arena bounds");
        Self { ids, lo, hi }
    }

    /// The run's ids, borrowed from the shared arena.
    #[inline]
    pub fn as_slice(&self) -> &[IntervalId] {
        &self.ids[self.lo..self.hi]
    }

    /// Number of ids in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// True when the run is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

/// Emits `id` unless it is a [`TOMBSTONE`] — the reporting-side half of
/// the logical-delete scheme every index in the workspace uses.
#[inline]
pub fn emit_live<S: QuerySink + ?Sized>(id: IntervalId, sink: &mut S) {
    if id != TOMBSTONE {
        sink.emit(id);
    }
}

/// A consumer of query results.
///
/// Indexes push every qualifying interval id through [`emit`](Self::emit)
/// instead of appending to a caller-provided `Vec`, so counting,
/// existence and first-`k` queries run without materializing results.
/// Scan loops poll [`is_saturated`](Self::is_saturated) at partition-run
/// granularity and abandon the traversal once it returns true; a sink
/// must therefore tolerate a bounded number of extra `emit` calls after
/// saturation (they are ignored by the stock sinks).
pub trait QuerySink {
    /// Consumes one result id. Ids arrive in index-traversal order (not
    /// sorted) and are duplicate-free for every index in the workspace.
    fn emit(&mut self, id: IntervalId);

    /// Consumes a batch of result ids (the comparison-free blind-report
    /// fast path: indexes hand over whole tombstone-free runs). The
    /// default loops over [`emit`](Self::emit); collecting sinks override
    /// it with a bulk copy and [`CountSink`] with a single addition, so
    /// the batch path costs what `extend_from_slice` did before the sink
    /// abstraction existed.
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        for &id in ids {
            self.emit(id);
        }
    }

    /// True once the sink needs no further results; the index then stops
    /// scanning. The default never saturates.
    fn is_saturated(&self) -> bool {
        false
    }

    /// True for sinks that keep [`ArenaRun`] handles instead of copying
    /// the ids out of a blind run. The sealed scan consults this before
    /// each comparison-free run; the default (`false`) keeps every stock
    /// sink on the plain [`emit_slice`](Self::emit_slice) path.
    fn wants_arenas(&self) -> bool {
        false
    }

    /// Consumes one comparison-free run. Overriders that returned `true`
    /// from [`wants_arenas`](Self::wants_arenas) typically store the
    /// handle; the default materializes it exactly like the slice scan
    /// loop would — [`SATURATION_POLL`]-sized chunks with a saturation
    /// poll before each — so forwarding a run as a handle is always
    /// bit-identical to emitting it.
    fn emit_arena(&mut self, run: &ArenaRun) {
        for chunk in run.as_slice().chunks(SATURATION_POLL) {
            if self.is_saturated() {
                return;
            }
            self.emit_slice(chunk);
        }
    }
}

/// A sink whose work can be split across parallel workers and recombined.
///
/// The sharded executor ([`crate::ShardedIndex`]) gives every worker
/// thread a private [`fork`](Self::fork) of the caller's sink, lets the
/// workers drain their shard-local results into the forks concurrently,
/// and then folds the forks back with [`merge`](Self::merge) — always on
/// the caller's thread, always in ascending shard order, so collecting
/// sinks stay deterministic without any locking on the emit path.
///
/// Implementations must uphold two contracts:
///
/// * **merge is saturation-aware** — merging never drives the receiver
///   past its own retention bound. [`FirstK`] in particular keeps at most
///   `k` ids no matter how many forks arrive with `k` ids each; results
///   beyond `k` must not cross the merge boundary.
/// * **aggregates are order-independent** — for pure aggregates
///   ([`CountSink`], [`ExistsSink`]) any merge order yields the same
///   state; positional sinks ([`CollectSink`], `Vec`, [`FirstK`]) reflect
///   the order in which `merge` is called, which the executor fixes to
///   shard order.
pub trait MergeableSink: QuerySink {
    /// A fresh, empty sink of the same kind (same `k`, same bounds) for a
    /// worker thread to fill.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Folds a worker's fork into `self`. Called once per fork, in shard
    /// order, on the caller's thread.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// True for sinks that can saturate after finitely many results
    /// ([`FirstK`], [`ExistsSink`]). Executors use this to pick a
    /// dispatch strategy: a batch of bounded sinks is dispatched shard
    /// by shard so a saturated query stops being sent to the remaining
    /// shards at all (see the worker pool in [`crate::pool`]), while
    /// unbounded sinks fan out to every routed shard at once.
    fn is_bounded(&self) -> bool {
        false
    }

    /// A fork pre-sized for an expected `cap` results — the
    /// histogram-presizing hook: the session predicts a query's result
    /// count from its extent history and hands the prediction here, so a
    /// collecting fork never reallocates mid-scan. The default ignores
    /// the hint and forks normally; capacity is a hint only and never
    /// affects results.
    fn fork_sized(&self, cap: usize) -> Self
    where
        Self: Sized,
    {
        let _ = cap;
        self.fork()
    }

    /// How many results this sink holds, when that is knowable —
    /// collectors and counters report it, streaming sinks return `None`.
    /// The session records these after a batch to train the per-shard
    /// extent histograms that drive [`fork_sized`](Self::fork_sized).
    fn result_count(&self) -> Option<usize> {
        None
    }
}

/// A mutable reference to a sink is itself a sink — lets adapters that
/// *own* their inner sink (e.g. [`crate::RelationFilter`]) also wrap a
/// borrowed one.
impl<S: QuerySink + ?Sized> QuerySink for &mut S {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        (**self).emit(id)
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        (**self).emit_slice(ids)
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        (**self).is_saturated()
    }

    #[inline]
    fn wants_arenas(&self) -> bool {
        (**self).wants_arenas()
    }

    #[inline]
    fn emit_arena(&mut self, run: &ArenaRun) {
        (**self).emit_arena(run)
    }
}

/// The original behaviour: any `Vec<IntervalId>` is a sink that collects
/// every emitted id.
impl QuerySink for Vec<IntervalId> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        self.push(id);
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        self.extend_from_slice(ids);
    }
}

impl MergeableSink for Vec<IntervalId> {
    /// No-histogram fallback: pre-sizes from the parent's running count,
    /// a decent proxy for a shard fork's share once a few results exist.
    fn fork(&self) -> Self {
        Vec::with_capacity(self.len())
    }

    fn fork_sized(&self, cap: usize) -> Self {
        Vec::with_capacity(cap)
    }

    fn merge(&mut self, mut other: Self) {
        if self.is_empty() {
            *self = other;
        } else {
            self.append(&mut other);
        }
    }

    fn result_count(&self) -> Option<usize> {
        Some(self.len())
    }
}

/// Collects every result id into an owned vector (the explicit-struct
/// spelling of the `Vec<IntervalId>` sink).
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    ids: Vec<IntervalId>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            ids: Vec::with_capacity(cap),
        }
    }

    /// The ids collected so far, in emission order.
    pub fn ids(&self) -> &[IntervalId] {
        &self.ids
    }

    /// Number of ids collected.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Consumes the sink, returning the collected ids.
    pub fn into_vec(self) -> Vec<IntervalId> {
        self.ids
    }
}

impl QuerySink for CollectSink {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        self.ids.push(id);
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        self.ids.extend_from_slice(ids);
    }
}

impl MergeableSink for CollectSink {
    /// No-histogram fallback: pre-sizes from the parent's running count.
    fn fork(&self) -> Self {
        CollectSink::with_capacity(self.len())
    }

    fn fork_sized(&self, cap: usize) -> Self {
        CollectSink::with_capacity(cap)
    }

    fn merge(&mut self, mut other: Self) {
        if self.ids.is_empty() {
            self.ids = other.ids;
        } else {
            self.ids.append(&mut other.ids);
        }
    }

    fn result_count(&self) -> Option<usize> {
        Some(self.len())
    }
}

/// Counts results without storing them — the sink behind
/// [`IntervalIndex::count`](crate::IntervalIndex::count) and the
/// harness's count-only experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountSink {
    n: usize,
}

impl CountSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of results emitted so far.
    pub fn count(&self) -> usize {
        self.n
    }
}

impl QuerySink for CountSink {
    #[inline]
    fn emit(&mut self, _id: IntervalId) {
        self.n += 1;
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        self.n += ids.len();
    }
}

impl MergeableSink for CountSink {
    fn fork(&self) -> Self {
        CountSink::new()
    }

    fn merge(&mut self, other: Self) {
        self.n += other.n;
    }

    fn result_count(&self) -> Option<usize> {
        Some(self.n)
    }
}

/// Keeps the first `k` results (in traversal order) and saturates,
/// terminating the index scan early — `LIMIT k` without enumerating the
/// full result.
#[derive(Debug, Clone)]
pub struct FirstK {
    k: usize,
    ids: Vec<IntervalId>,
}

impl FirstK {
    /// A sink that retains at most `k` ids.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            ids: Vec::with_capacity(k.min(1024)),
        }
    }

    /// The retained ids (at most `k`).
    pub fn ids(&self) -> &[IntervalId] {
        &self.ids
    }

    /// Number of ids retained so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Consumes the sink, returning the retained ids.
    pub fn into_vec(self) -> Vec<IntervalId> {
        self.ids
    }
}

impl QuerySink for FirstK {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        if self.ids.len() < self.k {
            self.ids.push(id);
        }
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        let take = (self.k - self.ids.len().min(self.k)).min(ids.len());
        self.ids.extend_from_slice(&ids[..take]);
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        self.ids.len() >= self.k
    }
}

impl MergeableSink for FirstK {
    fn fork(&self) -> Self {
        // the fork carries the full budget: a single shard may own all of
        // the first k results, and saturation still bounds its scan
        FirstK::new(self.k)
    }

    /// Saturation-aware: takes only the first `k - len` ids from `other`,
    /// so at most `k` results ever cross the merge boundary regardless of
    /// how full each worker's fork came back.
    fn merge(&mut self, other: Self) {
        let room = self.k - self.ids.len().min(self.k);
        let take = room.min(other.ids.len());
        self.ids.extend_from_slice(&other.ids[..take]);
    }

    fn is_bounded(&self) -> bool {
        true
    }
}

/// Saturates on the first result — boolean overlap tests
/// ([`IntervalIndex::exists`](crate::IntervalIndex::exists)) with maximal
/// early exit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExistsSink {
    found: bool,
}

impl ExistsSink {
    /// Creates the sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once any result was emitted.
    pub fn found(&self) -> bool {
        self.found
    }
}

impl QuerySink for ExistsSink {
    #[inline]
    fn emit(&mut self, _id: IntervalId) {
        self.found = true;
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        self.found |= !ids.is_empty();
    }

    #[inline]
    fn is_saturated(&self) -> bool {
        self.found
    }
}

impl MergeableSink for ExistsSink {
    fn fork(&self) -> Self {
        ExistsSink::new()
    }

    fn merge(&mut self, other: Self) {
        self.found |= other.found;
    }

    fn is_bounded(&self) -> bool {
        true
    }
}

/// Shortest comparison-free run worth keeping as a zero-copy handle.
///
/// A handle costs fixed bookkeeping on both sides of the merge boundary
/// — a run-list entry, an arena refcount round-trip, an indirection at
/// consume time — while copying a run costs 8 bytes per id into a
/// buffer that is already hot. Below this length the copy is cheaper,
/// so handle-keeping sinks ([`HandleSink`], the serve crate's
/// `WireSink`) inline short runs into their owned tail and reserve
/// handles for the long runs where zero-copy actually pays.
pub const ARENA_HANDLE_MIN: usize = 64;

/// One run of a [`HandleSink`]'s result stream: either ids the sink had
/// to own (comparison-bearing emissions and short blind runs, see
/// [`ARENA_HANDLE_MIN`]) or a zero-copy [`ArenaRun`] handle into a
/// sealed arena (long comparison-free blind runs).
#[derive(Debug, Clone)]
pub enum ResultRun {
    /// Ids copied into the sink (per-id and slice emissions).
    Owned(Vec<IntervalId>),
    /// A borrowed run, still resident in the sealed CSR arena.
    Arena(ArenaRun),
}

impl ResultRun {
    /// The run's ids, wherever they live.
    pub fn as_slice(&self) -> &[IntervalId] {
        match self {
            ResultRun::Owned(ids) => ids,
            ResultRun::Arena(run) => run.as_slice(),
        }
    }
}

/// Collects results as a sequence of [`ResultRun`]s, keeping
/// comparison-free runs as zero-copy arena handles until a consumer
/// actually needs the ids.
///
/// This is the enumeration sink for the parallel read path: a shard
/// worker's fork accumulates handles (O(1) per blind run, no copy), the
/// merge step concatenates run lists in shard order (O(runs), not
/// O(ids)), and only the final consumer pays for materialization — or
/// never does, if it can stream the runs (`for run in sink.runs()`).
///
/// Piecewise emissions (and short blind runs, see [`ARENA_HANDLE_MIN`])
/// land in an open *tail* buffer — a plain `Vec` push, no per-emission
/// branching — which is cut into the run list as an owned run only when
/// a long handle arrives. Reused sinks ([`clear`](Self::clear)) recycle
/// the tail and the dropped owned-run allocations, so steady-state
/// batch serving allocates nothing on this path.
#[derive(Debug, Clone, Default)]
pub struct HandleSink {
    /// Completed runs in emission (then merge) order; the open tail is
    /// not yet among them.
    runs: Vec<ResultRun>,
    /// The open owned run taking piecewise and short-blind emissions.
    tail: Vec<IntervalId>,
    len: usize,
    /// Recycled owned-run allocations from [`clear`](Self::clear),
    /// reused when the tail is cut into the run list.
    spares: Vec<Vec<IntervalId>>,
}

impl HandleSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of result ids across all runs, O(1).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no results were collected.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The collected runs, in emission (then merge) order. Closes the
    /// open tail first, so the returned list covers every id.
    pub fn runs(&mut self) -> &[ResultRun] {
        self.flush_tail();
        &self.runs
    }

    /// Empties the sink for reuse, releasing any arena handles it held.
    /// Owned-run allocations (and the run list's own) are kept for the
    /// next fill.
    pub fn clear(&mut self) {
        for run in self.runs.drain(..) {
            if let ResultRun::Owned(mut ids) = run {
                ids.clear();
                self.spares.push(ids);
            }
        }
        self.tail.clear();
        self.len = 0;
    }

    /// Materializes the result: one owned, contiguous id vector in the
    /// exact order a copying sink would have produced.
    pub fn into_vec(self) -> Vec<IntervalId> {
        let mut out = Vec::with_capacity(self.len);
        for run in &self.runs {
            out.extend_from_slice(run.as_slice());
        }
        out.extend_from_slice(&self.tail);
        out
    }

    /// Cuts the open tail into the run list as an owned run.
    fn flush_tail(&mut self) {
        if !self.tail.is_empty() {
            let fresh = self.spares.pop().unwrap_or_default();
            let full = std::mem::replace(&mut self.tail, fresh);
            self.runs.push(ResultRun::Owned(full));
        }
    }
}

impl QuerySink for HandleSink {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        self.tail.push(id);
        self.len += 1;
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        self.tail.extend_from_slice(ids);
        self.len += ids.len();
    }

    fn wants_arenas(&self) -> bool {
        true
    }

    fn emit_arena(&mut self, run: &ArenaRun) {
        if run.len() < ARENA_HANDLE_MIN {
            self.emit_slice(run.as_slice());
        } else {
            self.flush_tail();
            self.len += run.len();
            self.runs.push(ResultRun::Arena(run.clone()));
        }
    }
}

impl MergeableSink for HandleSink {
    fn fork(&self) -> Self {
        HandleSink::new()
    }

    /// Run-list concatenation: O(runs + own tail) regardless of how many
    /// ids the handles cover.
    fn merge(&mut self, mut other: Self) {
        self.len += other.len;
        self.flush_tail();
        if self.runs.is_empty() {
            self.runs = other.runs;
        } else {
            self.runs.append(&mut other.runs);
        }
        // adopt the merged-in sink's open tail (its newest emissions),
        // recycling our now-idle tail allocation
        let idle = std::mem::replace(&mut self.tail, other.tail);
        if idle.capacity() > 0 {
            self.spares.push(idle);
        }
        self.spares.append(&mut other.spares);
    }

    fn result_count(&self) -> Option<usize> {
        Some(self.len)
    }
}

/// Streams every result id into a callback, allocation-free — the bridge
/// to joins, network replies, or any other push-based consumer.
#[derive(Debug)]
pub struct FnSink<F: FnMut(IntervalId)> {
    f: F,
}

impl<F: FnMut(IntervalId)> FnSink<F> {
    /// Wraps a callback.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: FnMut(IntervalId)> QuerySink for FnSink<F> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        (self.f)(id);
    }
}

/// Streams results into a callback at *slice* granularity, preserving
/// the indexes' comparison-free bulk-report fast path end to end: a
/// whole tombstone-free run arrives as one `&[IntervalId]` instead of
/// being re-chopped into per-id calls. This is [`FnSink`]'s counterpart
/// for consumers that process results in blocks — e.g. forwarding
/// decoded result chunks from the serving client's reply stream
/// (`serve::Client::query_sink` emits whole chunks; see the quickstart
/// example's serving section) or batching ids into any downstream
/// writer — where a per-id callback would put a function call on every
/// element.
///
/// Single ids (the comparison-bearing paths) arrive as 1-length slices.
#[derive(Debug)]
pub struct SliceSink<F: FnMut(&[IntervalId])> {
    f: F,
}

impl<F: FnMut(&[IntervalId])> SliceSink<F> {
    /// Wraps a slice callback.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: FnMut(&[IntervalId])> QuerySink for SliceSink<F> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        (self.f)(std::slice::from_ref(&id));
    }

    #[inline]
    fn emit_slice(&mut self, ids: &[IntervalId]) {
        if !ids.is_empty() {
            (self.f)(ids);
        }
    }
}

/// Resolves an emitted result id back to the stored interval it names.
///
/// The aggregation sinks below ([`TopKByDuration`], [`BucketHistogram`])
/// need the *endpoints* of each result, but the scan loops emit bare
/// ids. Rather than widen every emit path, the sinks carry a lookup —
/// typically an `Arc`-shared id → interval table owned by whoever also
/// owns the index (the serving catalog keeps one per named index) — and
/// resolve at emit time. Forks clone the lookup (an `Arc` bump), so the
/// table is shared, not copied, across shard workers.
///
/// `get` returning `None` means the id is unknown to the table; the
/// aggregation sinks skip such emissions. With a table maintained in
/// lockstep with the index (insert/delete/restore), that never happens.
pub trait IntervalLookup: Clone + Send {
    /// The interval stored under `id`, if the table knows it.
    fn get(&self, id: IntervalId) -> Option<Interval>;
}

impl IntervalLookup for Arc<HashMap<IntervalId, Interval>> {
    #[inline]
    fn get(&self, id: IntervalId) -> Option<Interval> {
        HashMap::get(self, &id).copied()
    }
}

impl IntervalLookup for Arc<BTreeMap<IntervalId, Interval>> {
    #[inline]
    fn get(&self, id: IntervalId) -> Option<Interval> {
        BTreeMap::get(self, &id).copied()
    }
}

/// Keeps the `k` results with the longest duration (`end - st`), ties
/// broken toward the smaller id — "the k longest-running records
/// overlapping this window" without materializing the full result.
///
/// Unlike [`FirstK`] this sink can never saturate: any not-yet-seen
/// result might out-last the current worst retained one, so the scan
/// must run to completion. What it shares with `FirstK` is the bounded
/// merge: at most `k` entries ever cross the fork/merge boundary, and
/// the merged ranking is independent of shard order (the key
/// `(duration desc, id asc)` is a total order over duplicate-free ids).
#[derive(Debug, Clone)]
pub struct TopKByDuration<L> {
    k: usize,
    lookup: L,
    /// Best-first: sorted by `(duration desc, id asc)`, at most `k` long.
    top: Vec<(u64, IntervalId)>,
}

impl<L: IntervalLookup> TopKByDuration<L> {
    /// A sink retaining the `k` longest intervals, resolving endpoints
    /// through `lookup`.
    pub fn new(k: usize, lookup: L) -> Self {
        Self {
            k,
            lookup,
            top: Vec::with_capacity(k.min(1024)),
        }
    }

    /// The retained `(duration, id)` pairs, best first.
    pub fn ranked(&self) -> &[(u64, IntervalId)] {
        &self.top
    }

    /// Number of entries retained so far (at most `k`).
    pub fn len(&self) -> usize {
        self.top.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.top.is_empty()
    }

    /// Consumes the sink, returning the retained ids best-first.
    pub fn into_ids(self) -> Vec<IntervalId> {
        self.top.into_iter().map(|(_, id)| id).collect()
    }

    /// Where `key` belongs in the best-first order.
    fn rank_of(&self, dur: u64, id: IntervalId) -> usize {
        self.top
            .partition_point(|&(d, i)| d > dur || (d == dur && i < id))
    }

    fn offer(&mut self, dur: u64, id: IntervalId) {
        if self.k == 0 {
            return;
        }
        let pos = self.rank_of(dur, id);
        if pos >= self.k {
            return; // worse than the current k-th best
        }
        self.top.insert(pos, (dur, id));
        self.top.truncate(self.k);
    }
}

impl<L: IntervalLookup> QuerySink for TopKByDuration<L> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        if let Some(s) = self.lookup.get(id) {
            self.offer(s.end - s.st, id);
        }
    }
}

impl<L: IntervalLookup> MergeableSink for TopKByDuration<L> {
    fn fork(&self) -> Self {
        TopKByDuration::new(self.k, self.lookup.clone())
    }

    /// Merge-sorts the two bounded rankings and re-truncates to `k`, so
    /// the global top-k is re-established no matter how the results were
    /// split across shards; at most `k` entries survive.
    fn merge(&mut self, other: Self) {
        if other.top.is_empty() {
            return;
        }
        if self.top.is_empty() {
            self.top = other.top;
            return;
        }
        let mine = std::mem::take(&mut self.top);
        let mut a = mine.into_iter().peekable();
        let mut b = other.top.into_iter().peekable();
        while self.top.len() < self.k {
            let take_a = match (a.peek(), b.peek()) {
                (Some(&(da, ia)), Some(&(db, ib))) => da > db || (da == db && ia < ib),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let next = if take_a { a.next() } else { b.next() };
            self.top.push(next.expect("peeked entry"));
        }
    }
}

/// Counts results per fixed-width time bucket — the sink behind "how
/// many records are active in each hour of this window" dashboards.
///
/// Bucket `b` spans `[origin + b·width, origin + (b+1)·width)` on the
/// domain axis. Every emitted result contributes one count to **each**
/// bucket its stored extent overlaps (endpoints resolved through the
/// carried [`IntervalLookup`]), clipped to the histogram's covered
/// range. Counts are pure order-independent aggregates, so the merge is
/// an element-wise add and sharding cannot change the answer (the
/// originals/replicas discipline already guarantees each result id is
/// emitted exactly once across shards).
#[derive(Debug, Clone)]
pub struct BucketHistogram<L> {
    origin: Time,
    width: u64,
    counts: Vec<u64>,
    lookup: L,
}

impl<L: IntervalLookup> BucketHistogram<L> {
    /// A histogram of `buckets` buckets of `width` domain units starting
    /// at `origin`.
    ///
    /// # Panics
    /// If `width == 0` or `buckets == 0`.
    pub fn new(origin: Time, width: u64, buckets: usize, lookup: L) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            origin,
            width,
            counts: vec![0; buckets],
            lookup,
        }
    }

    /// A histogram covering exactly the query window `[q.st, q.end]`:
    /// bucket 0 starts at `q.st` and the last (possibly partial) bucket
    /// contains `q.end`.
    ///
    /// # Panics
    /// If `width == 0` or `q` is inverted.
    pub fn for_query(q: crate::RangeQuery, width: u64, lookup: L) -> Self {
        assert!(q.st <= q.end, "inverted query range");
        let span = (q.end - q.st) as u128 + 1;
        let buckets = span.div_ceil(width as u128) as usize;
        Self::new(q.st, width, buckets, lookup)
    }

    /// The per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the sink, returning the per-bucket counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }

    /// Last domain point the histogram covers.
    fn covered_end(&self) -> Time {
        self.origin
            .saturating_add(self.width.saturating_mul(self.counts.len() as u64) - 1)
    }
}

impl<L: IntervalLookup> QuerySink for BucketHistogram<L> {
    #[inline]
    fn emit(&mut self, id: IntervalId) {
        let Some(s) = self.lookup.get(id) else {
            return;
        };
        let lo = s.st.max(self.origin);
        let hi = s.end.min(self.covered_end());
        if lo > hi {
            return;
        }
        let b0 = ((lo - self.origin) / self.width) as usize;
        let b1 = ((hi - self.origin) / self.width) as usize;
        for c in &mut self.counts[b0..=b1] {
            *c += 1;
        }
    }
}

impl<L: IntervalLookup> MergeableSink for BucketHistogram<L> {
    fn fork(&self) -> Self {
        Self {
            origin: self.origin,
            width: self.width,
            counts: vec![0; self.counts.len()],
            lookup: self.lookup.clone(),
        }
    }

    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &mut impl QuerySink, ids: &[IntervalId]) {
        for &id in ids {
            if sink.is_saturated() {
                break;
            }
            sink.emit(id);
        }
    }

    #[test]
    fn vec_and_collect_agree() {
        let mut v: Vec<IntervalId> = Vec::new();
        let mut c = CollectSink::new();
        feed(&mut v, &[3, 1, 2]);
        feed(&mut c, &[3, 1, 2]);
        assert_eq!(v, c.ids());
        assert_eq!(c.len(), 3);
        assert_eq!(c.into_vec(), vec![3, 1, 2]);
    }

    #[test]
    fn count_never_saturates() {
        let mut s = CountSink::new();
        feed(&mut s, &[9; 1000]);
        assert_eq!(s.count(), 1000);
        assert!(!s.is_saturated());
    }

    #[test]
    fn first_k_saturates_at_k() {
        let mut s = FirstK::new(2);
        feed(&mut s, &[5, 6, 7, 8]);
        assert_eq!(s.ids(), &[5, 6]);
        assert!(s.is_saturated());
        // late emits after saturation are ignored
        s.emit(99);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn first_zero_is_immediately_saturated() {
        let s = FirstK::new(0);
        assert!(s.is_saturated());
    }

    #[test]
    fn exists_saturates_on_first_hit() {
        let mut s = ExistsSink::new();
        assert!(!s.found());
        feed(&mut s, &[1, 2, 3]);
        assert!(s.found());
        assert!(s.is_saturated());
    }

    #[test]
    fn emit_slice_overrides_match_per_element_emission() {
        let batch: Vec<IntervalId> = (0..200).collect();
        let mut v: Vec<IntervalId> = Vec::new();
        v.emit_slice(&batch);
        assert_eq!(v, batch);
        let mut c = CollectSink::new();
        c.emit_slice(&batch);
        assert_eq!(c.ids(), &batch[..]);
        let mut n = CountSink::new();
        n.emit_slice(&batch);
        assert_eq!(n.count(), 200);
        let mut f = FirstK::new(3);
        f.emit_slice(&batch);
        f.emit_slice(&batch);
        assert_eq!(f.ids(), &[0, 1, 2]);
        let mut e = ExistsSink::new();
        e.emit_slice(&[]);
        assert!(!e.found());
        e.emit_slice(&batch);
        assert!(e.found());
    }

    #[test]
    fn merge_recombines_every_stock_sink() {
        let mut v: Vec<IntervalId> = vec![1, 2];
        let mut fv = MergeableSink::fork(&v);
        assert!(fv.is_empty());
        fv.emit_slice(&[3, 4]);
        v.merge(fv);
        assert_eq!(v, vec![1, 2, 3, 4]);

        let mut c = CollectSink::new();
        c.emit(7);
        let mut fc = c.fork();
        fc.emit(8);
        c.merge(fc);
        assert_eq!(c.ids(), &[7, 8]);

        let mut n = CountSink::new();
        n.emit_slice(&[0; 5]);
        let mut fn_ = n.fork();
        fn_.emit_slice(&[0; 3]);
        n.merge(fn_);
        assert_eq!(n.count(), 8);

        let mut e = ExistsSink::new();
        let mut fe = e.fork();
        fe.emit(1);
        e.merge(fe);
        assert!(e.found());
    }

    /// The saturation-aware merge: even when every fork comes back full,
    /// no more than `k` results may cross the merge boundary.
    #[test]
    fn first_k_merge_never_over_emits() {
        let mut sink = FirstK::new(5);
        sink.emit_slice(&[0, 1, 2]);
        // three forks, each saturated with k ids of their own
        for base in [100u64, 200, 300] {
            let mut f = sink.fork();
            f.emit_slice(&[base, base + 1, base + 2, base + 3, base + 4]);
            assert!(f.is_saturated());
            sink.merge(f);
            assert!(
                sink.len() <= 5,
                "merge pushed FirstK past k: {} ids",
                sink.len()
            );
        }
        // exactly the first k in merge order survive
        assert_eq!(sink.ids(), &[0, 1, 2, 100, 101]);
        assert!(sink.is_saturated());
    }

    #[test]
    fn first_k_fork_carries_the_full_budget() {
        let sink = FirstK::new(3);
        let mut f = sink.fork();
        f.emit_slice(&[9, 9, 9, 9]);
        // the fork itself retains at most k, and saturates
        assert_eq!(f.len(), 3);
        assert!(f.is_saturated());
    }

    #[test]
    fn forks_presize_from_the_parents_running_count() {
        let v: Vec<IntervalId> = (0..100).collect();
        let fv = MergeableSink::fork(&v);
        assert!(fv.is_empty());
        assert!(fv.capacity() >= 100, "Vec fork should carry a size hint");

        let mut c = CollectSink::new();
        c.emit_slice(&v);
        let fc = c.fork();
        assert!(fc.is_empty());
        assert!(fc.into_vec().capacity() >= 100);
    }

    #[test]
    fn fork_sized_uses_the_hint_and_never_changes_results() {
        let v: Vec<IntervalId> = vec![1, 2];
        let mut fv = v.fork_sized(64);
        assert!(fv.capacity() >= 64);
        fv.emit_slice(&[3, 4]);
        let mut v2 = v.clone();
        v2.merge(fv);
        assert_eq!(v2, vec![1, 2, 3, 4]);

        // sinks without a capacity override just fork normally
        let f = FirstK::new(2).fork_sized(1024);
        assert!(!f.is_saturated());
        let e = ExistsSink::new().fork_sized(9);
        assert!(!e.found());
    }

    #[test]
    fn result_counts_are_reported_where_knowable() {
        let mut v: Vec<IntervalId> = Vec::new();
        v.emit_slice(&[1, 2, 3]);
        assert_eq!(MergeableSink::result_count(&v), Some(3));
        let mut c = CollectSink::new();
        c.emit(1);
        assert_eq!(c.result_count(), Some(1));
        let mut n = CountSink::new();
        n.emit_slice(&[0; 7]);
        assert_eq!(n.result_count(), Some(7));
        let mut h = HandleSink::new();
        h.emit_slice(&[1, 2]);
        assert_eq!(h.result_count(), Some(2));
        assert_eq!(FirstK::new(3).result_count(), None);
    }

    #[test]
    fn default_emit_arena_matches_the_slice_scan_exactly() {
        let arena: Arc<Vec<IntervalId>> = Arc::new((0..500).collect());
        let run = ArenaRun::new(Arc::clone(&arena), 10, 400);

        // unbounded sink: whole run, in order
        let mut v: Vec<IntervalId> = Vec::new();
        assert!(!QuerySink::wants_arenas(&v));
        v.emit_arena(&run);
        assert_eq!(v, arena[10..400]);

        // saturating sink: polls at SATURATION_POLL cadence, so the
        // overshoot past k is bounded by one chunk — same as emit_ids
        let mut f = FirstK::new(5);
        f.emit_arena(&run);
        assert_eq!(f.ids(), &arena[10..15]);
    }

    #[test]
    fn handle_sink_mixes_owned_and_arena_runs() {
        let arena: Arc<Vec<IntervalId>> = Arc::new((0..200).collect());
        let mut h = HandleSink::new();
        h.emit(1);
        h.emit_slice(&[2, 3]);
        h.emit_arena(&ArenaRun::new(
            Arc::clone(&arena),
            100,
            100 + ARENA_HANDLE_MIN,
        ));
        h.emit(9);
        h.emit_arena(&ArenaRun::new(Arc::clone(&arena), 4, 4)); // empty: dropped
        assert_eq!(h.len(), 4 + ARENA_HANDLE_MIN);
        // owned runs coalesce; long arena runs stay handles
        assert_eq!(h.runs().len(), 3);
        assert!(matches!(h.runs()[1], ResultRun::Arena(_)));
        let want: Vec<IntervalId> = [1, 2, 3]
            .into_iter()
            .chain(100..(100 + ARENA_HANDLE_MIN) as IntervalId)
            .chain([9])
            .collect();
        assert_eq!(h.into_vec(), want);
    }

    #[test]
    fn handle_sink_inlines_short_arena_runs() {
        let arena: Arc<Vec<IntervalId>> = Arc::new((0..200).collect());
        let mut h = HandleSink::new();
        h.emit(7);
        // below the handle threshold: copied into the owned tail, no
        // refcount taken on the arena
        h.emit_arena(&ArenaRun::new(
            Arc::clone(&arena),
            10,
            10 + ARENA_HANDLE_MIN - 1,
        ));
        assert_eq!(h.runs().len(), 1);
        assert!(matches!(h.runs()[0], ResultRun::Owned(_)));
        assert_eq!(Arc::strong_count(&arena), 1);
        let want: Vec<IntervalId> = std::iter::once(7)
            .chain(10..(10 + ARENA_HANDLE_MIN - 1) as IntervalId)
            .collect();
        assert_eq!(h.into_vec(), want);
    }

    #[test]
    fn handle_sink_merge_concatenates_run_lists_in_call_order() {
        let arena: Arc<Vec<IntervalId>> = Arc::new(vec![7, 8, 9]);
        let mut h = HandleSink::new();
        h.emit(1);
        let mut f1 = h.fork();
        f1.emit_arena(&ArenaRun::new(Arc::clone(&arena), 0, 3));
        let mut f2 = h.fork();
        f2.emit_slice(&[4, 5]);
        h.merge(f1);
        h.merge(f2);
        assert_eq!(h.len(), 6);
        assert_eq!(h.into_vec(), vec![1, 7, 8, 9, 4, 5]);
    }

    #[test]
    fn arena_handles_keep_the_arena_alive() {
        let arena: Arc<Vec<IntervalId>> = Arc::new((0..ARENA_HANDLE_MIN as IntervalId).collect());
        let mut h = HandleSink::new();
        h.emit_arena(&ArenaRun::new(Arc::clone(&arena), 0, ARENA_HANDLE_MIN));
        assert!(matches!(h.runs()[0], ResultRun::Arena(_)));
        // simulate a reseal epoch: the store drops its reference
        drop(arena);
        // the handle still reads the superseded column safely
        assert_eq!(
            h.into_vec(),
            (0..ARENA_HANDLE_MIN as IntervalId).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "out of arena bounds")]
    fn arena_run_rejects_out_of_bounds_ranges() {
        let arena: Arc<Vec<IntervalId>> = Arc::new(vec![1, 2]);
        let _ = ArenaRun::new(arena, 1, 3);
    }

    #[test]
    fn fn_sink_streams() {
        let mut seen = Vec::new();
        {
            let mut s = FnSink::new(|id| seen.push(id));
            feed(&mut s, &[4, 2]);
        }
        assert_eq!(seen, vec![4, 2]);
    }

    #[test]
    fn slice_sink_preserves_run_granularity() {
        let mut runs: Vec<Vec<IntervalId>> = Vec::new();
        {
            let mut s = SliceSink::new(|ids: &[IntervalId]| runs.push(ids.to_vec()));
            s.emit_slice(&[1, 2, 3]);
            s.emit(4);
            s.emit_slice(&[]); // empty runs are dropped, not forwarded
            s.emit_slice(&[5, 6]);
        }
        assert_eq!(runs, vec![vec![1, 2, 3], vec![4], vec![5, 6]]);
    }

    fn table(data: &[Interval]) -> Arc<HashMap<IntervalId, Interval>> {
        Arc::new(data.iter().map(|s| (s.id, *s)).collect())
    }

    #[test]
    fn top_k_by_duration_ranks_longest_first_with_id_tiebreak() {
        let data = vec![
            Interval::new(1, 0, 10),  // dur 10
            Interval::new(2, 5, 25),  // dur 20
            Interval::new(3, 40, 60), // dur 20 (tie with 2: smaller id wins)
            Interval::new(4, 7, 9),   // dur 2
        ];
        let mut s = TopKByDuration::new(3, table(&data));
        for id in [4, 3, 1, 2] {
            s.emit(id);
        }
        assert_eq!(s.ranked(), &[(20, 2), (20, 3), (10, 1)]);
        assert!(!s.is_saturated(), "top-k by duration can never stop early");
        s.emit(99); // unknown id: skipped
        assert_eq!(s.len(), 3);
        assert_eq!(s.into_ids(), vec![2, 3, 1]);
    }

    #[test]
    fn top_k_by_duration_merge_reestablishes_the_global_ranking() {
        let data: Vec<Interval> = (0..20).map(|i| Interval::new(i, 0, (i * 7) % 13)).collect();
        let lookup = table(&data);
        // solo reference
        let mut solo = TopKByDuration::new(5, Arc::clone(&lookup));
        for s in &data {
            solo.emit(s.id);
        }
        // split across 3 "shards" in an arbitrary interleaving, merged in
        // shard order
        let mut merged = TopKByDuration::new(5, Arc::clone(&lookup));
        let mut forks: Vec<_> = (0..3).map(|_| merged.fork()).collect();
        for (i, s) in data.iter().enumerate() {
            forks[i % 3].emit(s.id);
        }
        for f in forks {
            assert!(f.len() <= 5);
            merged.merge(f);
        }
        assert!(merged.len() <= 5, "merge must stay within the k bound");
        assert_eq!(merged.ranked(), solo.ranked());
    }

    #[test]
    fn top_zero_by_duration_retains_nothing() {
        let data = vec![Interval::new(1, 0, 9)];
        let mut s = TopKByDuration::new(0, table(&data));
        s.emit(1);
        let f = s.fork();
        s.merge(f);
        assert!(s.is_empty());
    }

    #[test]
    fn bucket_histogram_counts_every_overlapped_bucket() {
        let data = vec![
            Interval::new(1, 0, 19),  // clipped to the window: bucket 0 only
            Interval::new(2, 12, 37), // buckets 0..=2
            Interval::new(3, 25, 26), // bucket 1
            Interval::new(4, 90, 95), // outside the covered range
        ];
        // window [10, 39], width 10 -> buckets [10,19] [20,29] [30,39]
        let mut h = BucketHistogram::for_query(crate::RangeQuery::new(10, 39), 10, table(&data));
        for id in [1, 2, 3, 4] {
            h.emit(id);
        }
        assert_eq!(h.counts(), &[2, 2, 1]);
    }

    #[test]
    fn bucket_histogram_merge_is_elementwise_and_order_independent() {
        let data: Vec<Interval> = (0..30).map(|i| Interval::new(i, i, i + 5)).collect();
        let lookup = table(&data);
        let q = crate::RangeQuery::new(0, 34);
        let mut solo = BucketHistogram::for_query(q, 7, Arc::clone(&lookup));
        for s in &data {
            solo.emit(s.id);
        }
        let mut merged = BucketHistogram::for_query(q, 7, Arc::clone(&lookup));
        let mut f1 = merged.fork();
        let mut f2 = merged.fork();
        for s in &data {
            if s.id % 2 == 0 {
                f1.emit(s.id);
            } else {
                f2.emit(s.id);
            }
        }
        // merge in the "wrong" order on purpose: counts are commutative
        merged.merge(f2);
        merged.merge(f1);
        assert_eq!(merged.counts(), solo.counts());
    }

    #[test]
    fn bucket_histogram_covers_a_partial_last_bucket() {
        let data = vec![Interval::new(1, 21, 21)];
        // span 22 at width 10 -> 3 buckets, the last covering [20, 21]
        let h0 = BucketHistogram::for_query(crate::RangeQuery::new(0, 21), 10, table(&data));
        assert_eq!(h0.counts().len(), 3);
        let mut h = h0;
        h.emit(1);
        assert_eq!(h.counts(), &[0, 0, 1]);
    }
}
