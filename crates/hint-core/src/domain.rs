//! Domain mapping from raw interval endpoints onto the `[0, 2^m - 1]`
//! hierarchical domain of HINT^m (§3.2).
//!
//! The paper defines the mapping
//! `f(x) = ⌊ (x - min) / (max - min) · (2^m - 1) ⌋`.
//! We implement the equivalent (and branch-cheaper) *prefix* formulation for
//! integer domains: shift the normalized value right by `m' - m` bits, where
//! `m'` is the number of bits needed for the raw span. The two coincide when
//! the raw span is a power of two; otherwise the prefix form keeps partition
//! widths exactly uniform in raw space, which is what the hierarchical
//! decomposition needs for Lemma 2 to stay exact.
//!
//! # Exactness
//!
//! `map` is monotone non-decreasing, therefore
//!
//! * `map(x) < map(y)  ⇒  x < y`, and
//! * `x ≤ y  ⇒  map(x) ≤ map(y)`.
//!
//! All comparison-free reporting paths in HINT^m rely only on *strict*
//! bucket-level inequalities (see the module docs of [`crate::hintm`]), so
//! partitioning by mapped values while comparing raw endpoints yields exact
//! results — no approximate search is needed even for very large domains.

use crate::interval::{Interval, RangeQuery, Time};

/// Describes the hierarchical domain of a HINT^m index: the raw value range
/// covered and the number of index levels `m + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    /// Smallest raw endpoint covered (inclusive).
    min: Time,
    /// Largest raw endpoint covered (inclusive).
    max: Time,
    /// Number of bottom-level bits: the bottom level has `2^m` partitions.
    m: u32,
    /// Right-shift applied to normalized raw values: `m' - m` where
    /// `2^{m'}` is the smallest power of two covering the raw span.
    shift: u32,
}

impl Domain {
    /// Builds a domain for raw values in `[min, max]` with `m + 1` levels.
    ///
    /// # Panics
    /// Panics if `min > max` or `m > 63`.
    pub fn new(min: Time, max: Time, m: u32) -> Self {
        assert!(min <= max, "domain min ({min}) must be <= max ({max})");
        assert!(m <= 63, "m ({m}) must be <= 63");
        let span_bits = Self::span_bits(min, max);
        let shift = span_bits.saturating_sub(m);
        // If m exceeds the bits actually needed, clamp m down: extra levels
        // below single-value granularity can never receive intervals.
        let m = m.min(span_bits);
        Self { min, max, m, shift }
    }

    /// Builds a domain that covers a dataset, scanning for min/max endpoints.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn from_data(data: &[Interval], m: u32) -> Self {
        assert!(
            !data.is_empty(),
            "cannot infer a domain from an empty dataset"
        );
        let mut min = Time::MAX;
        let mut max = 0;
        for s in data {
            min = min.min(s.st);
            max = max.max(s.end);
        }
        Self::new(min, max, m)
    }

    /// Number of bits `m'` needed so that `2^{m'}` covers the raw span
    /// `max - min + 1`.
    fn span_bits(min: Time, max: Time) -> u32 {
        let span = max - min; // span+1 values; need bits for value `span`
        if span == 0 {
            0
        } else {
            64 - span.leading_zeros()
        }
    }

    /// The number of bottom-level bits (`m`): the index has `m + 1` levels
    /// and `2^m` bottom partitions.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Smallest raw value covered.
    #[inline]
    pub fn min(&self) -> Time {
        self.min
    }

    /// Largest raw value covered.
    #[inline]
    pub fn max(&self) -> Time {
        self.max
    }

    /// True when the mapping is lossless (every mapped bucket holds exactly
    /// one raw value). In that case the comparison-free HINT of §3.1 is exact.
    #[inline]
    pub fn is_lossless(&self) -> bool {
        self.shift == 0
    }

    /// Maps a raw value into the `[0, 2^m - 1]` mapped domain, clamping
    /// values outside `[min, max]` (queries may exceed the data range).
    #[inline]
    pub fn map(&self, x: Time) -> Time {
        let x = x.clamp(self.min, self.max);
        (x - self.min) >> self.shift
    }

    /// Maps a raw interval to its mapped endpoints `[map(st), map(end)]`.
    #[inline]
    pub fn map_interval(&self, s: &Interval) -> (Time, Time) {
        (self.map(s.st), self.map(s.end))
    }

    /// Maps a raw query to mapped endpoints, clamping to the domain.
    #[inline]
    pub fn map_query(&self, q: &RangeQuery) -> (Time, Time) {
        (self.map(q.st), self.map(q.end))
    }

    /// `prefix(l, x)`: the `l`-bit prefix of an `m`-bit mapped value — i.e.
    /// the offset of the level-`l` partition containing mapped value `x`
    /// (Table 2 in the paper).
    #[inline]
    pub fn prefix(&self, level: u32, mapped: Time) -> u64 {
        debug_assert!(level <= self.m);
        mapped >> (self.m - level)
    }

    /// Number of partitions at `level`: `2^level`.
    #[inline]
    pub fn partitions_at(&self, level: u32) -> u64 {
        1u64 << level
    }

    /// True if a raw query, after clamping, still intersects the domain at
    /// all (queries entirely outside `[min, max]` have no results).
    #[inline]
    pub fn intersects(&self, q: &RangeQuery) -> bool {
        q.end >= self.min && q.st <= self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_when_span_fits() {
        let d = Domain::new(0, 15, 4);
        assert!(d.is_lossless());
        for x in 0..=15 {
            assert_eq!(d.map(x), x);
        }
        assert_eq!(d.m(), 4);
    }

    #[test]
    fn m_is_clamped_to_span_bits() {
        // span of 16 values needs 4 bits; asking for m=10 must clamp to 4
        let d = Domain::new(100, 115, 10);
        assert_eq!(d.m(), 4);
        assert!(d.is_lossless());
        assert_eq!(d.map(100), 0);
        assert_eq!(d.map(115), 15);
    }

    #[test]
    fn lossy_mapping_shifts_out_low_bits() {
        // raw span [0, 63] (6 bits), m = 4 => shift 2, buckets of width 4
        let d = Domain::new(0, 63, 4);
        assert!(!d.is_lossless());
        assert_eq!(d.map(0), 0);
        assert_eq!(d.map(3), 0);
        assert_eq!(d.map(4), 1);
        assert_eq!(d.map(63), 15);
        // the paper's running example: [21, 38] maps to [5, 9] with m=4,m'=6
        assert_eq!(d.map(21), 5);
        assert_eq!(d.map(38), 9);
    }

    #[test]
    fn mapping_is_monotone() {
        let d = Domain::new(17, 90000, 8);
        let mut prev = 0;
        for x in (17..90000).step_by(37) {
            let y = d.map(x);
            assert!(y >= prev, "map must be monotone");
            prev = y;
        }
    }

    #[test]
    fn clamping_out_of_range_values() {
        let d = Domain::new(100, 200, 5);
        assert_eq!(d.map(0), d.map(100));
        assert_eq!(d.map(999), d.map(200));
        assert!(!d.intersects(&RangeQuery::new(0, 99)));
        assert!(!d.intersects(&RangeQuery::new(201, 500)));
        assert!(d.intersects(&RangeQuery::new(0, 100)));
        assert!(d.intersects(&RangeQuery::new(150, 160)));
    }

    #[test]
    fn prefix_matches_partition_offsets() {
        let d = Domain::new(0, 15, 4);
        // figure 5: value 5 = 0b0101
        assert_eq!(d.prefix(4, 5), 5);
        assert_eq!(d.prefix(3, 5), 2);
        assert_eq!(d.prefix(2, 5), 1);
        assert_eq!(d.prefix(1, 5), 0);
        assert_eq!(d.prefix(0, 5), 0);
        // value 9 = 0b1001
        assert_eq!(d.prefix(3, 9), 4);
        assert_eq!(d.prefix(2, 9), 2);
        assert_eq!(d.prefix(1, 9), 1);
    }

    #[test]
    fn from_data_infers_bounds() {
        let data = vec![
            Interval::new(0, 5, 9),
            Interval::new(1, 2, 3),
            Interval::new(2, 7, 30),
        ];
        let d = Domain::from_data(&data, 8);
        assert_eq!(d.min(), 2);
        assert_eq!(d.max(), 30);
    }

    #[test]
    fn degenerate_single_point_domain() {
        let d = Domain::new(42, 42, 4);
        assert_eq!(d.m(), 0);
        assert_eq!(d.map(42), 0);
        assert_eq!(d.partitions_at(0), 1);
    }
}
